//! The write-ahead-log line codec: one compact JSON object per
//! mutating store operation.
//!
//! [`JsonlStore`](crate::backend::JsonlStore) appends these lines to
//! disk *before* applying each mutation, and `csaw-replica` ships the
//! very same lines from a leader to its per-region read replicas (the
//! `SHIP` op in [`crate::net`]). Keeping the codec public and in one
//! place guarantees the durable log and the replication stream can
//! never drift apart: a replica replaying shipped lines runs the exact
//! code `JsonlStore::open` runs on restart.
//!
//! Client UUIDs are encoded as 16-hex-digit strings — the in-tree JSON
//! number space is f64-backed and raw 64-bit ids do not survive the
//! round-trip. Times are integer microseconds.
//!
//! # Line formats
//!
//! ```text
//! {"op":"ingest","client":"<16hex>","posted_at_us":N,"reports":[...]}
//! {"op":"revoke","client":"<16hex>"}
//! {"op":"remove_reporter","client":"<16hex>"}
//! {"op":"expire","now_us":N,"max_age_us":N}
//! ```
//!
//! # Example
//!
//! Encoding a batch and replaying it into a fresh store reproduces the
//! ingest exactly:
//!
//! ```
//! use csaw_store::batch::Batch;
//! use csaw_store::record::{Report, Uuid};
//! use csaw_store::shard::ShardedStore;
//! use csaw_store::wal;
//! use csaw_store::StorageBackend;
//! use csaw_censor::blocking::BlockingType;
//! use csaw_simnet::time::SimTime;
//!
//! let batch = Batch::new(
//!     Uuid::from_raw(7),
//!     vec![Report {
//!         url: "http://blocked.example/".into(),
//!         asn: 17557,
//!         measured_at_us: 1_000_000,
//!         stages: vec![BlockingType::HttpDrop],
//!     }],
//!     SimTime::from_secs(2),
//! );
//! let line = wal::ingest_line(&batch);
//! let store = ShardedStore::new(4).unwrap();
//! wal::replay_line(&store, &line).unwrap();
//! assert_eq!(store.record_count(), 1);
//! ```

use crate::backend::StorageBackend;
use crate::batch::Batch;
use crate::error::StoreError;
use crate::record::{Report, Uuid};
use csaw_obs::json::JsonValue;
use csaw_simnet::time::{SimDuration, SimTime};

fn uuid_to_json(u: Uuid) -> JsonValue {
    JsonValue::from(u.to_string())
}

fn uuid_from_json(v: &JsonValue) -> Result<Uuid, StoreError> {
    v.as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .map(Uuid::from_raw)
        .ok_or_else(|| StoreError::Corrupt("client must be a 16-hex-digit string".into()))
}

/// Encode one ingested batch as a WAL line (no trailing newline).
pub fn ingest_line(batch: &Batch) -> String {
    let mut v = JsonValue::obj();
    v.set("op", "ingest");
    v.set("client", uuid_to_json(batch.client));
    v.set("posted_at_us", batch.posted_at.as_micros());
    v.set(
        "reports",
        batch
            .reports()
            .iter()
            .map(Report::to_json)
            .collect::<Vec<_>>(),
    );
    v.to_string_compact()
}

/// Encode a vote revocation as a WAL line.
pub fn revoke_line(client: Uuid) -> String {
    let mut v = JsonValue::obj();
    v.set("op", "revoke");
    v.set("client", uuid_to_json(client));
    v.to_string_compact()
}

/// Encode a reporter-record removal as a WAL line.
pub fn remove_reporter_line(client: Uuid) -> String {
    let mut v = JsonValue::obj();
    v.set("op", "remove_reporter");
    v.set("client", uuid_to_json(client));
    v.to_string_compact()
}

/// Encode a record-expiry sweep as a WAL line.
pub fn expire_line(now: SimTime, max_age: SimDuration) -> String {
    let mut v = JsonValue::obj();
    v.set("op", "expire");
    v.set("now_us", now.as_micros());
    v.set("max_age_us", max_age.as_micros());
    v.to_string_compact()
}

/// Apply one WAL line to a backend through the normal mutation paths.
///
/// This is the single replay routine shared by `JsonlStore::open`
/// (restart recovery) and the replica side of WAL shipping. A
/// truncated or hand-edited line is [`StoreError::Corrupt`]; the
/// backend is left untouched by a line that fails to parse.
///
/// Note: replaying an `ingest` line bypasses registration checks by
/// design — the leader already gated the original post, and a replica
/// must accept whatever the ordered log says happened.
pub fn replay_line(backend: &dyn StorageBackend, line: &str) -> Result<(), StoreError> {
    let v = JsonValue::parse(line).map_err(|e| StoreError::Corrupt(format!("not JSON: {e}")))?;
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| StoreError::Corrupt("missing op".into()))?;
    match op {
        "ingest" => {
            let client = uuid_from_json(
                v.get("client")
                    .ok_or_else(|| StoreError::Corrupt("missing client".into()))?,
            )?;
            let posted_at = v
                .get("posted_at_us")
                .and_then(JsonValue::as_u64)
                .map(SimTime::from_micros)
                .ok_or_else(|| StoreError::Corrupt("missing posted_at_us".into()))?;
            let reports = v
                .get("reports")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| StoreError::Corrupt("missing reports".into()))?
                .iter()
                .map(Report::from_json)
                .collect::<Result<Vec<_>, _>>()
                .map_err(StoreError::Wire)?;
            backend.ingest(&Batch::new(client, reports, posted_at))?;
        }
        "revoke" => {
            backend.revoke(uuid_from_json(
                v.get("client")
                    .ok_or_else(|| StoreError::Corrupt("missing client".into()))?,
            )?);
        }
        "remove_reporter" => {
            backend.remove_reporter_records(uuid_from_json(
                v.get("client")
                    .ok_or_else(|| StoreError::Corrupt("missing client".into()))?,
            )?);
        }
        "expire" => {
            let now = v
                .get("now_us")
                .and_then(JsonValue::as_u64)
                .map(SimTime::from_micros)
                .ok_or_else(|| StoreError::Corrupt("missing now_us".into()))?;
            let max_age = v
                .get("max_age_us")
                .and_then(JsonValue::as_u64)
                .map(SimDuration::from_micros)
                .ok_or_else(|| StoreError::Corrupt("missing max_age_us".into()))?;
            backend.expire_records(now, max_age);
        }
        other => {
            return Err(StoreError::Corrupt(format!("unknown op {other:?}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::ConfidenceFilter;
    use crate::shard::ShardedStore;
    use csaw_censor::blocking::BlockingType;
    use csaw_simnet::topology::Asn;

    fn batch(client: u64, url: &str, t: u64) -> Batch {
        Batch::new(
            Uuid::from_raw(client),
            vec![Report {
                url: url.into(),
                asn: 9,
                measured_at_us: t,
                stages: vec![BlockingType::HttpDrop],
            }],
            SimTime::from_micros(t),
        )
    }

    #[test]
    fn every_op_roundtrips_through_replay() {
        let store = ShardedStore::new(4).unwrap();
        replay_line(&store, &ingest_line(&batch(1, "http://a.com/", 10))).unwrap();
        replay_line(&store, &ingest_line(&batch(2, "http://a.com/", 20))).unwrap();
        replay_line(&store, &ingest_line(&batch(3, "http://b.com/", 30))).unwrap();
        assert_eq!(store.record_count(), 2);
        replay_line(&store, &revoke_line(Uuid::from_raw(3))).unwrap();
        assert_eq!(store.tally("http://b.com/", Asn(9)).n, 0);
        replay_line(&store, &remove_reporter_line(Uuid::from_raw(3))).unwrap();
        assert_eq!(store.record_count(), 1);
        replay_line(
            &store,
            &expire_line(SimTime::from_secs(100), SimDuration::from_secs(1)),
        )
        .unwrap();
        assert_eq!(store.record_count(), 0);
    }

    #[test]
    fn garbage_lines_are_corrupt_not_panics() {
        let store = ShardedStore::new(2).unwrap();
        for bad in [
            "not json",
            "{}",
            "{\"op\":\"nope\"}",
            "{\"op\":\"ingest\"}",
            "{\"op\":\"ingest\",\"client\":\"zz\",\"posted_at_us\":1,\"reports\":[]}",
            "{\"op\":\"expire\",\"now_us\":1}",
        ] {
            assert!(
                matches!(replay_line(&store, bad), Err(StoreError::Corrupt(_))),
                "line {bad:?} should be Corrupt"
            );
        }
        assert_eq!(store.record_count(), 0);
    }

    #[test]
    fn replayed_state_matches_direct_ingest() {
        let direct = ShardedStore::new(4).unwrap();
        let replayed = ShardedStore::new(4).unwrap();
        for c in 0..6u64 {
            let b = batch(c, &format!("http://u{}.com/", c % 3), 100 + c);
            direct.ingest(&b).unwrap();
            replay_line(&replayed, &ingest_line(&b)).unwrap();
        }
        assert_eq!(direct.record_count(), replayed.record_count());
        let filter = ConfidenceFilter::strict(1, 0.0);
        assert_eq!(
            direct.blocked_for_as(Asn(9), &filter).unwrap(),
            replayed.blocked_for_as(Asn(9), &filter).unwrap()
        );
    }
}
