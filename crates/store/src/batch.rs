//! The single ingestion entry point's input and output types.
//!
//! [`Batch`] owns the wire decode: a server front-end builds one either
//! from already-parsed [`Report`]s or straight from the JSON wire bytes,
//! and hands it to `ingest`. [`IngestReceipt`] carries the
//! accepted/rejected split so callers (and the obs counters) see exactly
//! what the store kept.

use crate::error::StoreError;
use crate::record::{Report, Uuid};
use csaw_simnet::time::SimTime;
use csaw_webproto::url::Url;

/// One client's report batch, ready for ingestion.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The posting client.
    pub client: Uuid,
    /// Server receive time (`T_p` for every record in the batch).
    pub posted_at: SimTime,
    reports: Vec<Report>,
}

impl Batch {
    /// A batch from already-parsed reports.
    pub fn new(client: Uuid, reports: Vec<Report>, posted_at: SimTime) -> Batch {
        Batch {
            client,
            posted_at,
            reports,
        }
    }

    /// Decode a batch from the JSON wire format. Never panics: a broken
    /// envelope (not JSON, not an array) is [`StoreError::Wire`], and a
    /// single undecodable report is [`StoreError::Malformed`] carrying
    /// that report's batch index — so a client can quarantine exactly
    /// the poison entry instead of re-parsing the batch report by
    /// report.
    pub fn from_wire(client: Uuid, wire: &str, posted_at: SimTime) -> Result<Batch, StoreError> {
        let v = csaw_obs::json::JsonValue::parse(wire)
            .map_err(|e| StoreError::Wire(crate::record::WireError::Json(e)))?;
        let arr = v
            .as_arr()
            .ok_or(StoreError::Wire(crate::record::WireError::Shape(
                "batch must be an array",
            )))?;
        let mut reports = Vec::with_capacity(arr.len());
        for (index, item) in arr.iter().enumerate() {
            reports.push(
                Report::from_json(item)
                    .map_err(|reason| StoreError::Malformed { index, reason })?,
            );
        }
        Ok(Batch::new(client, reports, posted_at))
    }

    /// The carried reports.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Number of reports in the batch.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Is a report storable? The URL must parse and at least one
    /// blocking stage must be present; garbage is counted as rejected,
    /// not stored.
    pub(crate) fn storable(r: &Report) -> bool {
        !r.stages.is_empty() && Url::parse(&r.url).is_ok()
    }
}

/// What the store did with a batch.
///
/// Beyond the accepted/rejected counts, the receipt names the exact
/// batch positions that did *not* make it in, split by whether a retry
/// can help. Clients use this to reconcile their queues: permanently
/// rejected reports must never be resubmitted verbatim (they will
/// reject forever), while deferred reports are exactly the ones to
/// re-queue.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IngestReceipt {
    /// Reports stored (URL parsed, stages present).
    pub accepted: usize,
    /// Reports dropped by sanitization.
    pub rejected: usize,
    /// Batch indices of the sanitization-rejected reports. Resubmitting
    /// these will reject them again.
    pub rejected_indices: Vec<usize>,
    /// Batch indices the store did not get to (torn write, backend
    /// outage mid-batch). These were neither stored nor judged:
    /// resubmitting them is correct and expected.
    pub deferred_indices: Vec<usize>,
}

impl IngestReceipt {
    /// How many reports were deferred (not attempted).
    pub fn deferred(&self) -> usize {
        self.deferred_indices.len()
    }

    /// True when every report in the batch was stored.
    pub fn is_complete(&self) -> bool {
        self.rejected == 0 && self.deferred_indices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::blocking::BlockingType;

    #[test]
    fn from_wire_roundtrips_and_rejects_garbage() {
        let reports = vec![Report {
            url: "http://x.example/".into(),
            asn: 7,
            measured_at_us: 5,
            stages: vec![BlockingType::HttpDrop],
        }];
        let wire = Report::encode_batch(&reports);
        let b = Batch::from_wire(Uuid::from_raw(1), &wire, SimTime::from_secs(9)).unwrap();
        assert_eq!(b.reports(), &reports[..]);
        assert_eq!(b.posted_at, SimTime::from_secs(9));
        let err = Batch::from_wire(Uuid::from_raw(1), "garbage", SimTime::ZERO).unwrap_err();
        assert!(matches!(err, StoreError::Wire(_)));
    }

    #[test]
    fn from_wire_names_the_poison_report_index() {
        let good = Report {
            url: "http://x.example/".into(),
            asn: 7,
            measured_at_us: 5,
            stages: vec![BlockingType::HttpDrop],
        };
        // Hand-assemble a wire batch whose middle element is garbage.
        let one = Report::encode_batch(std::slice::from_ref(&good));
        let inner = one.trim_start_matches('[').trim_end_matches(']');
        let wire = format!("[{inner},{{\"url\":5}},{inner}]");
        let err = Batch::from_wire(Uuid::from_raw(1), &wire, SimTime::ZERO).unwrap_err();
        match err {
            StoreError::Malformed { index, .. } => assert_eq!(index, 1),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // A broken envelope is still a plain wire error.
        assert!(matches!(
            Batch::from_wire(Uuid::from_raw(1), "{}", SimTime::ZERO).unwrap_err(),
            StoreError::Wire(_)
        ));
    }

    #[test]
    fn storable_requires_url_and_stages() {
        let ok = Report {
            url: "http://x.example/".into(),
            asn: 1,
            measured_at_us: 0,
            stages: vec![BlockingType::HttpDrop],
        };
        let bad_url = Report {
            url: "not a url".into(),
            ..ok.clone()
        };
        let no_stages = Report {
            stages: vec![],
            ..ok.clone()
        };
        assert!(Batch::storable(&ok));
        assert!(!Batch::storable(&bad_url));
        assert!(!Batch::storable(&no_stages));
    }
}
