//! The in-memory sharded store: lock-striped record shards with
//! per-shard lock-free snapshot caches.
//!
//! The URL×ASN keyspace is split across N shards by the stable FNV key
//! hash ([`crate::hash`]). Each shard holds its slice of the record map
//! behind its own `RwLock`, so writers on different shards — and all
//! readers — proceed in parallel; there is **no global lock anywhere**
//! on the ingest or lookup path.
//!
//! Ingestion builds a `BatchPlan` before any lock is taken: every
//! report is sanitized, its URL interned once as an `Arc<str>`, its
//! [`GlobalRecord`] fully constructed, and the whole batch stably
//! sorted by destination shard. The lock phase then walks the plan run
//! by run — each touched shard's write lock is acquired exactly once
//! per batch, and because the vote ledger stripes with the same hash,
//! the same runs drive the ledger's grouped update (see
//! [`crate::ledger`] for the lock-order discipline). The plan is the
//! batch's arena: the interned URL backs the record-map key, the
//! client's report set, and the voter index, so the per-report cost is
//! reference counts, not string copies.
//!
//! Reads are served from a per-shard snapshot cache keyed on
//! (AS, confidence filter). The cache itself is an atomically swapped
//! immutable map (the private `swap::SwapCell`): readers load it without
//! locking, and a miss publishes a new map by pointer swap. An entry is
//! valid while both the shard's write generation and the ledger's vote
//! epoch are unchanged, so a stale snapshot is never served — the swap
//! only changes who pays the recompute.

use crate::backend::StorageBackend;
use crate::batch::{Batch, IngestReceipt};
use crate::error::StoreError;
use crate::hash::key_shard;
use crate::ledger::{ConfidenceFilter, Key, Tally, VoteLedger};
use crate::record::{GlobalRecord, Uuid};
use crate::swap::SwapCell;
use csaw_obs::contention::{RwStats, TimedRwLock};
use csaw_obs::metrics::{Counter, Gauge, Histogram};
use csaw_obs::timeseries::Timeline;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Cache entries per shard before the shard's cache map is reset — the
/// deployed system sees a handful of distinct confidence filters, so
/// this bound only guards against pathological filter churn.
const CACHE_FILTER_CAP: usize = 64;

/// Cache lookup key: (AS, confidence-filter cache key).
type CacheKey = (Asn, (usize, u64));
type CacheMap = HashMap<CacheKey, CacheEntry>;

#[derive(Debug, Clone)]
struct CacheEntry {
    generation: u64,
    epoch: u64,
    records: Arc<Vec<GlobalRecord>>,
}

#[derive(Debug)]
struct Shard {
    records: TimedRwLock<HashMap<Key, GlobalRecord>>,
    /// Immutable snapshot-cache map, replaced wholesale on publish —
    /// readers never lock (see the module docs).
    cache: SwapCell<CacheMap>,
    /// Bumped after every mutation of `records`.
    generation: AtomicU64,
}

impl Shard {
    /// All shards share one `store.shard.records` stats family —
    /// contention is a property of the store, not of a single stripe
    /// (stats are `None` when perf attribution is off).
    fn new(records: Option<Arc<RwStats>>) -> Shard {
        Shard {
            records: TimedRwLock::with_stats(records, HashMap::new()),
            cache: SwapCell::new(Arc::new(CacheMap::new())),
            generation: AtomicU64::new(0),
        }
    }
}

/// Pre-resolved metric handles: the ingest path must not take the
/// registry mutex per batch. Resolved once from the observability scope
/// that is current when the store is built.
#[derive(Debug)]
struct StoreMetrics {
    batches: Arc<Counter>,
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    records: Arc<Gauge>,
    batch_size: Arc<Histogram>,
    ingest_latency: Arc<Histogram>,
    shard_records: Vec<Arc<Gauge>>,
    /// The windowed timeline of the context that built the store —
    /// captured here (like the metric handles) so worker threads
    /// ingesting on behalf of this store feed the right timeline.
    timeline: Arc<Timeline>,
}

impl StoreMetrics {
    fn resolve(shards: usize) -> StoreMetrics {
        let reg = &csaw_obs::current().registry;
        StoreMetrics {
            batches: reg.counter("store.ingest.batches"),
            accepted: reg.counter("store.ingest.accepted"),
            rejected: reg.counter("store.ingest.rejected"),
            cache_hits: reg.counter("store.cache.hits"),
            cache_misses: reg.counter("store.cache.misses"),
            records: reg.gauge("store.records"),
            batch_size: reg.histogram("store.ingest.batch_size"),
            ingest_latency: reg.histogram("store.ingest.latency_us"),
            shard_records: (0..shards)
                .map(|i| reg.gauge(&format!("store.shard.{i:02}.records")))
                .collect(),
            timeline: csaw_obs::current().timeline.clone(),
        }
    }
}

/// One planned, sanitized batch: everything ingest needs, built before
/// any lock is taken. Entries are stably sorted by destination shard so
/// the lock phase walks contiguous runs.
struct BatchPlan {
    /// `(shard, key, record)` in batch order within each shard run.
    entries: Vec<(u32, Key, GlobalRecord)>,
    rejected_indices: Vec<usize>,
}

impl BatchPlan {
    fn build(batch: &Batch, shards: usize) -> BatchPlan {
        let mut entries: Vec<(u32, Key, GlobalRecord)> = Vec::with_capacity(batch.len());
        let mut rejected_indices = Vec::new();
        for (idx, r) in batch.reports().iter().enumerate() {
            if !Batch::storable(r) {
                rejected_indices.push(idx);
                continue;
            }
            // The one string allocation this report pays: the interned
            // URL shared by the record key, the ledger's client set and
            // the voter index. (The record itself keeps an owned String
            // so `GlobalRecord` stays a plain wire-friendly value type.)
            let url: Arc<str> = Arc::from(r.url.as_str());
            let asn = Asn(r.asn);
            let record = GlobalRecord {
                url: r.url.clone(),
                asn,
                measured_at: SimTime::from_micros(r.measured_at_us),
                stages: r.stages.clone(),
                posted_at: batch.posted_at,
                reporter: batch.client,
            };
            entries.push((key_shard(&url, asn, shards) as u32, (url, asn), record));
        }
        // Stable: within a shard run, batch order is preserved, so a
        // duplicate key later in the batch overwrites the earlier one
        // exactly as a per-report loop would.
        entries.sort_by_key(|(s, _, _)| *s);
        BatchPlan {
            entries,
            rejected_indices,
        }
    }

    fn accepted(&self) -> usize {
        self.entries.len()
    }
}

/// The in-memory sharded measurement store.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Box<[Shard]>,
    ledger: VoteLedger,
    metrics: StoreMetrics,
    /// Live record count maintained by delta at every mutation, so
    /// `record_count` is one atomic load — the per-batch gauge update
    /// used to take every shard's read lock and dominated read-side
    /// contention at 8 writers.
    live_records: AtomicI64,
    measure_latency: bool,
}

impl ShardedStore {
    /// A store striped `shards` ways. Errors on zero shards rather than
    /// panicking later on the ingest path.
    pub fn new(shards: usize) -> Result<ShardedStore, StoreError> {
        if shards == 0 {
            return Err(StoreError::InvalidConfig("shard count must be >= 1"));
        }
        let record_stats = RwStats::resolve("store.shard.records");
        Ok(ShardedStore {
            shards: (0..shards)
                .map(|_| Shard::new(record_stats.clone()))
                .collect(),
            ledger: VoteLedger::with_shards(shards),
            metrics: StoreMetrics::resolve(shards),
            live_records: AtomicI64::new(0),
            measure_latency: false,
        })
    }

    /// Record wall-clock per-batch ingest latency into the
    /// `store.ingest.latency_us` histogram. Off by default: wall-clock
    /// samples would break the byte-identical-snapshot determinism
    /// contract of the virtual-time experiments, so only the scale
    /// harness turns this on.
    pub fn with_ingest_latency(mut self, on: bool) -> ShardedStore {
        self.measure_latency = on;
        self
    }

    fn apply_record_delta(&self, shard_idx: usize, delta: i64) {
        if delta != 0 {
            self.live_records.fetch_add(delta, Ordering::AcqRel);
            self.metrics.shard_records[shard_idx].add(delta);
            self.metrics.records.add(delta);
        }
    }
}

impl StorageBackend for ShardedStore {
    fn ingest(&self, batch: &Batch) -> Result<IngestReceipt, StoreError> {
        let t0 = self.measure_latency.then(std::time::Instant::now);
        debug_assert_eq!(self.shards.len(), self.ledger.key_stripes());
        // Phase 0, lock-free: sanitize, intern, construct and group.
        let plan = BatchPlan::build(batch, self.shards.len());
        let accepted = plan.accepted();
        // Phase 1: records, one write acquisition per touched shard.
        // The plan is consumed run by run; keys survive (Arc clones)
        // into the ledger phase, still grouped — the ledger stripes
        // with the same hash and stripe count.
        let mut ledger_keys: Vec<(u32, Key)> = Vec::with_capacity(accepted);
        // Windowed health series, collected lock-free while the plan is
        // consumed and recorded after the lock phase. `track` is false
        // whenever no timeline is configured, which keeps the ingest
        // hot path free of the extra bookkeeping.
        let track = self.metrics.timeline.enabled();
        let mut touched_shards: Vec<u32> = Vec::new();
        let mut per_as: BTreeMap<u32, (u64, Vec<u64>)> = BTreeMap::new();
        let mut it = plan.entries.into_iter().peekable();
        while let Some(s) = it.peek().map(|(s, _, _)| *s) {
            let shard = &self.shards[s as usize];
            let mut delta = 0i64;
            if track {
                touched_shards.push(s);
            }
            {
                let mut recs = shard.records.write();
                while it.peek().map(|(s, _, _)| *s) == Some(s) {
                    let (_, key, record) = it.next().expect("peeked entry exists");
                    ledger_keys.push((s, key.clone()));
                    if track {
                        let staleness = record
                            .posted_at
                            .as_micros()
                            .saturating_sub(record.measured_at.as_micros());
                        let e = per_as.entry(record.asn.0).or_default();
                        e.0 += 1;
                        e.1.push(staleness);
                    }
                    if recs.insert(key, record).is_none() {
                        delta += 1;
                    }
                }
            }
            shard.generation.fetch_add(1, Ordering::AcqRel);
            self.apply_record_delta(s as usize, delta);
        }
        // Phase 2: votes, one write acquisition per touched stripe.
        self.ledger
            .add_client_keys_grouped(batch.client, ledger_keys);
        self.metrics.batches.inc();
        self.metrics.accepted.add(accepted as u64);
        self.metrics.rejected.add((batch.len() - accepted) as u64);
        self.metrics.batch_size.observe_us(batch.len() as u64);
        if track {
            let tl = &self.metrics.timeline;
            for s in touched_shards {
                tl.counter("store.ingest.batches", &[("shard", &format!("{s:02}"))])
                    .inc();
            }
            for (asn, (n, staleness)) in per_as {
                let asl = asn.to_string();
                tl.counter("store.ingest.accepted", &[("asn", &asl)]).add(n);
                let h = tl.hist("store.ingest.staleness_us", &[("asn", &asl)]);
                for st in staleness {
                    h.observe_us(st);
                }
            }
        }
        if let Some(t0) = t0 {
            self.metrics
                .ingest_latency
                .observe_us(t0.elapsed().as_micros() as u64);
        }
        Ok(IngestReceipt {
            accepted,
            rejected: batch.len() - accepted,
            rejected_indices: plan.rejected_indices,
            deferred_indices: Vec::new(),
        })
    }

    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError> {
        let ck = (asn, filter.cache_key());
        let epoch = self.ledger.epoch();
        let mut out: Vec<GlobalRecord> = Vec::new();
        for shard in self.shards.iter() {
            // Read validity markers *before* computing: a write landing
            // mid-compute leaves the entry marked stale, so the worst
            // case is an extra recompute, never a stale serve.
            let generation = shard.generation.load(Ordering::Acquire);
            let cache = shard.cache.load();
            let hit = cache
                .get(&ck)
                .filter(|e| e.generation == generation && e.epoch == epoch)
                .map(|e| Arc::clone(&e.records));
            let snapshot = match hit {
                Some(s) => {
                    self.metrics.cache_hits.inc();
                    s
                }
                None => {
                    self.metrics.cache_misses.inc();
                    let computed: Vec<GlobalRecord> = {
                        let recs = shard.records.read();
                        recs.values()
                            .filter(|r| r.asn == asn)
                            .filter(|r| filter.passes(&self.ledger.tally(&r.url, r.asn)))
                            .cloned()
                            .collect()
                    };
                    let snapshot = Arc::new(computed);
                    // Publish by swap: copy the current map (entries are
                    // a few words each), insert, swap in. A racing miss
                    // on another key may win the swap instead; its only
                    // cost is this entry recomputing on the next read.
                    let mut next = if cache.len() >= CACHE_FILTER_CAP {
                        CacheMap::new()
                    } else {
                        (*cache).clone()
                    };
                    next.insert(
                        ck,
                        CacheEntry {
                            generation,
                            epoch,
                            records: Arc::clone(&snapshot),
                        },
                    );
                    shard.cache.store(Arc::new(next));
                    snapshot
                }
            };
            out.extend(snapshot.iter().cloned());
        }
        out.sort_by(|a, b| a.url.cmp(&b.url));
        Ok(out)
    }

    fn tally(&self, url: &str, asn: Asn) -> Tally {
        self.ledger.tally(url, asn)
    }

    fn revoke(&self, client: Uuid) {
        self.ledger.revoke(client);
    }

    fn remove_reporter_records(&self, client: Uuid) -> usize {
        let mut removed = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let before;
            let after;
            {
                let mut recs = shard.records.write();
                before = recs.len();
                recs.retain(|_, r| r.reporter != client);
                after = recs.len();
            }
            if before != after {
                shard.generation.fetch_add(1, Ordering::AcqRel);
                self.apply_record_delta(i, -((before - after) as i64));
                removed += before - after;
            }
        }
        removed
    }

    fn expire_records(&self, now: SimTime, max_age: SimDuration) -> usize {
        let mut removed = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            let before;
            let after;
            {
                let mut recs = shard.records.write();
                before = recs.len();
                recs.retain(|_, r| now.duration_since(r.posted_at) < max_age);
                after = recs.len();
            }
            if before != after {
                shard.generation.fetch_add(1, Ordering::AcqRel);
                self.apply_record_delta(i, -((before - after) as i64));
                removed += before - after;
            }
        }
        removed
    }

    fn record_count(&self) -> usize {
        self.live_records.load(Ordering::Acquire).max(0) as usize
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&GlobalRecord)) {
        for shard in self.shards.iter() {
            let recs = shard.records.read();
            for r in recs.values() {
                f(r);
            }
        }
    }

    fn ledger(&self) -> &VoteLedger {
        &self.ledger
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Report;
    use csaw_censor::blocking::BlockingType;
    use csaw_obs::scope::{self, ObsCtx};

    fn report(url: &str, asn: u32) -> Report {
        Report {
            url: url.into(),
            asn,
            measured_at_us: 1,
            stages: vec![BlockingType::HttpDrop],
        }
    }

    fn batch(client: u64, urls: &[&str], asn: u32, t: u64) -> Batch {
        Batch::new(
            Uuid::from_raw(client),
            urls.iter().map(|u| report(u, asn)).collect(),
            SimTime::from_secs(t),
        )
    }

    #[test]
    fn ingest_sanitizes_and_counts() {
        let s = ShardedStore::new(4).unwrap();
        let mut b = batch(1, &["http://a.com/", "http://b.com/"], 1, 5);
        b = Batch::new(
            b.client,
            b.reports()
                .iter()
                .cloned()
                .chain([report("not a url", 1)])
                .collect(),
            b.posted_at,
        );
        let r = s.ingest(&b).unwrap();
        assert_eq!(
            r,
            IngestReceipt {
                accepted: 2,
                rejected: 1,
                rejected_indices: vec![2],
                deferred_indices: vec![],
            }
        );
        assert!(!r.is_complete());
        assert_eq!(s.record_count(), 2);
        assert_eq!(s.tally("http://a.com/", Asn(1)).n, 1);
    }

    #[test]
    fn duplicate_key_in_one_batch_keeps_the_later_report() {
        // The plan's stable sort must preserve batch order within a
        // shard run: the second report for the same (URL, AS) wins.
        let s = ShardedStore::new(4).unwrap();
        let b = Batch::new(
            Uuid::from_raw(1),
            vec![
                Report {
                    measured_at_us: 11,
                    ..report("http://dup.com/", 1)
                },
                Report {
                    measured_at_us: 22,
                    ..report("http://dup.com/", 1)
                },
            ],
            SimTime::from_secs(1),
        );
        assert_eq!(s.ingest(&b).unwrap().accepted, 2);
        assert_eq!(s.record_count(), 1);
        let mut seen = Vec::new();
        s.for_each_record(&mut |r| seen.push(r.measured_at));
        assert_eq!(seen, [SimTime::from_micros(22)]);
    }

    #[test]
    fn zero_shards_is_a_config_error_not_a_panic() {
        assert_eq!(
            ShardedStore::new(0).unwrap_err(),
            StoreError::InvalidConfig("shard count must be >= 1")
        );
    }

    #[test]
    fn blocked_view_is_sorted_and_filtered() {
        let s = ShardedStore::new(16).unwrap();
        for (c, url) in [
            (1, "http://z.com/"),
            (2, "http://a.com/"),
            (3, "http://m.com/"),
        ] {
            s.ingest(&batch(c, &[url], 9, 1)).unwrap();
        }
        let v = s
            .blocked_for_as(Asn(9), &ConfidenceFilter::default())
            .unwrap();
        let urls: Vec<&str> = v.iter().map(|r| r.url.as_str()).collect();
        assert_eq!(urls, ["http://a.com/", "http://m.com/", "http://z.com/"]);
        assert!(s
            .blocked_for_as(Asn(1), &ConfidenceFilter::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cache_hits_until_invalidated_by_write_or_vote_change() {
        let ctx = Arc::new(ObsCtx::new());
        let _g = scope::install(ctx.clone());
        let s = ShardedStore::new(2).unwrap();
        s.ingest(&batch(1, &["http://a.com/"], 1, 1)).unwrap();
        let f = ConfidenceFilter::default();
        let misses = || ctx.registry.counter("store.cache.misses").get();
        let hits = || ctx.registry.counter("store.cache.hits").get();
        s.blocked_for_as(Asn(1), &f).unwrap(); // cold: 2 shard misses
        assert_eq!((misses(), hits()), (2, 0));
        s.blocked_for_as(Asn(1), &f).unwrap(); // warm: 2 shard hits
        assert_eq!((misses(), hits()), (2, 2));
        // A write invalidates (vote epoch moved: every shard recomputes).
        s.ingest(&batch(2, &["http://b.com/"], 1, 2)).unwrap();
        s.blocked_for_as(Asn(1), &f).unwrap();
        assert_eq!(misses(), 4);
        // Revocation moves the vote epoch too.
        s.blocked_for_as(Asn(1), &f).unwrap();
        let h0 = hits();
        s.revoke(Uuid::from_raw(2));
        s.blocked_for_as(Asn(1), &f).unwrap();
        assert_eq!(hits(), h0, "post-revoke read must not be served from cache");
    }

    #[test]
    fn ingest_feeds_windowed_health_series() {
        use csaw_obs::timeseries::WindowCfg;
        use csaw_obs::SloSet;
        let ctx = Arc::new(ObsCtx::new());
        ctx.timeline.configure(WindowCfg {
            window_us: 1_000_000,
            retain: 8,
            slos: Arc::new(SloSet::empty()),
        });
        let _g = scope::install(ctx.clone());
        let s = ShardedStore::new(4).unwrap();
        // Two ASes in one batch; posted_at = 5 s, measured_at = 1 µs.
        let b = Batch::new(
            Uuid::from_raw(1),
            vec![report("http://a.com/", 1), report("http://b.com/", 2)],
            SimTime::from_secs(5),
        );
        s.ingest(&b).unwrap();
        ctx.flush_timeline();
        let f = &ctx.timeline.recent_frames()[0];
        assert_eq!(f.family_count("store.ingest.accepted"), 2);
        assert_eq!(f.series["store.ingest.accepted{asn=1}"].count(), Some(1));
        assert_eq!(f.series["store.ingest.accepted{asn=2}"].count(), Some(1));
        assert!(f.family_count("store.ingest.batches") >= 1);
        // Staleness digest = posted_at − measured_at ≈ 5 s.
        let stale = f.series["store.ingest.staleness_us{asn=1}"]
            .p99_us()
            .expect("staleness digest recorded");
        assert!((stale as f64 - 5e6).abs() / 5e6 < 0.05, "{stale}");
    }

    #[test]
    fn expire_and_remove_reporter_update_counts() {
        let s = ShardedStore::new(4).unwrap();
        s.ingest(&batch(1, &["http://a.com/", "http://b.com/"], 1, 10))
            .unwrap();
        s.ingest(&batch(2, &["http://c.com/"], 1, 90)).unwrap();
        assert_eq!(s.remove_reporter_records(Uuid::from_raw(1)), 2);
        assert_eq!(s.record_count(), 1);
        assert_eq!(
            s.expire_records(SimTime::from_secs(200), SimDuration::from_secs(50)),
            1
        );
        assert_eq!(s.record_count(), 0);
    }

    #[test]
    fn shard_count_independent_results() {
        let views: Vec<Vec<String>> = [1usize, 4, 16]
            .iter()
            .map(|&n| {
                let s = ShardedStore::new(n).unwrap();
                for c in 0..10u64 {
                    s.ingest(&batch(
                        c,
                        &[
                            format!("http://site-{}.com/", c % 4).as_str(),
                            format!("http://site-{}.com/", (c + 1) % 4).as_str(),
                        ],
                        1,
                        c,
                    ))
                    .unwrap();
                }
                s.blocked_for_as(Asn(1), &ConfidenceFilter::strict(2, 0.1))
                    .unwrap()
                    .iter()
                    .map(|r| r.url.clone())
                    .collect()
            })
            .collect();
        assert_eq!(views[0], views[1]);
        assert_eq!(views[1], views[2]);
        assert!(!views[0].is_empty());
    }
}
