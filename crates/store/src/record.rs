//! Global database records and the report wire format (Tables 3 & 4).
//!
//! The global DB stores every local-DB field plus the post time `T_p` and
//! a server-assigned UUID. By design **no personally identifiable
//! information is stored** — there is no IP/identity field anywhere in
//! these types, which is the paper's §5 privacy property enforced
//! structurally rather than by policy.

use csaw_censor::blocking::BlockingType;
use csaw_obs::json::{JsonError, JsonValue};
use csaw_simnet::time::SimTime;
use csaw_simnet::topology::Asn;
use std::fmt;

/// A server-assigned universal unique identifier. The paper derives it
/// from a cryptographic hash of the server's current time; we reproduce
/// that as a 64-bit avalanche hash over (time, counter, salt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uuid(u64);

impl Uuid {
    /// Derive a UUID from the server clock, a monotone counter and the
    /// server salt (SplitMix64 finalizer — avalanche-complete, so
    /// sequential inputs yield unlinkable-looking IDs).
    pub fn derive(now: SimTime, counter: u64, salt: u64) -> Uuid {
        let mut z = now
            .as_micros()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(counter)
            .wrapping_add(salt.rotate_left(17));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Uuid(z ^ (z >> 31))
    }

    /// Construct from a raw value (tests).
    pub fn from_raw(v: u64) -> Uuid {
        Uuid(v)
    }

    /// Raw value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One measurement report as carried on the wire (client → server, JSON).
/// Only **blocked** URLs are ever reported (§3 "These updates include
/// information about only blocked URLs"); reports travel over Tor.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The blocked URL.
    pub url: String,
    /// AS the measurement was made from.
    pub asn: u32,
    /// Measurement time (`T_m`), µs since epoch.
    pub measured_at_us: u64,
    /// Stage-1..k blocking mechanisms.
    pub stages: Vec<BlockingType>,
}

/// A malformed report batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input was not valid JSON.
    Json(JsonError),
    /// The JSON did not have the report-batch shape.
    Shape(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "report batch: {e}"),
            WireError::Shape(m) => write!(f, "report batch: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl Report {
    pub(crate) fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::obj();
        v.set("url", self.url.as_str());
        v.set("asn", self.asn);
        v.set("measured_at_us", self.measured_at_us);
        v.set(
            "stages",
            self.stages
                .iter()
                .map(|s| JsonValue::from(s.name()))
                .collect::<Vec<_>>(),
        );
        v
    }

    pub(crate) fn from_json(v: &JsonValue) -> Result<Report, WireError> {
        let shape = WireError::Shape;
        let url = v
            .get("url")
            .and_then(JsonValue::as_str)
            .ok_or(shape("url must be a string"))?
            .to_string();
        let asn = v
            .get("asn")
            .and_then(JsonValue::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or(shape("asn must be a u32"))?;
        let measured_at_us = v
            .get("measured_at_us")
            .and_then(JsonValue::as_u64)
            .ok_or(shape("measured_at_us must be a u64"))?;
        let stages = v
            .get("stages")
            .and_then(JsonValue::as_arr)
            .ok_or(shape("stages must be an array"))?
            .iter()
            .map(|s| s.as_str().and_then(BlockingType::from_name))
            .collect::<Option<Vec<_>>>()
            .ok_or(shape("unknown blocking type"))?;
        Ok(Report {
            url,
            asn,
            measured_at_us,
            stages,
        })
    }

    /// Serialize a batch of reports to the JSON wire format.
    pub fn encode_batch(reports: &[Report]) -> String {
        JsonValue::Arr(reports.iter().map(Report::to_json).collect()).to_string_compact()
    }

    /// Parse a batch from the wire. Malformed input is an error (the
    /// server rejects, not panics).
    pub fn decode_batch(s: &str) -> Result<Vec<Report>, WireError> {
        let v = JsonValue::parse(s).map_err(WireError::Json)?;
        v.as_arr()
            .ok_or(WireError::Shape("batch must be an array"))?
            .iter()
            .map(Report::from_json)
            .collect()
    }
}

/// A record in the global database (Table 3 fields ⊕ Table 4 fields).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalRecord {
    /// The blocked URL.
    pub url: String,
    /// AS it was measured from.
    pub asn: Asn,
    /// Measurement time (`T_m`).
    pub measured_at: SimTime,
    /// Blocking mechanisms (stage-1..k).
    pub stages: Vec<BlockingType>,
    /// When the update was posted (`T_p`).
    pub posted_at: SimTime,
    /// Reporting client's UUID (pseudonymous; allows user-centric
    /// analytics without identity).
    pub reporter: Uuid,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uuid_deterministic_and_distinct() {
        let a = Uuid::derive(SimTime::from_secs(10), 0, 42);
        let b = Uuid::derive(SimTime::from_secs(10), 0, 42);
        let c = Uuid::derive(SimTime::from_secs(10), 1, 42);
        let d = Uuid::derive(SimTime::from_secs(11), 0, 42);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn uuid_display_is_hex() {
        let u = Uuid::from_raw(0xdead_beef);
        assert_eq!(u.to_string(), "00000000deadbeef");
    }

    #[test]
    fn report_wire_roundtrip() {
        let reports = vec![
            Report {
                url: "http://blocked.example/".into(),
                asn: 17557,
                measured_at_us: 1_000_000,
                stages: vec![BlockingType::DnsHijack, BlockingType::HttpDrop],
            },
            Report {
                url: "http://other.example/page".into(),
                asn: 38193,
                measured_at_us: 2_000_000,
                stages: vec![BlockingType::HttpBlockPageRedirect],
            },
        ];
        let wire = Report::encode_batch(&reports);
        let back = Report::decode_batch(&wire).unwrap();
        assert_eq!(back, reports);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(Report::decode_batch("not json").is_err());
        assert!(Report::decode_batch("{\"url\": 1}").is_err());
    }

    #[test]
    fn no_pii_fields_on_the_wire() {
        // Structural privacy check: serialize and assert no address-like
        // keys exist in the wire format.
        let r = Report {
            url: "http://x.example/".into(),
            asn: 1,
            measured_at_us: 0,
            stages: vec![],
        };
        let wire = Report::encode_batch(&[r]);
        for forbidden in ["ip", "address", "user", "name", "email"] {
            assert!(
                !wire
                    .to_ascii_lowercase()
                    .contains(&format!("\"{forbidden}\"")),
                "wire format leaks {forbidden}: {wire}"
            );
        }
    }
}
