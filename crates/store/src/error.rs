//! The unified error type for the global measurement store.
//!
//! Every fallible path of the global DB — wire decode, client
//! validation, backend I/O, replay — returns [`StoreError`]. Nothing on
//! the ingest path panics: garbage input is an error value, corrupted
//! persistence is an error value, and I/O failures carry the path they
//! happened on. (`thiserror`-style by hand; the workspace is hermetic
//! and takes no external dependencies.)

use crate::record::WireError;
use std::fmt;

/// Everything that can go wrong inside the measurement store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The posting UUID is unknown or has been revoked.
    UnknownClient,
    /// The report batch could not be decoded from the wire (the
    /// envelope itself: not JSON, or not an array).
    Wire(WireError),
    /// One report inside an otherwise well-formed batch failed to
    /// decode. Carries the batch index of the poison report so a client
    /// can quarantine exactly that entry and resubmit the rest without
    /// re-parsing report by report.
    Malformed {
        /// Zero-based index of the undecodable report in the batch.
        index: usize,
        /// Why that report failed to decode.
        reason: WireError,
    },
    /// A backend I/O operation failed.
    Io {
        /// The file the backend was operating on.
        path: String,
        /// The OS error, stringified (keeps the enum `Clone + Eq`).
        msg: String,
    },
    /// Persisted state failed to parse back (truncated or hand-edited
    /// log, incompatible snapshot).
    Corrupt(String),
    /// A construction-time parameter was invalid (zero shards, …).
    InvalidConfig(&'static str),
    /// The backend is transiently unavailable (outage window, injected
    /// fault, overload). Retrying later is expected to succeed; nothing
    /// was stored.
    Unavailable(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownClient => write!(f, "unknown or revoked client UUID"),
            StoreError::Wire(e) => write!(f, "malformed batch: {e}"),
            StoreError::Malformed { index, reason } => {
                write!(f, "malformed report at batch index {index}: {reason}")
            }
            StoreError::Io { path, msg } => write!(f, "backend I/O on {path}: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt persisted state: {msg}"),
            StoreError::InvalidConfig(msg) => write!(f, "invalid store configuration: {msg}"),
            StoreError::Unavailable(msg) => write!(f, "backend transiently unavailable: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Wire(e) => Some(e),
            StoreError::Malformed { reason, .. } => Some(reason),
            _ => None,
        }
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> StoreError {
        StoreError::Wire(e)
    }
}

impl StoreError {
    /// Helper for wrapping `std::io::Error` while keeping the enum
    /// `Clone + Eq`.
    pub fn io(path: &std::path::Path, e: std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::Io {
            path: "/tmp/x.jsonl".into(),
            msg: "permission denied".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("/tmp/x.jsonl") && s.contains("permission denied"),
            "{s}"
        );
        assert!(StoreError::UnknownClient.to_string().contains("unknown"));
    }

    #[test]
    fn wire_errors_convert_and_chain() {
        let w = WireError::Shape("batch must be an array");
        let e: StoreError = w.clone().into();
        assert_eq!(e, StoreError::Wire(w));
        assert!(std::error::Error::source(&e).is_some());
    }
}
