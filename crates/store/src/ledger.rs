//! The voting mechanism (§5 "Interfering with C-Saw measurements"),
//! sharded for concurrent ingestion.
//!
//! Each client holds **one unit of vote**, spread evenly over the `d`
//! blocked URLs it currently reports: `v_{i,j,k} = 1/d` for blocked URL
//! `j` from client AS `k`. The server keeps, per (URL, AS):
//!
//! - `s_{j,k}`: the sum of votes, and
//! - `n_{j,k}`: the number of distinct clients voting,
//!
//! as robustness estimates. Consumers distrust entries with large `n`
//! but small `s` (vote mass diluted over huge report sets — the
//! signature of spamming clients) and entries with small `n` (too few
//! independent witnesses). Inspired by PageRank, per the paper.
//!
//! ## Concurrency
//!
//! The ledger is striped two ways: client → report-set maps are sharded
//! by UUID, and the inverted (URL, AS) → voters index is sharded by the
//! stable FNV key hash. No operation ever holds locks from both families
//! at once (writers update the client side, release, then the key side),
//! so writers on different clients and readers tallying different keys
//! proceed in parallel and no lock-order deadlock exists. Between the
//! two phases of a write a tally may observe the voter on one side only;
//! the store is eventually consistent mid-batch and exact at quiescence,
//! which is what the determinism tests pin down.
//!
//! Every write path **groups its keys by destination stripe before
//! taking any lock**: a batch that touches `k` keys across `m` stripes
//! acquires `m` key-index write locks, not `k`. At deployment batch
//! sizes this collapses the `store.ledger.keys` lock traffic by the
//! mean batch size, which is what un-serializes parallel ingestion (see
//! the scorecard's attribution table before/after this change).
//!
//! Keys are interned as `Arc<str>` URLs, so spreading one report's URL
//! across the record map, the client's report set, and the inverted
//! voter index costs reference-count bumps, not string copies.
//!
//! A global *vote epoch* increments whenever any client's vote spread
//! changes (its `1/d` weights moved). Snapshot caches key on it: a
//! cached confidence-filtered view is valid only while both its shard
//! generation and the vote epoch are unchanged.

use crate::hash::key_shard;
use crate::record::Uuid;
use csaw_obs::contention::{RwStats, TimedRwLock};
use csaw_simnet::topology::Asn;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregated vote state for one (URL, AS).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Tally {
    /// Sum of votes, `s_{j,k}`.
    pub s: f64,
    /// Distinct voting clients, `n_{j,k}`.
    pub n: usize,
}

impl Tally {
    /// Average vote mass per voter (`s/n`), 0 when nobody voted.
    pub fn avg_vote(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.s / self.n as f64
        }
    }
}

/// Confidence thresholds for consuming crowdsourced measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceFilter {
    /// Minimum distinct voters.
    pub min_clients: usize,
    /// Minimum average vote per voter — guards against vote dilution by
    /// clients spraying thousands of URLs.
    pub min_avg_vote: f64,
}

impl Default for ConfidenceFilter {
    fn default() -> Self {
        ConfidenceFilter {
            min_clients: 1,
            min_avg_vote: 0.0,
        }
    }
}

impl ConfidenceFilter {
    /// A stricter filter for adversarial settings.
    pub fn strict(min_clients: usize, min_avg_vote: f64) -> ConfidenceFilter {
        ConfidenceFilter {
            min_clients,
            min_avg_vote,
        }
    }

    /// Does a tally pass this filter?
    pub fn passes(&self, t: &Tally) -> bool {
        t.n >= self.min_clients && (self.min_avg_vote <= 0.0 || t.avg_vote() >= self.min_avg_vote)
    }

    /// A stable cache key for snapshot caches (`f64` has no `Hash`; the
    /// bit pattern does).
    pub(crate) fn cache_key(&self) -> (usize, u64) {
        (self.min_clients, self.min_avg_vote.to_bits())
    }
}

/// An interned (URL, AS) vote key. `Arc<str>` lets one URL allocation
/// back the record map, the client report set, and the voter index.
pub(crate) type Key = (Arc<str>, Asn);
type KeySet = HashSet<Key>;
type ClientShard = TimedRwLock<HashMap<Uuid, KeySet>>;
type KeyIndexShard = TimedRwLock<HashMap<Key, HashSet<Uuid>>>;

/// The server-side vote ledger, lock-striped for concurrent writers.
#[derive(Debug)]
pub struct VoteLedger {
    /// client → its current (URL, AS) report set, sharded by UUID.
    client_shards: Box<[ClientShard]>,
    /// (URL, AS) → distinct voting clients, sharded by the key hash.
    key_shards: Box<[KeyIndexShard]>,
    /// Bumped whenever any client's vote spread changes.
    epoch: AtomicU64,
}

impl Default for VoteLedger {
    fn default() -> Self {
        VoteLedger::with_shards(16)
    }
}

impl VoteLedger {
    /// An empty ledger with the default stripe count.
    pub fn new() -> VoteLedger {
        VoteLedger::default()
    }

    /// An empty ledger striped `n` ways (`n` is clamped to ≥ 1).
    pub fn with_shards(n: usize) -> VoteLedger {
        let n = n.max(1);
        // Stripes share one stats family per side (clients vs. the key
        // index): contention is per-structure, not per-stripe. `None`
        // (free) unless the current scope opted into perf attribution.
        let client_stats = RwStats::resolve("store.ledger.clients");
        let key_stats = RwStats::resolve("store.ledger.keys");
        VoteLedger {
            client_shards: (0..n)
                .map(|_| TimedRwLock::with_stats(client_stats.clone(), HashMap::new()))
                .collect(),
            key_shards: (0..n)
                .map(|_| TimedRwLock::with_stats(key_stats.clone(), HashMap::new()))
                .collect(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of key-index stripes (matches the store's record shards
    /// when built through [`crate::ShardedStore`], so a batch grouped by
    /// record shard is already grouped by ledger stripe).
    pub(crate) fn key_stripes(&self) -> usize {
        self.key_shards.len()
    }

    fn client_shard(&self, c: Uuid) -> &ClientShard {
        &self.client_shards[(c.raw() % self.client_shards.len() as u64) as usize]
    }

    fn key_shard_of(&self, url: &str, asn: Asn) -> &KeyIndexShard {
        &self.key_shards[key_shard(url, asn, self.key_shards.len())]
    }

    /// The current vote epoch (see the module docs).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Add `client` to the voter index of every key in `added`, remove
    /// it from every key in `removed`. Called with no client lock held.
    /// Keys are grouped by destination stripe first so each touched
    /// stripe's write lock is taken exactly once.
    fn update_key_index(&self, client: Uuid, added: KeySet, removed: KeySet) {
        let n = self.key_shards.len();
        let mut ops: Vec<(usize, Key, bool)> = added
            .into_iter()
            .map(|k| (key_shard(&k.0, k.1, n), k, true))
            .chain(
                removed
                    .into_iter()
                    .map(|k| (key_shard(&k.0, k.1, n), k, false)),
            )
            .collect();
        ops.sort_by_key(|(s, _, _)| *s);
        let mut it = ops.into_iter().peekable();
        while let Some(s) = it.peek().map(|(s, _, _)| *s) {
            let mut shard = self.key_shards[s].write();
            while it.peek().map(|(s, _, _)| *s) == Some(s) {
                let (_, key, add) = it.next().expect("peeked entry exists");
                if add {
                    shard.entry(key).or_default().insert(client);
                } else if let Some(voters) = shard.get_mut(&key) {
                    voters.remove(&client);
                    if voters.is_empty() {
                        shard.remove(&key);
                    }
                }
            }
        }
    }

    /// Ingest-path fast lane: add pre-interned keys to `client`'s report
    /// set and the voter index. `keys` must be sorted by stripe index
    /// (as produced by the store's batch plan, whose record-shard
    /// grouping coincides with the ledger stripes); each run of equal
    /// indices is applied under one key-shard write acquisition.
    pub(crate) fn add_client_keys_grouped(&self, client: Uuid, keys: Vec<(u32, Key)>) {
        debug_assert!(
            keys.windows(2).all(|w| w[0].0 <= w[1].0),
            "keys not grouped"
        );
        let added: Vec<(u32, Key)> = {
            let mut shard = self.client_shard(client).write();
            let set = shard.entry(client).or_default();
            keys.into_iter()
                .filter(|(_, k)| set.insert(k.clone()))
                .collect()
        };
        if added.is_empty() {
            return;
        }
        let mut it = added.into_iter().peekable();
        while let Some(s) = it.peek().map(|(s, _)| *s) {
            let mut shard = self.key_shards[s as usize].write();
            while it.peek().map(|(s, _)| *s) == Some(s) {
                let (_, key) = it.next().expect("peeked entry exists");
                shard.entry(key).or_default().insert(client);
            }
        }
        self.bump_epoch();
    }

    /// Replace a client's reported blocked set. The client's single unit
    /// of vote is re-spread over the new set.
    pub fn set_client_report(&self, client: Uuid, urls: impl IntoIterator<Item = (String, Asn)>) {
        let new: KeySet = urls
            .into_iter()
            .map(|(u, a)| (Arc::<str>::from(u.as_str()), a))
            .collect();
        let (added, removed) = {
            let mut shard = self.client_shard(client).write();
            let old = if new.is_empty() {
                shard.remove(&client).unwrap_or_default()
            } else {
                shard.insert(client, new.clone()).unwrap_or_default()
            };
            let added: KeySet = new.difference(&old).cloned().collect();
            let removed: KeySet = old.difference(&new).cloned().collect();
            (added, removed)
        };
        if added.is_empty() && removed.is_empty() {
            return;
        }
        self.update_key_index(client, added, removed);
        self.bump_epoch();
    }

    /// Add URLs to a client's reported set (incremental reporting),
    /// re-spreading its vote.
    pub fn add_client_urls(&self, client: Uuid, urls: impl IntoIterator<Item = (String, Asn)>) {
        let n = self.key_shards.len();
        let mut keys: Vec<(u32, Key)> = urls
            .into_iter()
            .map(|(u, a)| {
                let key: Key = (Arc::<str>::from(u.as_str()), a);
                (key_shard(&key.0, key.1, n) as u32, key)
            })
            .collect();
        keys.sort_by_key(|(s, _)| *s);
        self.add_client_keys_grouped(client, keys);
    }

    /// Revoke a client entirely (malicious-user eviction, §5).
    pub fn revoke(&self, client: Uuid) {
        let removed = {
            let mut shard = self.client_shard(client).write();
            shard.remove(&client)
        };
        let Some(removed) = removed else { return };
        if removed.is_empty() {
            return;
        }
        self.update_key_index(client, KeySet::new(), removed);
        self.bump_epoch();
    }

    /// A client's current report-set size `d` (0 when absent).
    pub fn report_count(&self, client: Uuid) -> usize {
        self.client_shard(client)
            .read()
            .get(&client)
            .map(HashSet::len)
            .unwrap_or(0)
    }

    /// Current tally for a (URL, AS).
    ///
    /// `O(voters of that key)`, not `O(all clients)`: the inverted index
    /// names the voters, and each contributes `1/d` from its shard.
    /// Voters are visited in sorted UUID order so the float sum is
    /// independent of hash-map iteration order.
    pub fn tally(&self, url: &str, asn: Asn) -> Tally {
        let mut voters: Vec<Uuid> = {
            let shard = self.key_shard_of(url, asn).read();
            match shard.get(&(Arc::<str>::from(url), asn)) {
                Some(v) => v.iter().copied().collect(),
                None => return Tally::default(),
            }
        };
        voters.sort_unstable();
        let mut t = Tally::default();
        for c in voters {
            let d = self.report_count(c);
            if d > 0 {
                t.n += 1;
                t.s += 1.0 / d as f64;
            }
        }
        t
    }

    /// Total vote mass a client currently spends (1.0 if it reports
    /// anything, 0.0 otherwise) — the conservation invariant.
    pub fn client_vote_mass(&self, client: Uuid) -> f64 {
        match self.report_count(client) {
            0 => 0.0,
            d => d as f64 * (1.0 / d as f64),
        }
    }

    /// Number of clients currently voting.
    pub fn voter_count(&self) -> usize {
        self.client_shards.iter().map(|s| s.read().len()).sum()
    }

    /// Per-client report-set sizes (reputation auditing input). Walks
    /// the stripes one read lock at a time — no global lock.
    pub fn client_report_sizes(&self) -> Vec<(Uuid, usize)> {
        let mut out = Vec::new();
        for shard in self.client_shards.iter() {
            let g = shard.read();
            out.extend(g.iter().map(|(c, set)| (*c, set.len())));
        }
        out.sort_by_key(|(c, _)| *c);
        out
    }

    /// The (URL, AS) pairs a client currently reports.
    pub fn client_urls(&self, client: Uuid) -> Vec<(String, Asn)> {
        let mut out: Vec<(String, Asn)> = self
            .client_shard(client)
            .read()
            .get(&client)
            .map(|set| set.iter().map(|(u, a)| (u.to_string(), *a)).collect())
            .unwrap_or_default();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uuid(n: u64) -> Uuid {
        Uuid::from_raw(n)
    }

    #[test]
    fn vote_spreads_evenly() {
        let l = VoteLedger::new();
        l.set_client_report(
            uuid(1),
            [
                ("http://a.com/".to_string(), Asn(10)),
                ("http://b.com/".to_string(), Asn(10)),
            ],
        );
        let ta = l.tally("http://a.com/", Asn(10));
        assert_eq!(ta.n, 1);
        assert!((ta.s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn vote_mass_conserved() {
        let l = VoteLedger::new();
        for d in [1usize, 3, 10, 100] {
            let urls: Vec<(String, Asn)> = (0..d)
                .map(|i| (format!("http://site{i}.com/"), Asn(1)))
                .collect();
            l.set_client_report(uuid(7), urls);
            assert!((l.client_vote_mass(uuid(7)) - 1.0).abs() < 1e-9, "d={d}");
        }
    }

    #[test]
    fn replacement_retracts_old_votes() {
        let l = VoteLedger::new();
        l.set_client_report(uuid(1), [("http://a.com/".to_string(), Asn(1))]);
        l.set_client_report(uuid(1), [("http://b.com/".to_string(), Asn(1))]);
        assert_eq!(l.tally("http://a.com/", Asn(1)).n, 0);
        assert_eq!(l.tally("http://b.com/", Asn(1)).n, 1);
        // Empty replacement removes the voter entirely.
        l.set_client_report(uuid(1), std::iter::empty());
        assert_eq!(l.voter_count(), 0);
        assert_eq!(l.tally("http://b.com/", Asn(1)).n, 0);
    }

    #[test]
    fn many_honest_clients_beat_one_spammer() {
        let l = VoteLedger::new();
        // 10 honest clients each report the same 2 genuinely blocked URLs.
        for c in 0..10 {
            l.set_client_report(
                uuid(c),
                [
                    ("http://blocked-1.com/".to_string(), Asn(1)),
                    ("http://blocked-2.com/".to_string(), Asn(1)),
                ],
            );
        }
        // One spammer reports 1000 fake URLs.
        let fakes: Vec<(String, Asn)> = (0..1000)
            .map(|i| (format!("http://fake{i}.com/"), Asn(1)))
            .collect();
        l.set_client_report(uuid(99), fakes);

        let honest = l.tally("http://blocked-1.com/", Asn(1));
        let fake = l.tally("http://fake1.com/", Asn(1));
        assert_eq!(honest.n, 10);
        assert!((honest.s - 5.0).abs() < 1e-9);
        assert_eq!(fake.n, 1);
        assert!(fake.s < 0.01);
        // The paper's consumption rule separates them cleanly.
        let filter = ConfidenceFilter::strict(2, 0.1);
        assert!(filter.passes(&honest));
        assert!(!filter.passes(&fake));
    }

    #[test]
    fn vote_dilution_signature() {
        // Colluding clients each spraying many URLs have large n but tiny
        // average vote.
        let l = VoteLedger::new();
        for c in 0..20 {
            let urls: Vec<(String, Asn)> = (0..500)
                .map(|i| (format!("http://fake{i}.com/"), Asn(1)))
                .collect();
            l.set_client_report(uuid(c), urls);
        }
        let t = l.tally("http://fake0.com/", Asn(1));
        assert_eq!(t.n, 20);
        assert!(t.avg_vote() < 0.01);
        assert!(!ConfidenceFilter::strict(2, 0.1).passes(&t));
    }

    #[test]
    fn revocation_removes_influence() {
        let l = VoteLedger::new();
        l.set_client_report(uuid(1), [("http://x.com/".to_string(), Asn(1))]);
        assert_eq!(l.tally("http://x.com/", Asn(1)).n, 1);
        l.revoke(uuid(1));
        assert_eq!(l.tally("http://x.com/", Asn(1)).n, 0);
        assert_eq!(l.voter_count(), 0);
    }

    #[test]
    fn incremental_reports_respread() {
        let l = VoteLedger::new();
        l.add_client_urls(uuid(1), [("http://a.com/".to_string(), Asn(1))]);
        assert!((l.tally("http://a.com/", Asn(1)).s - 1.0).abs() < 1e-9);
        l.add_client_urls(uuid(1), [("http://b.com/".to_string(), Asn(1))]);
        assert!((l.tally("http://a.com/", Asn(1)).s - 0.5).abs() < 1e-9);
        assert!((l.tally("http://b.com/", Asn(1)).s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn per_as_tallies_are_separate() {
        let l = VoteLedger::new();
        l.set_client_report(uuid(1), [("http://x.com/".to_string(), Asn(1))]);
        assert_eq!(l.tally("http://x.com/", Asn(2)).n, 0);
    }

    #[test]
    fn epoch_moves_only_on_spread_changes() {
        let l = VoteLedger::new();
        let e0 = l.epoch();
        l.add_client_urls(uuid(1), [("http://a.com/".to_string(), Asn(1))]);
        let e1 = l.epoch();
        assert!(e1 > e0);
        // Re-adding the same URL is a no-op: 1/d unchanged, caches stay valid.
        l.add_client_urls(uuid(1), [("http://a.com/".to_string(), Asn(1))]);
        assert_eq!(l.epoch(), e1);
        l.revoke(uuid(1));
        assert!(l.epoch() > e1);
        // Revoking an absent client is a no-op.
        let e2 = l.epoch();
        l.revoke(uuid(42));
        assert_eq!(l.epoch(), e2);
    }

    #[test]
    fn grouped_fast_lane_matches_public_path() {
        // The ingest fast lane (pre-interned, stripe-grouped keys) must
        // leave the ledger in the same state as the public URL path.
        let a = VoteLedger::with_shards(8);
        let b = VoteLedger::with_shards(8);
        let urls: Vec<(String, Asn)> = (0..30)
            .map(|i| (format!("http://g{}.com/", i % 11), Asn(i % 3)))
            .collect();
        a.add_client_urls(uuid(5), urls.clone());
        let mut keys: Vec<(u32, Key)> = urls
            .iter()
            .map(|(u, asn)| {
                let key: Key = (Arc::<str>::from(u.as_str()), *asn);
                (key_shard(&key.0, key.1, b.key_stripes()) as u32, key)
            })
            .collect();
        keys.sort_by_key(|(s, _)| *s);
        b.add_client_keys_grouped(uuid(5), keys);
        assert_eq!(a.client_urls(uuid(5)), b.client_urls(uuid(5)));
        for (u, asn) in &urls {
            let (ta, tb) = (a.tally(u, *asn), b.tally(u, *asn));
            assert_eq!(ta.n, tb.n);
            assert!((ta.s - tb.s).abs() < 1e-12);
        }
        // Duplicate keys in one grouped call do not double-count.
        assert_eq!(b.report_count(uuid(5)), a.report_count(uuid(5)));
    }

    #[test]
    fn single_stripe_ledger_matches_striped() {
        // Same event sequence, shard counts 1 and 16: identical tallies.
        let a = VoteLedger::with_shards(1);
        let b = VoteLedger::with_shards(16);
        for l in [&a, &b] {
            for c in 0..50u64 {
                let urls: Vec<(String, Asn)> = (0..(c % 7 + 1))
                    .map(|i| {
                        (
                            format!("http://s{}.com/", (c + i) % 23),
                            Asn((c % 3) as u32),
                        )
                    })
                    .collect();
                l.set_client_report(uuid(c), urls);
            }
            for c in (0..50u64).step_by(5) {
                l.revoke(uuid(c));
            }
        }
        assert_eq!(a.voter_count(), b.voter_count());
        assert_eq!(a.client_report_sizes(), b.client_report_sizes());
        for i in 0..23 {
            for asn in 0..3u32 {
                let (ta, tb) = (
                    a.tally(&format!("http://s{i}.com/"), Asn(asn)),
                    b.tally(&format!("http://s{i}.com/"), Asn(asn)),
                );
                assert_eq!(ta.n, tb.n, "s{i} asn{asn}");
                assert!((ta.s - tb.s).abs() < 1e-12, "s{i} asn{asn}");
            }
        }
    }
}
