//! The global-DB wire protocol: message types carried inside
//! [`csaw_webproto::codec`] length-prefixed frames.
//!
//! Each frame is `len:u32 (BE) | op:u8 | payload`, where the payload is
//! a compact JSON object (the same in-tree JSON the WAL and scorecards
//! use). Requests and responses are modelled as enums with exact
//! encode/decode symmetry; a malformed payload decodes to
//! [`StoreError::Wire`], never a panic — the server rejects, the
//! connection survives.
//!
//! UUIDs cross the wire as 16-hex-digit strings (the JSON number space
//! is f64-backed, so raw u64 ids would lose precision — same convention
//! as the JSONL WAL). Times cross as integer microseconds.

use crate::batch::IngestReceipt;
use crate::error::StoreError;
use crate::ledger::ConfidenceFilter;
use crate::record::{GlobalRecord, Report, Uuid, WireError};
use csaw_censor::blocking::BlockingType;
use csaw_obs::json::JsonValue;
use csaw_simnet::time::SimTime;
use csaw_simnet::topology::Asn;
use csaw_webproto::codec::Frame;

/// Frame opcodes. Requests use the low range, responses the high range.
pub mod op {
    /// Client → server: register a new client UUID.
    pub const REGISTER: u8 = 0x01;
    /// Client → server: post a report batch for ingestion.
    pub const POST: u8 = 0x02;
    /// Client → server: download blocked records for an AS.
    pub const BLOCKED: u8 = 0x03;
    /// Leader → replica: ship a contiguous run of WAL lines.
    pub const SHIP: u8 = 0x04;
    /// Server → client: registration succeeded, payload carries the UUID.
    pub const REGISTERED: u8 = 0x81;
    /// Server → client: ingest receipt for a posted batch.
    pub const RECEIPT: u8 = 0x82;
    /// Server → client: blocked-record download result.
    pub const RECORDS: u8 = 0x83;
    /// Replica → leader: acknowledge the applied WAL position.
    pub const SHIP_ACK: u8 = 0x84;
    /// Server → client: the request failed; payload carries a code.
    pub const ERROR: u8 = 0xFF;
}

fn shape(msg: &'static str) -> StoreError {
    StoreError::Wire(WireError::Shape(msg))
}

fn parse_payload(frame: &Frame) -> Result<JsonValue, StoreError> {
    let text = std::str::from_utf8(&frame.payload)
        .map_err(|_| shape("frame payload must be UTF-8 JSON"))?;
    JsonValue::parse(text).map_err(|e| StoreError::Wire(WireError::Json(e)))
}

fn uuid_to_json(u: Uuid) -> JsonValue {
    JsonValue::from(format!("{u}"))
}

fn uuid_from_json(v: Option<&JsonValue>) -> Result<Uuid, StoreError> {
    let s = v
        .and_then(JsonValue::as_str)
        .ok_or(shape("uuid must be a hex string"))?;
    u64::from_str_radix(s, 16)
        .map(Uuid::from_raw)
        .map_err(|_| shape("uuid must be a hex string"))
}

fn indices_to_json(ix: &[usize]) -> JsonValue {
    JsonValue::Arr(ix.iter().map(|&i| JsonValue::from(i as u64)).collect())
}

fn indices_from_json(v: Option<&JsonValue>) -> Result<Vec<usize>, StoreError> {
    v.and_then(JsonValue::as_arr)
        .ok_or(shape("indices must be an array"))?
        .iter()
        .map(|i| {
            i.as_u64()
                .map(|n| n as usize)
                .ok_or(shape("index must be a number"))
        })
        .collect()
}

fn stages_to_json(stages: &[BlockingType]) -> JsonValue {
    JsonValue::Arr(stages.iter().map(|s| JsonValue::from(s.name())).collect())
}

fn stages_from_json(v: Option<&JsonValue>) -> Result<Vec<BlockingType>, StoreError> {
    v.and_then(JsonValue::as_arr)
        .ok_or(shape("stages must be an array"))?
        .iter()
        .map(|s| {
            s.as_str()
                .and_then(BlockingType::from_name)
                .ok_or(shape("unknown blocking type"))
        })
        .collect()
}

fn record_to_json(r: &GlobalRecord) -> JsonValue {
    let mut v = JsonValue::obj();
    v.set("url", r.url.as_str());
    v.set("asn", r.asn.0);
    v.set("measured_at_us", r.measured_at.as_micros());
    v.set("stages", stages_to_json(&r.stages));
    v.set("posted_at_us", r.posted_at.as_micros());
    v.set("reporter", uuid_to_json(r.reporter));
    v
}

fn record_from_json(v: &JsonValue) -> Result<GlobalRecord, StoreError> {
    Ok(GlobalRecord {
        url: v
            .get("url")
            .and_then(JsonValue::as_str)
            .ok_or(shape("record url must be a string"))?
            .to_string(),
        asn: Asn(v
            .get("asn")
            .and_then(JsonValue::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or(shape("record asn must be a u32"))?),
        measured_at: SimTime::from_micros(
            v.get("measured_at_us")
                .and_then(JsonValue::as_u64)
                .ok_or(shape("record measured_at_us must be a u64"))?,
        ),
        stages: stages_from_json(v.get("stages"))?,
        posted_at: SimTime::from_micros(
            v.get("posted_at_us")
                .and_then(JsonValue::as_u64)
                .ok_or(shape("record posted_at_us must be a u64"))?,
        ),
        reporter: uuid_from_json(v.get("reporter"))?,
    })
}

/// A client → server request.
#[derive(Debug, Clone, PartialEq)]
pub enum DbRequest {
    /// Register a new client; the server derives and returns a UUID.
    Register {
        /// Client's current virtual time (feeds UUID derivation).
        now: SimTime,
        /// Sybil-risk score the registrar gates on.
        risk: f64,
    },
    /// Post a report batch for ingestion.
    Post {
        /// The posting client's UUID.
        client: Uuid,
        /// Client-stamped post time (`T_p` for every record).
        posted_at: SimTime,
        /// The reports themselves.
        reports: Vec<Report>,
    },
    /// Download blocked records visible from an AS.
    Blocked {
        /// The AS to query.
        asn: Asn,
        /// Confidence thresholds to apply server-side.
        filter: ConfidenceFilter,
    },
    /// Ship a contiguous run of WAL lines to a replica (see
    /// [`crate::wal`] for the line codec). `lines[0]` carries the
    /// operation with sequence number `from_seq` (0-based: the first
    /// line ever written is seq 0).
    Ship {
        /// Sequence number of the first shipped line.
        from_seq: u64,
        /// Compact-JSON WAL lines, in log order.
        lines: Vec<String>,
    },
}

impl DbRequest {
    /// Encode to a wire frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            DbRequest::Register { now, risk } => {
                let mut v = JsonValue::obj();
                v.set("now_us", now.as_micros());
                v.set("risk", *risk);
                Frame::new(op::REGISTER, v.to_string_compact().into_bytes())
            }
            DbRequest::Post {
                client,
                posted_at,
                reports,
            } => {
                let mut v = JsonValue::obj();
                v.set("client", uuid_to_json(*client));
                v.set("posted_at_us", posted_at.as_micros());
                v.set(
                    "reports",
                    JsonValue::Arr(reports.iter().map(Report::to_json).collect()),
                );
                Frame::new(op::POST, v.to_string_compact().into_bytes())
            }
            DbRequest::Blocked { asn, filter } => {
                let mut v = JsonValue::obj();
                v.set("asn", asn.0);
                v.set("min_clients", filter.min_clients as u64);
                v.set("min_avg_vote", filter.min_avg_vote);
                Frame::new(op::BLOCKED, v.to_string_compact().into_bytes())
            }
            DbRequest::Ship { from_seq, lines } => {
                let mut v = JsonValue::obj();
                v.set("from_seq", *from_seq);
                v.set(
                    "lines",
                    JsonValue::Arr(lines.iter().map(|l| JsonValue::from(l.as_str())).collect()),
                );
                Frame::new(op::SHIP, v.to_string_compact().into_bytes())
            }
        }
    }

    /// Decode from a wire frame. Malformed payloads are
    /// [`StoreError::Wire`] (envelope) or [`StoreError::Malformed`]
    /// (a single poison report inside a Post, with its batch index).
    pub fn from_frame(frame: &Frame) -> Result<DbRequest, StoreError> {
        let v = parse_payload(frame)?;
        match frame.op {
            op::REGISTER => Ok(DbRequest::Register {
                now: SimTime::from_micros(
                    v.get("now_us")
                        .and_then(JsonValue::as_u64)
                        .ok_or(shape("now_us must be a u64"))?,
                ),
                risk: v
                    .get("risk")
                    .and_then(JsonValue::as_f64)
                    .ok_or(shape("risk must be a number"))?,
            }),
            op::POST => {
                let client = uuid_from_json(v.get("client"))?;
                let posted_at = SimTime::from_micros(
                    v.get("posted_at_us")
                        .and_then(JsonValue::as_u64)
                        .ok_or(shape("posted_at_us must be a u64"))?,
                );
                let arr = v
                    .get("reports")
                    .and_then(JsonValue::as_arr)
                    .ok_or(shape("reports must be an array"))?;
                let mut reports = Vec::with_capacity(arr.len());
                for (index, item) in arr.iter().enumerate() {
                    reports.push(
                        Report::from_json(item)
                            .map_err(|reason| StoreError::Malformed { index, reason })?,
                    );
                }
                Ok(DbRequest::Post {
                    client,
                    posted_at,
                    reports,
                })
            }
            op::BLOCKED => Ok(DbRequest::Blocked {
                asn: Asn(v
                    .get("asn")
                    .and_then(JsonValue::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or(shape("asn must be a u32"))?),
                filter: ConfidenceFilter {
                    min_clients: v
                        .get("min_clients")
                        .and_then(JsonValue::as_u64)
                        .ok_or(shape("min_clients must be a u64"))?
                        as usize,
                    min_avg_vote: v
                        .get("min_avg_vote")
                        .and_then(JsonValue::as_f64)
                        .ok_or(shape("min_avg_vote must be a number"))?,
                },
            }),
            op::SHIP => Ok(DbRequest::Ship {
                from_seq: v
                    .get("from_seq")
                    .and_then(JsonValue::as_u64)
                    .ok_or(shape("from_seq must be a u64"))?,
                lines: v
                    .get("lines")
                    .and_then(JsonValue::as_arr)
                    .ok_or(shape("lines must be an array"))?
                    .iter()
                    .map(|l| {
                        l.as_str()
                            .map(str::to_string)
                            .ok_or(shape("WAL line must be a string"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            _ => Err(shape("unknown request opcode")),
        }
    }
}

/// A server → client response.
#[derive(Debug, Clone, PartialEq)]
pub enum DbResponse {
    /// Registration succeeded.
    Registered(
        /// The server-assigned UUID.
        Uuid,
    ),
    /// Ingest finished; the receipt reconciles every batch index.
    Receipt(
        /// The accept/reject/defer split for the posted batch.
        IngestReceipt,
    ),
    /// Blocked-record download result.
    Records(
        /// Records passing the requested confidence filter.
        Vec<GlobalRecord>,
    ),
    /// WAL shipment acknowledged up to (but not including)
    /// `applied_seq`: the replica has applied `applied_seq` lines in
    /// total. An ack *below* the shipment's `from_seq` signals a gap —
    /// the leader must rewind and re-ship from `applied_seq`.
    ShipAck {
        /// Total WAL lines the replica has applied so far.
        applied_seq: u64,
    },
    /// The request failed.
    Error {
        /// Machine-readable code (see [`DbResponse::from_store_error`]).
        code: String,
        /// Human-readable detail.
        detail: String,
        /// For `malformed` errors: the poison report's batch index.
        index: Option<usize>,
    },
}

impl DbResponse {
    /// Encode to a wire frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            DbResponse::Registered(uuid) => {
                let mut v = JsonValue::obj();
                v.set("uuid", uuid_to_json(*uuid));
                Frame::new(op::REGISTERED, v.to_string_compact().into_bytes())
            }
            DbResponse::Receipt(r) => {
                let mut v = JsonValue::obj();
                v.set("accepted", r.accepted as u64);
                v.set("rejected", r.rejected as u64);
                v.set("rejected_indices", indices_to_json(&r.rejected_indices));
                v.set("deferred_indices", indices_to_json(&r.deferred_indices));
                Frame::new(op::RECEIPT, v.to_string_compact().into_bytes())
            }
            DbResponse::Records(records) => {
                let mut v = JsonValue::obj();
                v.set(
                    "records",
                    JsonValue::Arr(records.iter().map(record_to_json).collect()),
                );
                Frame::new(op::RECORDS, v.to_string_compact().into_bytes())
            }
            DbResponse::ShipAck { applied_seq } => {
                let mut v = JsonValue::obj();
                v.set("applied_seq", *applied_seq);
                Frame::new(op::SHIP_ACK, v.to_string_compact().into_bytes())
            }
            DbResponse::Error {
                code,
                detail,
                index,
            } => {
                let mut v = JsonValue::obj();
                v.set("code", code.as_str());
                v.set("detail", detail.as_str());
                if let Some(i) = index {
                    v.set("index", *i as u64);
                }
                Frame::new(op::ERROR, v.to_string_compact().into_bytes())
            }
        }
    }

    /// Decode from a wire frame.
    pub fn from_frame(frame: &Frame) -> Result<DbResponse, StoreError> {
        let v = parse_payload(frame)?;
        match frame.op {
            op::REGISTERED => Ok(DbResponse::Registered(uuid_from_json(v.get("uuid"))?)),
            op::RECEIPT => Ok(DbResponse::Receipt(IngestReceipt {
                accepted: v
                    .get("accepted")
                    .and_then(JsonValue::as_u64)
                    .ok_or(shape("accepted must be a u64"))? as usize,
                rejected: v
                    .get("rejected")
                    .and_then(JsonValue::as_u64)
                    .ok_or(shape("rejected must be a u64"))? as usize,
                rejected_indices: indices_from_json(v.get("rejected_indices"))?,
                deferred_indices: indices_from_json(v.get("deferred_indices"))?,
            })),
            op::RECORDS => Ok(DbResponse::Records(
                v.get("records")
                    .and_then(JsonValue::as_arr)
                    .ok_or(shape("records must be an array"))?
                    .iter()
                    .map(record_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            op::SHIP_ACK => Ok(DbResponse::ShipAck {
                applied_seq: v
                    .get("applied_seq")
                    .and_then(JsonValue::as_u64)
                    .ok_or(shape("applied_seq must be a u64"))?,
            }),
            op::ERROR => Ok(DbResponse::Error {
                code: v
                    .get("code")
                    .and_then(JsonValue::as_str)
                    .ok_or(shape("error code must be a string"))?
                    .to_string(),
                detail: v
                    .get("detail")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                index: v
                    .get("index")
                    .and_then(JsonValue::as_u64)
                    .map(|n| n as usize),
            }),
            _ => Err(shape("unknown response opcode")),
        }
    }

    /// Wrap a [`StoreError`] as a wire error response.
    pub fn from_store_error(e: &StoreError) -> DbResponse {
        let (code, index) = match e {
            StoreError::UnknownClient => ("unknown_client", None),
            StoreError::Wire(_) => ("wire", None),
            StoreError::Malformed { index, .. } => ("malformed", Some(*index)),
            StoreError::Io { .. } => ("io", None),
            StoreError::Corrupt(_) => ("corrupt", None),
            StoreError::InvalidConfig(_) => ("invalid_config", None),
            StoreError::Unavailable(_) => ("unavailable", None),
        };
        DbResponse::Error {
            code: code.to_string(),
            detail: e.to_string(),
            index,
        }
    }

    /// Map a wire error response back to a [`StoreError`] on the client
    /// side. `&'static str` payloads cannot round-trip arbitrary remote
    /// detail, so retryability (the part callers branch on) is preserved
    /// exactly and the detail is folded into `Corrupt` otherwise.
    pub fn to_store_error(code: &str, detail: &str, index: Option<usize>) -> StoreError {
        match code {
            "unknown_client" => StoreError::UnknownClient,
            "wire" => shape("batch rejected by remote server"),
            "malformed" => StoreError::Malformed {
                index: index.unwrap_or(0),
                reason: WireError::Shape("report rejected by remote server"),
            },
            "unavailable" => StoreError::Unavailable("remote server unavailable"),
            _ => StoreError::Corrupt(format!("remote error {code}: {detail}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<Report> {
        vec![
            Report {
                url: "http://blocked.example/".into(),
                asn: 17557,
                measured_at_us: 1_000_000,
                stages: vec![BlockingType::DnsHijack, BlockingType::HttpDrop],
            },
            Report {
                url: "https://other.example:8443/page".into(),
                asn: 38193,
                measured_at_us: 2_000_000,
                stages: vec![BlockingType::HttpBlockPageRedirect],
            },
        ]
    }

    #[test]
    fn request_frames_roundtrip() {
        let reqs = vec![
            DbRequest::Register {
                now: SimTime::from_secs(5),
                risk: 0.25,
            },
            DbRequest::Post {
                client: Uuid::from_raw(0xdead_beef_dead_beef),
                posted_at: SimTime::from_secs(9),
                reports: sample_reports(),
            },
            DbRequest::Blocked {
                asn: Asn(17557),
                filter: ConfidenceFilter {
                    min_clients: 3,
                    min_avg_vote: 0.5,
                },
            },
            DbRequest::Ship {
                from_seq: 42,
                lines: vec![
                    "{\"op\":\"revoke\",\"client\":\"0000000000000003\"}".to_string(),
                    "{\"op\":\"expire\",\"now_us\":9,\"max_age_us\":1}".to_string(),
                ],
            },
            DbRequest::Ship {
                from_seq: 0,
                lines: Vec::new(),
            },
        ];
        for req in reqs {
            let frame = req.to_frame();
            assert_eq!(DbRequest::from_frame(&frame).unwrap(), req);
        }
    }

    #[test]
    fn response_frames_roundtrip() {
        let resps = vec![
            DbResponse::Registered(Uuid::from_raw(u64::MAX)),
            DbResponse::Receipt(IngestReceipt {
                accepted: 3,
                rejected: 1,
                rejected_indices: vec![2],
                deferred_indices: vec![4, 5],
            }),
            DbResponse::Records(vec![GlobalRecord {
                url: "http://blocked.example/".into(),
                asn: Asn(17557),
                measured_at: SimTime::from_secs(1),
                stages: vec![BlockingType::IpRst],
                posted_at: SimTime::from_secs(2),
                reporter: Uuid::from_raw(0x1234_5678_9abc_def0),
            }]),
            DbResponse::ShipAck { applied_seq: 44 },
            DbResponse::Error {
                code: "unknown_client".into(),
                detail: "unknown or revoked client UUID".into(),
                index: None,
            },
        ];
        for resp in resps {
            let frame = resp.to_frame();
            assert_eq!(DbResponse::from_frame(&frame).unwrap(), resp);
        }
    }

    #[test]
    fn uuid_hex_survives_full_u64_range() {
        // The JSON number space is f64-backed; the hex-string encoding
        // must carry ids a double cannot.
        let resp = DbResponse::Registered(Uuid::from_raw(u64::MAX - 1));
        match DbResponse::from_frame(&resp.to_frame()).unwrap() {
            DbResponse::Registered(u) => assert_eq!(u.raw(), u64::MAX - 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn poison_post_report_names_its_index() {
        let good = Report {
            url: "http://x.example/".into(),
            asn: 1,
            measured_at_us: 0,
            stages: vec![BlockingType::HttpDrop],
        };
        let req = DbRequest::Post {
            client: Uuid::from_raw(1),
            posted_at: SimTime::ZERO,
            reports: vec![good],
        };
        let mut frame = req.to_frame();
        // Corrupt the reports array: replace the url value with a number.
        let text = String::from_utf8(frame.payload.clone()).unwrap();
        let text = text.replace("\"http://x.example/\"", "5");
        frame.payload = text.into_bytes();
        match DbRequest::from_frame(&frame).unwrap_err() {
            StoreError::Malformed { index, .. } => assert_eq!(index, 0),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn store_error_wire_mapping_preserves_retryability() {
        let cases = [
            StoreError::UnknownClient,
            StoreError::Unavailable("overload"),
            StoreError::Malformed {
                index: 7,
                reason: WireError::Shape("bad"),
            },
        ];
        for e in cases {
            let resp = DbResponse::from_store_error(&e);
            let DbResponse::Error {
                code,
                detail,
                index,
            } = &resp
            else {
                panic!("expected error response");
            };
            let back = DbResponse::to_store_error(code, detail, *index);
            match (&e, &back) {
                (StoreError::UnknownClient, StoreError::UnknownClient) => {}
                (StoreError::Unavailable(_), StoreError::Unavailable(_)) => {}
                (
                    StoreError::Malformed { index: a, .. },
                    StoreError::Malformed { index: b, .. },
                ) => assert_eq!(a, b),
                other => panic!("mapping broke retryability: {other:?}"),
            }
        }
    }

    #[test]
    fn bad_payloads_are_wire_errors() {
        let garbage = Frame::new(op::POST, b"not json".to_vec());
        assert!(matches!(
            DbRequest::from_frame(&garbage).unwrap_err(),
            StoreError::Wire(_)
        ));
        let unknown = Frame::new(0x70, b"{}".to_vec());
        assert!(matches!(
            DbRequest::from_frame(&unknown).unwrap_err(),
            StoreError::Wire(_)
        ));
        let not_utf8 = Frame::new(op::RECEIPT, vec![0xff, 0xfe]);
        assert!(matches!(
            DbResponse::from_frame(&not_utf8).unwrap_err(),
            StoreError::Wire(_)
        ));
    }
}
