//! The storage backend abstraction and the append-only JSONL backend.
//!
//! [`StorageBackend`] is the seam the server front-end programs against:
//! the in-memory [`ShardedStore`] for
//! simulation runs, [`JsonlStore`] when the deployment needs the global
//! DB to survive a restart, or anything custom injected through the
//! builder.
//!
//! The JSONL backend is a write-ahead log in the literal sense: every
//! mutating operation is appended as one JSON line *before* it is
//! applied to the wrapped in-memory store, and `open` rebuilds the
//! store by replaying the log through the exact same code paths. The
//! line codec itself lives in [`crate::wal`] so WAL shipping
//! (`csaw-replica`) and restart replay share one implementation.

use crate::batch::{Batch, IngestReceipt};
use crate::error::StoreError;
use crate::ledger::{ConfidenceFilter, Tally, VoteLedger};
use crate::record::{GlobalRecord, Uuid};
use crate::shard::ShardedStore;
use crate::wal;
use csaw_obs::contention::TimedMutex;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// What a global measurement store must provide. Object-safe so the
/// server can hold `Arc<dyn StorageBackend>` and backends can be
/// swapped without touching the front-end.
///
/// Every method takes `&self`: backends are internally synchronized and
/// shared across ingestion threads.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Ingest one client's report batch. Never panics on garbage input;
    /// unsalvageable reports are counted in the receipt's `rejected`.
    fn ingest(&self, batch: &Batch) -> Result<IngestReceipt, StoreError>;

    /// Confidence-filtered snapshot of blocked URLs for one AS, sorted
    /// by URL.
    ///
    /// Fallible by design: backends that can be transiently unreachable
    /// (fault injection, remote stores) surface a failed download as an
    /// error the caller can see — not an empty list that silently wipes
    /// a client's cached view. In-memory backends never fail.
    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError>;

    /// Vote tally for one (URL, AS) key.
    fn tally(&self, url: &str, asn: Asn) -> Tally;

    /// Retract every vote a client has cast (reputation revocation).
    fn revoke(&self, client: Uuid);

    /// Drop every record a client reported; returns how many.
    fn remove_reporter_records(&self, client: Uuid) -> usize;

    /// Drop records older than `max_age` at time `now`; returns how many.
    fn expire_records(&self, now: SimTime, max_age: SimDuration) -> usize;

    /// Number of live records.
    fn record_count(&self) -> usize;

    /// Visit every live record (shard by shard; no global lock).
    fn for_each_record(&self, f: &mut dyn FnMut(&GlobalRecord));

    /// The vote ledger backing this store.
    fn ledger(&self) -> &VoteLedger;

    /// How many shards the keyspace is striped over.
    fn shard_count(&self) -> usize;

    /// Flush any buffered durable state. No-op for memory backends.
    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }
}

/// An append-only JSONL write-ahead log wrapped around the in-memory
/// sharded store. One line per mutating operation; [`JsonlStore::open`]
/// replays the log through the normal ingest/revoke/expire paths, so a
/// reopened store is state-identical to the one that wrote the log
/// (stable FNV shard placement makes replay land every key on the same
/// shard).
pub struct JsonlStore {
    inner: ShardedStore,
    path: PathBuf,
    log: TimedMutex<BufWriter<File>>,
}

impl fmt::Debug for JsonlStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlStore")
            .field("path", &self.path)
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl JsonlStore {
    /// Open (or create) a log at `path` over a fresh `shards`-way store,
    /// replaying any existing operations. A truncated or hand-edited
    /// line is [`StoreError::Corrupt`] with its line number.
    pub fn open(path: &Path, shards: usize) -> Result<JsonlStore, StoreError> {
        let inner = ShardedStore::new(shards)?;
        if path.exists() {
            let f = File::open(path).map_err(|e| StoreError::io(path, e))?;
            for (no, line) in BufReader::new(f).lines().enumerate() {
                let line = line.map_err(|e| StoreError::io(path, e))?;
                if line.trim().is_empty() {
                    continue;
                }
                wal::replay_line(&inner, &line)
                    .map_err(|e| StoreError::Corrupt(format!("line {}: {e}", no + 1)))?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        Ok(JsonlStore {
            inner,
            path: path.to_path_buf(),
            log: TimedMutex::new("store.wal.log", BufWriter::new(file)),
        })
    }

    /// The log file this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record wall-clock per-batch ingest latency in the wrapped
    /// in-memory store (see
    /// [`ShardedStore::with_ingest_latency`]).
    pub fn with_ingest_latency(mut self, on: bool) -> JsonlStore {
        self.inner = self.inner.with_ingest_latency(on);
        self
    }

    fn append(&self, mut line: String) -> Result<(), StoreError> {
        line.push('\n');
        let mut log = self.log.lock();
        log.write_all(line.as_bytes())
            .map_err(|e| StoreError::io(&self.path, e))?;
        csaw_obs::inc("store.wal.appends");
        csaw_obs::add("store.wal.bytes", line.len() as u64);
        // Windowed WAL lag signal: appends per window on the timeline.
        let tl = &csaw_obs::current().timeline;
        if tl.enabled() {
            tl.counter("store.wal.appends", &[]).inc();
        }
        Ok(())
    }
}

impl StorageBackend for JsonlStore {
    fn ingest(&self, batch: &Batch) -> Result<IngestReceipt, StoreError> {
        self.append(wal::ingest_line(batch))?;
        self.inner.ingest(batch)
    }

    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError> {
        self.inner.blocked_for_as(asn, filter)
    }

    fn tally(&self, url: &str, asn: Asn) -> Tally {
        self.inner.tally(url, asn)
    }

    fn revoke(&self, client: Uuid) {
        // Best-effort on the revocation path: the in-memory retraction
        // must happen even if the log write fails.
        let _ = self.append(wal::revoke_line(client));
        self.inner.revoke(client);
    }

    fn remove_reporter_records(&self, client: Uuid) -> usize {
        let _ = self.append(wal::remove_reporter_line(client));
        self.inner.remove_reporter_records(client)
    }

    fn expire_records(&self, now: SimTime, max_age: SimDuration) -> usize {
        let _ = self.append(wal::expire_line(now, max_age));
        self.inner.expire_records(now, max_age)
    }

    fn record_count(&self) -> usize {
        self.inner.record_count()
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&GlobalRecord)) {
        self.inner.for_each_record(f)
    }

    fn ledger(&self) -> &VoteLedger {
        self.inner.ledger()
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn flush(&self) -> Result<(), StoreError> {
        let mut log = self.log.lock();
        log.flush().map_err(|e| StoreError::io(&self.path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Report;
    use csaw_censor::blocking::BlockingType;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "csaw-store-test-{}-{name}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn batch(client: u64, url: &str, asn: u32, t: u64) -> Batch {
        Batch::new(
            Uuid::from_raw(client),
            vec![Report {
                url: url.into(),
                asn,
                measured_at_us: t,
                stages: vec![BlockingType::HttpDrop],
            }],
            SimTime::from_micros(t),
        )
    }

    #[test]
    fn replay_restores_records_and_votes() {
        let path = tmp("replay");
        {
            let s = JsonlStore::open(&path, 4).unwrap();
            s.ingest(&batch(0xdead_beef_dead_beef, "http://a.com/", 7, 10))
                .unwrap();
            s.ingest(&batch(2, "http://a.com/", 7, 20)).unwrap();
            s.ingest(&batch(3, "http://b.com/", 7, 30)).unwrap();
            s.revoke(Uuid::from_raw(3));
            s.flush().unwrap();
        }
        let s = JsonlStore::open(&path, 4).unwrap();
        assert_eq!(s.record_count(), 2);
        let t = s.tally("http://a.com/", Asn(7));
        assert_eq!(t.n, 2);
        assert_eq!(
            s.tally("http://b.com/", Asn(7)).n,
            0,
            "revoked vote replayed"
        );
        // Full-range UUID survives the hex round-trip.
        assert_eq!(
            s.ledger()
                .client_urls(Uuid::from_raw(0xdead_beef_dead_beef))
                .len(),
            1
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_is_shard_count_independent_in_content() {
        let path = tmp("shards");
        {
            let s = JsonlStore::open(&path, 16).unwrap();
            for c in 0..20u64 {
                s.ingest(&batch(c, &format!("http://s{}.com/", c % 5), 1, c))
                    .unwrap();
            }
            s.flush().unwrap();
        }
        // Reopen with a different stripe width: same logical state.
        let s = JsonlStore::open(&path, 3).unwrap();
        assert_eq!(s.shard_count(), 3);
        assert_eq!(s.record_count(), 5);
        let v = s
            .blocked_for_as(Asn(1), &ConfidenceFilter::strict(2, 0.0))
            .unwrap();
        assert_eq!(v.len(), 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_line_is_an_error_with_line_number() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{\"op\":\"ingest\"}\n").unwrap();
        let err = JsonlStore::open(&path, 2).unwrap_err();
        match err {
            StoreError::Corrupt(msg) => assert!(msg.contains("line 1"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(JsonlStore::open(&path, 2).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn expire_survives_replay() {
        let path = tmp("expire");
        {
            let s = JsonlStore::open(&path, 2).unwrap();
            s.ingest(&batch(1, "http://old.com/", 1, 1_000_000))
                .unwrap();
            s.ingest(&batch(2, "http://new.com/", 1, 60_000_000))
                .unwrap();
            assert_eq!(
                s.expire_records(SimTime::from_secs(61), SimDuration::from_secs(30)),
                1
            );
            s.flush().unwrap();
        }
        let s = JsonlStore::open(&path, 2).unwrap();
        assert_eq!(s.record_count(), 1);
        let mut urls = Vec::new();
        s.for_each_record(&mut |r| urls.push(r.url.clone()));
        assert_eq!(urls, ["http://new.com/"]);
        let _ = std::fs::remove_file(&path);
    }
}
