//! A hand-rolled atomically-swappable `Arc` cell (`arc-swap` style,
//! hermetic — the workspace takes no external dependencies).
//!
//! [`SwapCell`] holds an `Arc<T>` that readers can clone without taking
//! any lock and writers replace with a single atomic pointer swap. The
//! store uses it for per-shard snapshot caches: `blocked_for_as` loads
//! the current cache map lock-free, and a cache miss publishes a new
//! immutable map by swapping it in. Cache reads therefore never contend
//! with each other or with writers — the `store.shard.cache` mutex this
//! replaces used to serialize every reader of a shard.
//!
//! ## Safety protocol
//!
//! The cell stores the raw pointer obtained from [`Arc::into_raw`] and a
//! reader count. A load increments the reader count, clones the `Arc`
//! behind the pointer, and decrements; a store swaps the pointer and
//! then spins until the reader count drains to zero before releasing its
//! strong count on the *old* value. A reader that raced the swap and is
//! still cloning the old pointer is therefore always protected: the
//! writer cannot drop the old `Arc` while any reader is inside the
//! critical section. The critical section is three atomic ops long, so
//! writer spins are short; after a bounded spin the writer yields to the
//! scheduler so a preempted reader on a single-core host cannot stall it
//! for a whole timeslice.
//!
//! Concurrent writers are safe: each swap returns a unique old pointer,
//! so every strong count is released exactly once.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// A lock-free swappable `Arc<T>` slot. See the module docs for the
/// reader/writer protocol.
#[derive(Debug)]
pub(crate) struct SwapCell<T> {
    /// Raw pointer from `Arc::into_raw`; the cell owns one strong count.
    ptr: AtomicPtr<T>,
    /// Readers currently between load and clone — writers drain this to
    /// zero before releasing the swapped-out value.
    readers: AtomicUsize,
}

impl<T> SwapCell<T> {
    /// A cell initially holding `value`.
    pub(crate) fn new(value: Arc<T>) -> SwapCell<T> {
        SwapCell {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            readers: AtomicUsize::new(0),
        }
    }

    /// Clone the current value out of the cell without locking.
    pub(crate) fn load(&self) -> Arc<T> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let p = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `p` came from `Arc::into_raw` and the cell's strong
        // count on it cannot be released while `readers > 0` (writers
        // drain the count before dropping), so the allocation is live.
        // `increment_strong_count` + `from_raw` nets out to a clone that
        // leaves the cell's own count untouched.
        let value = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        value
    }

    /// Publish `value`, replacing the current one. Readers that loaded
    /// the old value keep their clones; the old `Arc` is released once
    /// in-flight readers drain.
    pub(crate) fn store(&self, value: Arc<T>) {
        let new = Arc::into_raw(value).cast_mut();
        let old = self.ptr.swap(new, Ordering::SeqCst);
        let mut spins = 0u32;
        while self.readers.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // A reader was preempted inside its three-op critical
                // section; don't burn the rest of our timeslice.
                std::thread::yield_now();
            }
        }
        // SAFETY: `old` came from `Arc::into_raw` (in `new` or an
        // earlier `store`) and the atomic swap handed it to exactly this
        // caller; no reader still dereferences it (count drained).
        drop(unsafe { Arc::from_raw(old) });
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        // SAFETY: the cell holds one strong count on `p`; `&mut self`
        // means no reader or writer is in flight.
        drop(unsafe { Arc::from_raw(p) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let cell = SwapCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        // An old clone outlives the swap that replaced it.
        let old = cell.load();
        cell.store(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn concurrent_readers_and_writers_never_tear() {
        // Values carry a self-consistency check: both halves of the pair
        // must agree, so a torn or use-after-free read would trip it
        // (under ASAN/MIRI it would fault outright).
        let cell = Arc::new(SwapCell::new(Arc::new((0u64, 0u64))));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let v = cell.load();
                        assert_eq!(v.0, v.1, "torn snapshot");
                    }
                });
            }
            for t in 0..2u64 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for i in 0..10_000 {
                        let x = t * 1_000_000 + i;
                        cell.store(Arc::new((x, x)));
                    }
                });
            }
        });
        let v = cell.load();
        assert_eq!(v.0, v.1);
    }

    #[test]
    fn drop_releases_the_held_value() {
        let probe = Arc::new(42u8);
        let cell = SwapCell::new(Arc::clone(&probe));
        assert_eq!(Arc::strong_count(&probe), 2);
        drop(cell);
        assert_eq!(Arc::strong_count(&probe), 1);
    }
}
