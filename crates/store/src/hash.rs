//! Shard placement: FNV-1a over the URL×ASN keyspace.
//!
//! The std `HashMap` hasher is randomly seeded per process, which is
//! exactly wrong for shard placement — two runs (or a replayed log)
//! must land every key on the same shard. FNV-1a is stable, cheap, and
//! mixes short URL strings well.

use csaw_simnet::topology::Asn;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over arbitrary bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable shard hash of a (URL, AS) key.
pub fn key_hash(url: &str, asn: Asn) -> u64 {
    let mut h = fnv1a(url.as_bytes());
    for b in asn.0.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Shard index for a (URL, AS) key in an `n`-shard store.
pub fn key_shard(url: &str, asn: Asn, n: usize) -> usize {
    (key_hash(url, asn) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_spread() {
        // Stability: fixed vectors, fixed outputs (FNV-1a reference).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        // Spread: 10k URLs over 16 shards land within 2x of uniform.
        let n = 16;
        let mut counts = vec![0usize; n];
        for i in 0..10_000 {
            counts[key_shard(&format!("http://site-{i}.example/"), Asn(1), n)] += 1;
        }
        for c in &counts {
            assert!(*c > 300 && *c < 1300, "skewed shard: {counts:?}");
        }
    }

    #[test]
    fn asn_perturbs_placement() {
        let url = "http://x.example/";
        let spread: std::collections::HashSet<usize> =
            (0..64).map(|a| key_shard(url, Asn(a), 16)).collect();
        assert!(spread.len() > 4, "ASN must move keys across shards");
    }
}
