//! # csaw-store — the sharded, concurrent global measurement store
//!
//! The C-Saw server's global DB at deployment scale (§4 "the aggregate
//! information is stored in a global database"): millions of clients
//! posting report batches concurrently while other clients pull
//! confidence-filtered blocked-URL snapshots for their AS.
//!
//! Design:
//!
//! - **Lock striping** ([`shard`]): the URL×ASN keyspace is split over
//!   N shards by a stable FNV-1a hash ([`hash`]); each shard has its
//!   own `RwLock`, so there is no global lock on ingest or lookup.
//! - **Batched ingest** ([`batch`]): a client's reports are sanitized,
//!   interned (`Arc<str>` URLs) and coalesced per destination shard
//!   *before* any lock is taken — each touched record shard **and**
//!   each touched ledger stripe locks once per batch, not once per
//!   report.
//! - **Snapshot caching** (the private `swap` module): `blocked_for_as`
//!   is served from
//!   per-shard caches validated against (shard generation, vote epoch);
//!   the cache map itself is an atomically swapped immutable snapshot,
//!   so cache reads take no lock at all.
//! - **Sharded voting** ([`ledger`]): the 1/d vote-spreading ledger is
//!   itself lock-striped (clients and keys separately) with a
//!   deterministic tally — voters sort before the float sum, so the
//!   result is independent of arrival order, thread count, and shard
//!   count.
//! - **Pluggable persistence** ([`backend`]): the [`StorageBackend`]
//!   trait with two implementations — the in-memory [`ShardedStore`]
//!   and the append-only [`JsonlStore`] write-ahead log that replays on
//!   open.
//! - **One error type** ([`error`]): every fallible path returns
//!   [`StoreError`] — reads included ([`StorageBackend::blocked_for_as`]
//!   is `Result`, so transiently-unavailable backends surface as errors
//!   rather than empty lists); nothing in the store panics on input.
//!
//! Telemetry flows through `csaw-obs` (`store.ingest.*`,
//! `store.cache.*`, `store.records`, per-shard gauges); hot paths use
//! handles pre-resolved at construction.
//!
//! ## Example
//!
//! Ingest one client's batch, then read the AS's blocked list back:
//!
//! ```
//! use csaw_store::{Batch, ConfidenceFilter, Report, ShardedStore, StorageBackend, Uuid};
//! use csaw_censor::blocking::BlockingType;
//! use csaw_simnet::time::SimTime;
//! use csaw_simnet::topology::Asn;
//!
//! let store = ShardedStore::new(8)?;
//! let batch = Batch::new(
//!     Uuid::from_raw(1),
//!     vec![Report {
//!         url: "http://blocked.example/".into(),
//!         asn: 17557,
//!         measured_at_us: 1_000_000,
//!         stages: vec![BlockingType::DnsNxdomain],
//!     }],
//!     SimTime::from_secs(2),
//! );
//! let receipt = store.ingest(&batch)?;
//! assert_eq!(receipt.accepted, 1);
//! let blocked = store.blocked_for_as(Asn(17557), &ConfidenceFilter::default())?;
//! assert_eq!(blocked.len(), 1);
//! # Ok::<(), csaw_store::StoreError>(())
//! ```

#![deny(missing_docs)]
// `unsafe` is denied crate-wide; the one exception is the reviewed
// reader/writer protocol in [`swap`], which opts in locally.
#![deny(unsafe_code)]

pub mod backend;
pub mod batch;
pub mod error;
pub mod hash;
pub mod ledger;
pub mod net;
pub mod record;
pub mod shard;
pub(crate) mod swap;
pub mod wal;

pub use backend::{JsonlStore, StorageBackend};
pub use batch::{Batch, IngestReceipt};
pub use error::StoreError;
pub use ledger::{ConfidenceFilter, Tally, VoteLedger};
pub use net::{DbRequest, DbResponse};
pub use record::{GlobalRecord, Report, Uuid, WireError};
pub use shard::ShardedStore;
