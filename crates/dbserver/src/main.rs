//! `csaw-dbserver` — run the global-DB server standalone.
//!
//! Binds a loopback port (printed on stdout as `listening <addr>`),
//! serves the length-framed wire protocol, and drains gracefully when
//! stdin closes or a `drain` line arrives — the hermetic stand-in for
//! signal handling.
//!
//! ```text
//! csaw-dbserver [--salt N] [--shards N] [--max-risk F] [--max-pending N]
//! ```

use csaw::global::{RegistrarConfig, ServerDb};
use csaw_dbserver::{spawn_dbserver, DbServerConfig};
use csaw_simnet::time::SimDuration;
use std::io::BufRead;
use std::sync::Arc;

fn numeric<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let v = args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: bad value {v:?}");
        std::process::exit(2);
    })
}

fn main() {
    let mut salt: u64 = 7;
    let mut shards: usize = 16;
    let mut max_risk: f64 = 1.0;
    let mut max_pending: usize = DbServerConfig::default().max_batches_per_pass;
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--salt" => salt = numeric(&mut args, "--salt"),
            "--shards" => shards = numeric(&mut args, "--shards"),
            "--max-risk" => max_risk = numeric(&mut args, "--max-risk"),
            "--max-pending" => max_pending = numeric(&mut args, "--max-pending"),
            "--help" | "-h" => {
                println!(
                    "usage: csaw-dbserver [--salt N] [--shards N] [--max-risk F] [--max-pending N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let server = ServerDb::builder(salt)
        .shards(shards)
        .registrar(RegistrarConfig {
            max_risk,
            max_per_window: usize::MAX,
            window: SimDuration::from_secs(3600),
        })
        .build()
        .unwrap_or_else(|e| {
            eprintln!("server build failed: {e}");
            std::process::exit(1);
        });
    let handle = spawn_dbserver(Arc::new(server), {
        DbServerConfig {
            max_batches_per_pass: max_pending,
            ..DbServerConfig::default()
        }
    })
    .unwrap_or_else(|e| {
        eprintln!("bind failed: {e}");
        std::process::exit(1);
    });
    println!("listening {}", handle.addr());

    // Serve until stdin says stop (EOF or an explicit `drain` line).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "drain" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let stats = handle.drain();
    println!(
        "drained: conns={} frames_in={} batches={} accepted={} rejected={} deferred={}",
        stats.connections_accepted,
        stats.frames_in,
        stats.batches_ingested,
        stats.reports_accepted,
        stats.reports_rejected,
        stats.reports_deferred,
    );
}
