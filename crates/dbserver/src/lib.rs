//! # csaw-dbserver — the global DB served over real sockets
//!
//! The paper's server_DB was a hosted service reached over the network
//! (MongoLab/Heroku); this crate is our reproduction of that deployment
//! shape: a standalone TCP server that fronts a [`ServerDb`] with the
//! length-framed wire protocol from [`csaw_store::net`], carried by the
//! shared incremental codec in [`csaw_webproto::codec`].
//!
//! ## The reactor
//!
//! The workspace is hermetic (no `mio`, no `libc`), so the event loop
//! is a hand-rolled readiness loop over `std::net` sockets set
//! non-blocking — the same shape as an epoll reactor, with `WouldBlock`
//! standing in for "not ready":
//!
//! 1. **Accept** every pending connection (unless draining).
//! 2. **Read** whatever bytes each connection has, into its per-
//!    connection [`BytesMut`], and decode complete frames.
//! 3. **Execute** the pass's decoded requests. Concurrent `Post`
//!    requests are batched into consecutive `ingest(Batch)` calls;
//!    requests beyond the per-pass backpressure bound are answered with
//!    an all-`deferred_indices` receipt instead of being dropped — the
//!    client-side reconciliation (PR 4's contract) re-queues exactly
//!    those reports.
//! 4. **Write** each connection's pending response bytes until the
//!    socket pushes back.
//! 5. Park briefly when a full pass made no progress.
//!
//! ## Graceful drain
//!
//! [`DbServerHandle::drain`] stops accepting, keeps serving until the
//! open sockets go quiet (every in-flight batch gets its receipt),
//! flushes all response buffers, then closes. A batch whose receipt was
//! sent is never lost;
//! a client whose request had not fully arrived sees a closed
//! connection — an explicit error on its side, never a silent drop.
//! The accept path checks the stop/drain flags *before* blocking on
//! `accept` (the non-blocking listener makes the check race-free),
//! which is the corrected version of the proxy's historical shutdown
//! race.
//!
//! ## Replication (`SHIP`/`SHIP_ACK`)
//!
//! A dbserver can also act as a **read replica**: a leader streams its
//! WAL over [`csaw_store::net::op::SHIP`] frames, and the reactor
//! applies each line through [`csaw_store::wal::replay_line`] — the
//! same code path `JsonlStore::open` replays on restart. The reactor
//! tracks how many lines it has applied (`wal_applied_seq`) and acks
//! that position after every shipment, which makes the protocol
//! idempotent: a re-shipped overlap is skipped, and a shipment that
//! starts *beyond* the applied position is refused by acking the true
//! position so the leader rewinds. Replayed ingests bypass the
//! registrar by design — the leader already gated the original post.
//!
//! ## Example
//!
//! Spawn a server over a fresh in-memory DB and query it over a real
//! socket:
//!
//! ```
//! use csaw::global::ServerDb;
//! use csaw_dbserver::{spawn_dbserver, DbServerConfig};
//! use csaw_store::net::{DbRequest, DbResponse};
//! use csaw_store::ConfidenceFilter;
//! use csaw_simnet::topology::Asn;
//! use csaw_webproto::bytes::BytesMut;
//! use csaw_webproto::codec::{read_frame, write_frame};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//!
//! let server = Arc::new(ServerDb::builder(1).build()?);
//! let handle = spawn_dbserver(server, DbServerConfig::default())?;
//! let mut stream = TcpStream::connect(handle.addr())?;
//! let req = DbRequest::Blocked { asn: Asn(1), filter: ConfidenceFilter::default() };
//! write_frame(&mut stream, &req.to_frame())?;
//! let mut buf = BytesMut::new();
//! let frame = read_frame(&mut stream, &mut buf)?.expect("server must respond");
//! let resp = DbResponse::from_frame(&frame)?;
//! assert!(matches!(resp, DbResponse::Records(ref r) if r.is_empty()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use csaw::global::{RegistrationError, ServerDb};
use csaw_store::net::{DbRequest, DbResponse};
use csaw_store::Batch;
use csaw_webproto::bytes::BytesMut;
use csaw_webproto::codec::{decode_frame, Frame};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for the reactor.
#[derive(Debug, Clone)]
pub struct DbServerConfig {
    /// Maximum `Post` requests ingested per reactor pass. Requests
    /// beyond this bound in a single pass receive an all-deferred
    /// receipt (bounded backpressure, never a silent drop).
    pub max_batches_per_pass: usize,
    /// How long to park when a full pass made no progress.
    pub idle_park: Duration,
}

impl Default for DbServerConfig {
    fn default() -> Self {
        DbServerConfig {
            max_batches_per_pass: 1024,
            idle_park: Duration::from_micros(100),
        }
    }
}

/// Monotone counters published by the reactor thread. Snapshot with
/// [`DbServerHandle::stats`].
#[derive(Debug, Default)]
struct AtomicStats {
    connections_accepted: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    registers: AtomicU64,
    posts: AtomicU64,
    blocked_queries: AtomicU64,
    ship_requests: AtomicU64,
    wal_lines_applied: AtomicU64,
    wal_applied_seq: AtomicU64,
    batches_ingested: AtomicU64,
    batches_deferred: AtomicU64,
    reports_accepted: AtomicU64,
    reports_rejected: AtomicU64,
    reports_deferred: AtomicU64,
    protocol_errors: AtomicU64,
    passes: AtomicU64,
    passes_with_requests: AtomicU64,
    max_requests_per_pass: AtomicU64,
}

/// A point-in-time copy of the server's counters.
///
/// `requests_per_pass` ratios are the batch-coalescing signal: how many
/// concurrent client requests one reactor pass turned into consecutive
/// `ingest` calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Response frames written.
    pub frames_out: u64,
    /// `Register` requests served.
    pub registers: u64,
    /// `Post` requests received (ingested + deferred).
    pub posts: u64,
    /// `Blocked` download requests served.
    pub blocked_queries: u64,
    /// `Ship` (WAL replication) requests received.
    pub ship_requests: u64,
    /// WAL lines applied through the replication path.
    pub wal_lines_applied: u64,
    /// The replica's current WAL position (lines applied in total).
    pub wal_applied_seq: u64,
    /// Batches actually handed to `ingest`.
    pub batches_ingested: u64,
    /// Batches answered with an all-deferred backpressure receipt.
    pub batches_deferred: u64,
    /// Reports accepted across all ingested batches.
    pub reports_accepted: u64,
    /// Reports rejected by sanitization across all ingested batches.
    pub reports_rejected: u64,
    /// Reports deferred (backend + backpressure) across all receipts.
    pub reports_deferred: u64,
    /// Frames or payloads that failed to decode.
    pub protocol_errors: u64,
    /// Reactor passes run.
    pub passes: u64,
    /// Passes that decoded at least one request.
    pub passes_with_requests: u64,
    /// Most requests decoded in a single pass (peak coalescing).
    pub max_requests_per_pass: u64,
}

impl DbServerStats {
    /// Mean requests per pass that had any — the coalescing factor.
    pub fn mean_requests_per_busy_pass(&self) -> f64 {
        if self.passes_with_requests == 0 {
            0.0
        } else {
            (self.frames_in as f64) / (self.passes_with_requests as f64)
        }
    }
}

impl AtomicStats {
    fn snapshot(&self) -> DbServerStats {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        DbServerStats {
            connections_accepted: get(&self.connections_accepted),
            frames_in: get(&self.frames_in),
            frames_out: get(&self.frames_out),
            registers: get(&self.registers),
            posts: get(&self.posts),
            blocked_queries: get(&self.blocked_queries),
            ship_requests: get(&self.ship_requests),
            wal_lines_applied: get(&self.wal_lines_applied),
            wal_applied_seq: get(&self.wal_applied_seq),
            batches_ingested: get(&self.batches_ingested),
            batches_deferred: get(&self.batches_deferred),
            reports_accepted: get(&self.reports_accepted),
            reports_rejected: get(&self.reports_rejected),
            reports_deferred: get(&self.reports_deferred),
            protocol_errors: get(&self.protocol_errors),
            passes: get(&self.passes),
            passes_with_requests: get(&self.passes_with_requests),
            max_requests_per_pass: get(&self.max_requests_per_pass),
        }
    }
}

/// Handle to a running [`spawn_dbserver`] reactor. Dropping it stops
/// the server immediately; call [`DbServerHandle::drain`] first for a
/// graceful shutdown.
#[derive(Debug)]
pub struct DbServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    stats: Arc<AtomicStats>,
    join: Option<JoinHandle<()>>,
}

impl DbServerHandle {
    /// The loopback address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot the reactor's counters.
    pub fn stats(&self) -> DbServerStats {
        self.stats.snapshot()
    }

    /// Graceful drain: stop accepting, serve every fully-received
    /// request, flush all responses, close, and join the reactor.
    pub fn drain(mut self) -> DbServerStats {
        self.draining.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for DbServerHandle {
    fn drop(&mut self) {
        // Hard stop: the flag is checked every pass, and accept never
        // blocks, so no wake-up connection is needed (and none can be
        // stolen by a concurrent client — the proxy's historical race).
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Per-connection state: the non-blocking stream plus its incremental
/// read buffer and pending write bytes.
struct Conn {
    stream: TcpStream,
    rbuf: BytesMut,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Peer closed its write side (or errored); drop once flushed.
    peer_closed: bool,
    /// Unrecoverable framing/socket error; drop once flushed.
    poisoned: bool,
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// Bind a loopback listener and run the reactor on a background
/// thread, serving `server` over the wire protocol.
pub fn spawn_dbserver(server: Arc<ServerDb>, cfg: DbServerConfig) -> io::Result<DbServerHandle> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(AtomicStats::default());
    let reactor = Reactor {
        server,
        cfg,
        listener,
        stop: Arc::clone(&stop),
        draining: Arc::clone(&draining),
        stats: Arc::clone(&stats),
        conns: Vec::new(),
        wal_seq: 0,
    };
    // Inherit the spawner's observability scope: metrics the server
    // emits (store ingest, WAL replays) land in the same context as the
    // experiment trial that spawned it, not the process-global one.
    let ctx = csaw_obs::current();
    let join = std::thread::Builder::new()
        .name("csaw-dbserver".into())
        .spawn(move || {
            let _scope = csaw_obs::install(ctx);
            reactor.run()
        })?;
    Ok(DbServerHandle {
        addr,
        stop,
        draining,
        stats,
        join: Some(join),
    })
}

struct Reactor {
    server: Arc<ServerDb>,
    cfg: DbServerConfig,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    stats: Arc<AtomicStats>,
    conns: Vec<Conn>,
    /// WAL lines applied via `Ship` so far — the replica's position.
    /// Plain (non-atomic) because only the reactor thread touches it;
    /// `stats.wal_applied_seq` mirrors it for observers.
    wal_seq: u64,
}

impl Reactor {
    fn run(mut self) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            let draining = self.draining.load(Ordering::SeqCst);
            self.stats.passes.fetch_add(1, Ordering::Relaxed);

            let mut progress = false;
            if !draining {
                progress |= self.accept_pass();
            }
            let requests = self.read_pass(&mut progress);
            if !requests.is_empty() {
                self.stats
                    .passes_with_requests
                    .fetch_add(1, Ordering::Relaxed);
                self.stats
                    .max_requests_per_pass
                    .fetch_max(requests.len() as u64, Ordering::Relaxed);
                self.execute_pass(requests);
                progress = true;
            }
            progress |= self.write_pass();
            self.conns
                .retain(|c| !((c.peer_closed || c.poisoned) && !c.pending_write()));

            // Drain completes when a whole pass went quiet: nothing was
            // read, every response is flushed, and no fully-received
            // request is still undecoded. Partial frames in a read
            // buffer belong to requests that never fully arrived; their
            // senders observe the close as an explicit error.
            if draining && !progress && self.drained() {
                return;
            }
            if !progress {
                std::thread::sleep(self.cfg.idle_park);
            }
        }
    }

    /// All responses flushed and no complete request frame buffered.
    fn drained(&mut self) -> bool {
        for c in &mut self.conns {
            if c.pending_write() {
                return false;
            }
            if !c.poisoned {
                if let Ok(Some(_)) = peek_frame(&c.rbuf) {
                    return false;
                }
            }
        }
        true
    }

    fn accept_pass(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.stats
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    self.conns.push(Conn {
                        stream,
                        rbuf: BytesMut::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        peer_closed: false,
                        poisoned: false,
                    });
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return any,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return any,
            }
        }
    }

    /// Read available bytes and decode complete frames into a pass-
    /// local request list.
    fn read_pass(&mut self, progress: &mut bool) -> Vec<(usize, Frame)> {
        let mut requests = Vec::new();
        for (idx, conn) in self.conns.iter_mut().enumerate() {
            if conn.poisoned {
                continue;
            }
            if !conn.peer_closed {
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            conn.peer_closed = true;
                            break;
                        }
                        Ok(n) => {
                            conn.rbuf.extend_from_slice(&chunk[..n]);
                            *progress = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.peer_closed = true;
                            break;
                        }
                    }
                }
            }
            loop {
                match decode_frame(&mut conn.rbuf) {
                    Ok(Some(frame)) => {
                        self.stats.frames_in.fetch_add(1, Ordering::Relaxed);
                        requests.push((idx, frame));
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Framing is lost: answer with a protocol error
                        // and close after the flush.
                        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let resp = DbResponse::Error {
                            code: "frame".into(),
                            detail: "unframeable bytes; closing".into(),
                            index: None,
                        };
                        conn.wbuf.extend_from_slice(&resp.to_frame().encode());
                        self.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                        conn.poisoned = true;
                        break;
                    }
                }
            }
        }
        requests
    }

    /// Serve the pass's requests in arrival order. `Post` requests
    /// beyond the backpressure bound get an all-deferred receipt.
    fn execute_pass(&mut self, requests: Vec<(usize, Frame)>) {
        let mut posts_this_pass = 0usize;
        for (idx, frame) in requests {
            let resp = match DbRequest::from_frame(&frame) {
                Ok(DbRequest::Register { now, risk }) => {
                    self.stats.registers.fetch_add(1, Ordering::Relaxed);
                    match self.server.register(now, risk) {
                        Ok(uuid) => DbResponse::Registered(uuid),
                        Err(e) => DbResponse::Error {
                            code: match e {
                                RegistrationError::RiskRejected => "risk_rejected".into(),
                                RegistrationError::RateLimited => "rate_limited".into(),
                                RegistrationError::Unavailable => "unavailable".into(),
                            },
                            detail: "registration gate".into(),
                            index: None,
                        },
                    }
                }
                Ok(DbRequest::Post {
                    client,
                    posted_at,
                    reports,
                }) => {
                    self.stats.posts.fetch_add(1, Ordering::Relaxed);
                    if posts_this_pass >= self.cfg.max_batches_per_pass {
                        // Bounded backpressure: refuse explicitly. The
                        // receipt names every index as deferred, so the
                        // client re-queues exactly these reports.
                        self.stats.batches_deferred.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .reports_deferred
                            .fetch_add(reports.len() as u64, Ordering::Relaxed);
                        DbResponse::Receipt(csaw_store::IngestReceipt {
                            accepted: 0,
                            rejected: 0,
                            rejected_indices: Vec::new(),
                            deferred_indices: (0..reports.len()).collect(),
                        })
                    } else {
                        posts_this_pass += 1;
                        let batch = Batch::new(client, reports, posted_at);
                        match self.server.ingest(batch) {
                            Ok(receipt) => {
                                self.stats.batches_ingested.fetch_add(1, Ordering::Relaxed);
                                self.stats
                                    .reports_accepted
                                    .fetch_add(receipt.accepted as u64, Ordering::Relaxed);
                                self.stats
                                    .reports_rejected
                                    .fetch_add(receipt.rejected as u64, Ordering::Relaxed);
                                self.stats
                                    .reports_deferred
                                    .fetch_add(receipt.deferred() as u64, Ordering::Relaxed);
                                DbResponse::Receipt(receipt)
                            }
                            Err(e) => DbResponse::from_store_error(&e),
                        }
                    }
                }
                Ok(DbRequest::Blocked { asn, filter }) => {
                    self.stats.blocked_queries.fetch_add(1, Ordering::Relaxed);
                    match self.server.blocked_for_as(asn, &filter) {
                        Ok(records) => DbResponse::Records(records),
                        Err(e) => DbResponse::from_store_error(&e),
                    }
                }
                Ok(DbRequest::Ship { from_seq, lines }) => {
                    self.stats.ship_requests.fetch_add(1, Ordering::Relaxed);
                    self.apply_shipment(from_seq, &lines)
                }
                Err(e) => {
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    DbResponse::from_store_error(&e)
                }
            };
            let conn = &mut self.conns[idx];
            conn.wbuf.extend_from_slice(&resp.to_frame().encode());
            self.stats.frames_out.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Apply one `Ship`ped run of WAL lines, idempotently.
    ///
    /// - `from_seq > wal_seq`: a gap — refuse by acking the true
    ///   position, so the leader rewinds and re-ships from there.
    /// - `from_seq <= wal_seq`: skip the already-applied overlap (a
    ///   re-shipped chunk after a lost ack), apply the rest in order
    ///   through [`csaw_store::wal::replay_line`].
    ///
    /// A line that fails to replay stops the shipment at that point and
    /// reports the error; the applied prefix stays applied, and the
    /// next shipment resumes after it.
    fn apply_shipment(&mut self, from_seq: u64, lines: &[String]) -> DbResponse {
        if from_seq > self.wal_seq {
            return DbResponse::ShipAck {
                applied_seq: self.wal_seq,
            };
        }
        let skip = (self.wal_seq - from_seq) as usize;
        let mut failure = None;
        for line in lines.iter().skip(skip) {
            match csaw_store::wal::replay_line(self.server.store(), line) {
                Ok(()) => {
                    self.wal_seq += 1;
                    self.stats.wal_lines_applied.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.stats
            .wal_applied_seq
            .store(self.wal_seq, Ordering::Relaxed);
        match failure {
            None => DbResponse::ShipAck {
                applied_seq: self.wal_seq,
            },
            Some(e) => {
                self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                DbResponse::from_store_error(&e)
            }
        }
    }

    fn write_pass(&mut self) -> bool {
        let mut any = false;
        for conn in &mut self.conns {
            while conn.pending_write() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        conn.poisoned = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        any = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.poisoned = true;
                        break;
                    }
                }
            }
            if !conn.pending_write() && !conn.wbuf.is_empty() {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
        }
        any
    }
}

/// Non-consuming check: is a complete frame sitting in `buf`?
fn peek_frame(buf: &BytesMut) -> io::Result<Option<()>> {
    let mut probe = buf.clone();
    decode_frame(&mut probe).map(|f| f.map(|_| ()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw::global::RegistrarConfig;
    use csaw_simnet::time::{SimDuration, SimTime};
    use csaw_simnet::topology::Asn;
    use csaw_store::net::op;
    use csaw_store::{ConfidenceFilter, Report, Uuid};
    use csaw_webproto::codec::{read_frame, write_frame};

    fn permissive_server() -> Arc<ServerDb> {
        Arc::new(
            ServerDb::builder(7)
                .shards(4)
                .registrar(RegistrarConfig {
                    max_risk: 1.0,
                    max_per_window: usize::MAX,
                    window: SimDuration::from_secs(3600),
                })
                .build()
                .unwrap(),
        )
    }

    fn call(stream: &mut TcpStream, buf: &mut BytesMut, req: &DbRequest) -> DbResponse {
        write_frame(stream, &req.to_frame()).unwrap();
        let frame = read_frame(stream, buf).unwrap().unwrap();
        DbResponse::from_frame(&frame).unwrap()
    }

    fn report(url: &str) -> Report {
        Report {
            url: url.into(),
            asn: 17557,
            measured_at_us: 1_000,
            stages: vec![csaw_censor::blocking::BlockingType::HttpDrop],
        }
    }

    #[test]
    fn register_post_download_over_the_wire() {
        let server = permissive_server();
        let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut buf = BytesMut::new();

        let uuid = match call(
            &mut stream,
            &mut buf,
            &DbRequest::Register {
                now: SimTime::from_secs(1),
                risk: 0.0,
            },
        ) {
            DbResponse::Registered(u) => u,
            other => panic!("expected Registered, got {other:?}"),
        };

        let receipt = match call(
            &mut stream,
            &mut buf,
            &DbRequest::Post {
                client: uuid,
                posted_at: SimTime::from_secs(2),
                reports: vec![report("http://blocked.example/"), report("garbage url")],
            },
        ) {
            DbResponse::Receipt(r) => r,
            other => panic!("expected Receipt, got {other:?}"),
        };
        assert_eq!(receipt.accepted, 1);
        assert_eq!(receipt.rejected_indices, vec![1]);

        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Blocked {
                asn: Asn(17557),
                filter: ConfidenceFilter::default(),
            },
        ) {
            DbResponse::Records(records) => {
                assert_eq!(records.len(), 1);
                assert_eq!(records[0].url, "http://blocked.example/");
                assert_eq!(records[0].reporter, uuid);
            }
            other => panic!("expected Records, got {other:?}"),
        }

        let stats = handle.drain();
        assert_eq!(stats.batches_ingested, 1);
        assert_eq!(stats.reports_accepted, 1);
        assert_eq!(stats.reports_rejected, 1);
        assert_eq!(server.store().record_count(), 1);
    }

    #[test]
    fn unknown_client_error_crosses_the_wire() {
        let handle = spawn_dbserver(permissive_server(), DbServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut buf = BytesMut::new();
        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Post {
                client: Uuid::from_raw(99),
                posted_at: SimTime::ZERO,
                reports: vec![report("http://x.example/")],
            },
        ) {
            DbResponse::Error { code, .. } => assert_eq!(code, "unknown_client"),
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn backpressure_bound_defers_instead_of_dropping() {
        let server = permissive_server();
        let uuid = server.register(SimTime::ZERO, 0.0).unwrap();
        let handle = spawn_dbserver(
            Arc::clone(&server),
            DbServerConfig {
                max_batches_per_pass: 0,
                ..DbServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut buf = BytesMut::new();
        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Post {
                client: uuid,
                posted_at: SimTime::ZERO,
                reports: vec![report("http://a.example/"), report("http://b.example/")],
            },
        ) {
            DbResponse::Receipt(r) => {
                assert_eq!(r.accepted, 0);
                assert_eq!(r.rejected, 0);
                assert_eq!(r.deferred_indices, vec![0, 1]);
            }
            other => panic!("expected Receipt, got {other:?}"),
        }
        let stats = handle.drain();
        assert_eq!(stats.batches_deferred, 1);
        assert_eq!(stats.reports_deferred, 2);
        assert_eq!(server.store().record_count(), 0);
    }

    #[test]
    fn unframeable_bytes_get_error_then_close() {
        let handle = spawn_dbserver(permissive_server(), DbServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // A zero length header is invalid at the framing layer.
        stream.write_all(&[0, 0, 0, 0]).unwrap();
        let mut buf = BytesMut::new();
        let frame = read_frame(&mut stream, &mut buf).unwrap().unwrap();
        assert_eq!(frame.op, op::ERROR);
        match DbResponse::from_frame(&frame).unwrap() {
            DbResponse::Error { code, .. } => assert_eq!(code, "frame"),
            other => panic!("expected Error, got {other:?}"),
        }
        // And the server closes the connection afterwards.
        assert_eq!(read_frame(&mut stream, &mut buf).unwrap(), None);
    }

    #[test]
    fn drain_answers_inflight_requests_and_loses_nothing() {
        let server = permissive_server();
        let uuid = server.register(SimTime::ZERO, 0.0).unwrap();
        let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut buf = BytesMut::new();
        // Round-trip once so the connection is accepted (drain stops
        // accepting; it only owes receipts to established connections).
        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Blocked {
                asn: Asn(1),
                filter: ConfidenceFilter::default(),
            },
        ) {
            DbResponse::Records(r) => assert!(r.is_empty()),
            other => panic!("expected Records, got {other:?}"),
        }
        // Land a full request, then immediately drain. The receipt must
        // still arrive: the batch was in flight when drain began.
        let req = DbRequest::Post {
            client: uuid,
            posted_at: SimTime::from_secs(1),
            reports: vec![report("http://inflight.example/")],
        };
        write_frame(&mut stream, &req.to_frame()).unwrap();
        let stats = handle.drain();
        let frame = read_frame(&mut stream, &mut buf).unwrap().unwrap();
        match DbResponse::from_frame(&frame).unwrap() {
            DbResponse::Receipt(r) => assert_eq!(r.accepted, 1),
            other => panic!("expected Receipt, got {other:?}"),
        }
        assert_eq!(read_frame(&mut stream, &mut buf).unwrap(), None);
        assert_eq!(stats.reports_accepted, 1);
        assert_eq!(server.store().record_count(), 1);
    }

    #[test]
    fn torn_request_across_many_writes_reassembles() {
        let server = permissive_server();
        let uuid = server.register(SimTime::ZERO, 0.0).unwrap();
        let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let wire = DbRequest::Post {
            client: uuid,
            posted_at: SimTime::from_secs(1),
            reports: vec![report("http://torn.example/")],
        }
        .to_frame()
        .encode();
        for byte in &wire {
            stream.write_all(std::slice::from_ref(byte)).unwrap();
            stream.flush().unwrap();
        }
        let mut buf = BytesMut::new();
        let frame = read_frame(&mut stream, &mut buf).unwrap().unwrap();
        match DbResponse::from_frame(&frame).unwrap() {
            DbResponse::Receipt(r) => assert_eq!(r.accepted, 1),
            other => panic!("expected Receipt, got {other:?}"),
        }
        drop(handle);
    }

    fn wal_line(client: u64, url: &str, t: u64) -> String {
        csaw_store::wal::ingest_line(&Batch::new(
            Uuid::from_raw(client),
            vec![report(url)],
            SimTime::from_micros(t),
        ))
    }

    #[test]
    fn shipped_wal_lines_apply_and_ack() {
        let server = permissive_server();
        let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut buf = BytesMut::new();

        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Ship {
                from_seq: 0,
                lines: vec![
                    wal_line(1, "http://a.example/", 10),
                    wal_line(2, "http://b.example/", 20),
                ],
            },
        ) {
            DbResponse::ShipAck { applied_seq } => assert_eq!(applied_seq, 2),
            other => panic!("expected ShipAck, got {other:?}"),
        }

        // Replicated ingests serve reads exactly like local ones —
        // note the reporters never registered with *this* server.
        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Blocked {
                asn: Asn(17557),
                filter: ConfidenceFilter::default(),
            },
        ) {
            DbResponse::Records(records) => assert_eq!(records.len(), 2),
            other => panic!("expected Records, got {other:?}"),
        }

        let stats = handle.drain();
        assert_eq!(stats.ship_requests, 1);
        assert_eq!(stats.wal_lines_applied, 2);
        assert_eq!(stats.wal_applied_seq, 2);
        assert_eq!(server.store().record_count(), 2);
    }

    #[test]
    fn reshipped_overlap_is_skipped_idempotently() {
        let server = permissive_server();
        let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut buf = BytesMut::new();
        let lines = vec![
            wal_line(1, "http://a.example/", 10),
            wal_line(2, "http://b.example/", 20),
            wal_line(3, "http://c.example/", 30),
        ];

        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Ship {
                from_seq: 0,
                lines: lines[..2].to_vec(),
            },
        ) {
            DbResponse::ShipAck { applied_seq } => assert_eq!(applied_seq, 2),
            other => panic!("expected ShipAck, got {other:?}"),
        }
        // Re-ship the whole run from 0 (as after a lost ack): only the
        // unseen tail may apply.
        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Ship {
                from_seq: 0,
                lines: lines.clone(),
            },
        ) {
            DbResponse::ShipAck { applied_seq } => assert_eq!(applied_seq, 3),
            other => panic!("expected ShipAck, got {other:?}"),
        }

        let stats = handle.drain();
        assert_eq!(stats.wal_lines_applied, 3, "overlap must not re-apply");
        assert_eq!(server.store().record_count(), 3);
        assert_eq!(server.store().tally("http://a.example/", Asn(17557)).n, 1);
    }

    #[test]
    fn gap_shipment_is_refused_with_the_true_position() {
        let server = permissive_server();
        let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut buf = BytesMut::new();
        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Ship {
                from_seq: 5,
                lines: vec![wal_line(1, "http://late.example/", 10)],
            },
        ) {
            DbResponse::ShipAck { applied_seq } => assert_eq!(applied_seq, 0),
            other => panic!("expected ShipAck, got {other:?}"),
        }
        assert_eq!(server.store().record_count(), 0, "gap must not apply");
    }

    #[test]
    fn corrupt_wal_line_reports_error_and_keeps_the_prefix() {
        let server = permissive_server();
        let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut buf = BytesMut::new();
        match call(
            &mut stream,
            &mut buf,
            &DbRequest::Ship {
                from_seq: 0,
                lines: vec![
                    wal_line(1, "http://good.example/", 10),
                    "not json".to_string(),
                    wal_line(2, "http://never.example/", 20),
                ],
            },
        ) {
            DbResponse::Error { code, .. } => assert_eq!(code, "corrupt"),
            other => panic!("expected Error, got {other:?}"),
        }
        // The applied prefix survives; the poison line and its tail do
        // not, and the position reflects exactly what applied.
        let stats = handle.stats();
        assert_eq!(stats.wal_applied_seq, 1);
        assert_eq!(server.store().record_count(), 1);
        drop(handle);
    }

    #[test]
    fn drop_stops_the_reactor_even_with_live_connections() {
        let handle = spawn_dbserver(permissive_server(), DbServerConfig::default()).unwrap();
        let addr = handle.addr();
        let _idle = TcpStream::connect(addr).unwrap();
        drop(handle); // must join promptly, no wake-up connect needed
                      // The listener is gone: a fresh connect must fail or be reset
                      // on first use.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                let mut buf = BytesMut::new();
                assert!(matches!(read_frame(&mut s, &mut buf), Err(_) | Ok(None)));
            }
        }
    }
}
