//! `RemoteDb` against a live `csaw-dbserver`: the same `GlobalApi`
//! calls that run in-process must round-trip over real sockets, the
//! pool must reuse connections, transport failures must surface as
//! retryable `Unavailable` errors, and a full `CsawClient` must be
//! able to register, post, and sync through the socket transport
//! without its accounting identity noticing the difference.

use csaw::client::CsawClient;
use csaw::config::CsawConfig;
use csaw::global::RegistrarConfig;
use csaw::global::{GlobalApi, RegistrationError, RemoteDb, ServerDb};
use csaw_censor::{profiles, Category};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_dbserver::{spawn_dbserver, DbServerConfig};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{AccessNetwork, Provider, Region, Site};
use csaw_store::{Batch, ConfidenceFilter, Report, StoreError};
use csaw_webproto::url::Url;
use std::sync::Arc;

fn permissive_server() -> Arc<ServerDb> {
    Arc::new(
        ServerDb::builder(7)
            .shards(4)
            .registrar(RegistrarConfig {
                max_risk: 1.0,
                max_per_window: usize::MAX,
                window: SimDuration::from_secs(3600),
            })
            .build()
            .unwrap(),
    )
}

fn report(url: &str) -> Report {
    Report {
        url: url.into(),
        asn: 17557,
        measured_at_us: 1_000,
        stages: vec![csaw_censor::blocking::BlockingType::HttpDrop],
    }
}

fn open_filter() -> ConfidenceFilter {
    ConfidenceFilter {
        min_clients: 1,
        min_avg_vote: 0.0,
    }
}

/// The trait surface round-trips over sockets, and sequential calls
/// reuse one pooled connection rather than reconnecting per request.
#[test]
fn remote_roundtrip_reuses_pooled_connection() {
    let server = permissive_server();
    let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
    let remote = RemoteDb::new(handle.addr());

    let uuid = remote.register(SimTime::from_secs(1), 0.0).unwrap();
    let receipt = remote
        .ingest(Batch::new(
            uuid,
            vec![report("http://blocked.example/a")],
            SimTime::from_secs(2),
        ))
        .unwrap();
    assert_eq!(receipt.accepted, 1);
    assert_eq!(receipt.rejected, 0);
    assert!(receipt.deferred_indices.is_empty());

    let records = remote
        .blocked_for_as(csaw_simnet::topology::Asn(17557), &open_filter())
        .unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].url, "http://blocked.example/a");
    assert_eq!(records[0].reporter, uuid);

    // Three sequential calls, one connection: each checkout drained the
    // pool and each clean roundtrip returned it.
    assert_eq!(remote.idle_connections(), 1);

    let stats = handle.drain();
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.frames_in, 3);
    assert_eq!(stats.frames_out, 3);
}

/// Server-side registration policy crosses the wire as the matching
/// `RegistrationError`, not as a transport failure.
#[test]
fn registration_policy_errors_cross_the_wire() {
    let server = Arc::new(
        ServerDb::builder(7)
            .registrar(RegistrarConfig {
                max_risk: 0.5,
                max_per_window: usize::MAX,
                window: SimDuration::from_secs(3600),
            })
            .build()
            .unwrap(),
    );
    let handle = spawn_dbserver(server, DbServerConfig::default()).unwrap();
    let remote = RemoteDb::new(handle.addr());

    assert_eq!(
        remote.register(SimTime::from_secs(1), 0.9),
        Err(RegistrationError::RiskRejected)
    );
    drop(handle);
}

/// A dead server surfaces as `Unavailable` — the retryable shape the
/// client's backoff path owns — never a panic or a hang.
#[test]
fn dead_server_surfaces_unavailable() {
    let handle = spawn_dbserver(permissive_server(), DbServerConfig::default()).unwrap();
    let addr = handle.addr();
    handle.drain();

    let remote = RemoteDb::new(addr);
    assert_eq!(
        remote.register(SimTime::from_secs(1), 0.0),
        Err(RegistrationError::Unavailable)
    );
    match remote.blocked_for_as(csaw_simnet::topology::Asn(1), &open_filter()) {
        Err(StoreError::Unavailable(_)) => {}
        other => panic!("expected Unavailable, got {other:?}"),
    }
    assert_eq!(remote.idle_connections(), 0, "failed conns are not pooled");
}

/// Concurrent posters share the pool: every batch gets a receipt and
/// the pool never grows beyond its cap.
#[test]
fn concurrent_posts_share_the_pool() {
    const POSTERS: usize = 8;
    const BATCHES_PER_POSTER: usize = 10;

    let server = permissive_server();
    let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
    let remote = RemoteDb::new(handle.addr()).with_max_idle(4);

    let accepted: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..POSTERS)
            .map(|p| {
                let remote = &remote;
                s.spawn(move || {
                    let uuid = remote
                        .register(SimTime::from_secs(1 + p as u64), 0.0)
                        .unwrap();
                    let mut accepted = 0usize;
                    for b in 0..BATCHES_PER_POSTER {
                        let receipt = remote
                            .ingest(Batch::new(
                                uuid,
                                vec![report(&format!("http://blocked.example/p{p}/b{b}"))],
                                SimTime::from_secs(10),
                            ))
                            .unwrap();
                        assert!(receipt.is_complete(), "receipt covers every index");
                        accepted += receipt.accepted;
                    }
                    accepted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    assert_eq!(accepted, POSTERS * BATCHES_PER_POSTER);
    assert!(remote.idle_connections() <= 4, "pool respects its cap");
    let stats = handle.drain();
    assert_eq!(
        stats.reports_accepted,
        (POSTERS * BATCHES_PER_POSTER) as u64
    );
}

fn build_world() -> World {
    let provider = Provider::new(profiles::ISP_A_ASN, "isp");
    let access = AccessNetwork::single(provider);
    World::builder(access)
        .site(
            SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                .category(Category::Video)
                .frontable(true)
                .serves_by_ip(true)
                .default_page(360_000, 20),
        )
        .site(SiteSpec::new(
            "cdn-front.example",
            Site::in_region(Region::Singapore),
        ))
        .censor(profiles::ISP_A_ASN, profiles::isp_a())
        .build()
}

/// A full `CsawClient` — register, censored fetches, `post_reports`,
/// `sync_global` — running entirely over the socket transport. The
/// client code is byte-identical to the in-process path; only the `&G`
/// it is handed differs.
#[test]
fn csaw_client_runs_end_to_end_over_sockets() {
    let server = permissive_server();
    let handle = spawn_dbserver(Arc::clone(&server), DbServerConfig::default()).unwrap();
    let remote = RemoteDb::new(handle.addr());

    let w = build_world();
    let mut c = CsawClient::new(
        CsawConfig::default().with_report_backoff(
            SimDuration::from_secs(30),
            SimDuration::from_secs(600),
            0.1,
        ),
        Some("cdn-front.example"),
        42,
    );
    c.register(&remote, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
        .unwrap();

    let mut now = SimTime::from_secs(1);
    for u in 0..5 {
        let url = Url::parse(&format!("http://www.youtube.com/watch/u{u}")).unwrap();
        c.request(&w, &url, now);
        now += SimDuration::from_secs(10);
    }
    assert!(c.pending_reports() > 0, "censored fetches queued reports");

    for _ in 0..20 {
        if c.pending_reports() == 0 {
            break;
        }
        now += SimDuration::from_secs(700);
        c.post_reports(&remote, now);
    }
    assert_eq!(c.pending_reports(), 0, "queue drained over sockets");
    assert_eq!(
        c.stats.reports_queued,
        c.stats.reports_posted + c.stats.reports_dropped,
        "accounting identity holds over the socket transport: {:?}",
        c.stats
    );

    // The posted records are now downloadable — through the same pool.
    let synced = c.sync_global(&remote, &[profiles::ISP_A_ASN], now).unwrap();
    assert!(synced > 0, "downloaded the records this client posted");

    // And the server behind the socket really holds them.
    let stats = handle.drain();
    assert_eq!(stats.reports_accepted, c.stats.reports_posted);
    assert_eq!(
        server.store().record_count(),
        c.stats.reports_posted as usize
    );
}
