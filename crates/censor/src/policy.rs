//! Censor policies: who gets blocked, how, at which stage.
//!
//! A [`CensorPolicy`] models the filtering configuration of one censoring
//! ISP. It is a list of [`CensorRule`]s, each pairing a [`TargetMatcher`]
//! (which traffic) with per-stage actions (what happens to it). The
//! decision functions mirror the interception points of a real middlebox:
//! DNS queries, TCP connects, TLS ClientHellos, and plaintext HTTP
//! requests — each sees only the fields genuinely visible at that layer.
//!
//! Multi-stage blocking (Table 1's ISP-B: DNS hijack *and* HTTP/HTTPS
//! drop) is expressed by a rule activating several stages; per-stage
//! engage probabilities model the load-balanced filtering the paper
//! describes ("usually carried out to load balance traffic across
//! filtering devices").

use crate::blocking::{Category, DnsTamper, HttpAction, IpAction, TlsAction, UdpAction};
use csaw_simnet::DetRng;
use csaw_webproto::url::Url;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Which traffic a rule applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetMatcher {
    /// Host equals the domain or is a subdomain of it
    /// (`youtube.com` matches `www.youtube.com`).
    DomainSuffix(String),
    /// URL is the given URL or derived from it (segment-wise path prefix).
    /// Only effective at the HTTP stage, where paths are visible.
    UrlPrefix(Url),
    /// Substring match over the visible name (host/SNI/qname) or, at the
    /// HTTP stage, the path — classic keyword filtering. "IP as hostname"
    /// defeats this because the IP form contains no keyword.
    Keyword(String),
    /// All sites the deployment tags with this category.
    Category(Category),
}

impl TargetMatcher {
    fn matches_name(&self, name: &str, category: Option<Category>) -> bool {
        match self {
            TargetMatcher::DomainSuffix(d) => {
                let name = name.to_ascii_lowercase();
                name == *d || name.ends_with(&format!(".{d}"))
            }
            TargetMatcher::Keyword(k) => name.to_ascii_lowercase().contains(k.as_str()),
            TargetMatcher::Category(c) => category == Some(*c),
            // URL prefixes need a path; a bare name can only match if the
            // prefix is a base URL on the same host.
            TargetMatcher::UrlPrefix(u) => {
                u.is_base() && u.host().to_string() == name.to_ascii_lowercase()
            }
        }
    }

    fn matches_url(&self, url: &Url, category: Option<Category>) -> bool {
        match self {
            TargetMatcher::UrlPrefix(prefix) => url.is_derived_from(prefix),
            TargetMatcher::Keyword(k) => {
                url.host().to_string().contains(k.as_str())
                    || url.path().to_ascii_lowercase().contains(k.as_str())
            }
            TargetMatcher::DomainSuffix(_) | TargetMatcher::Category(_) => {
                self.matches_name(&url.host().to_string(), category)
            }
        }
    }
}

/// One filtering rule: a target plus the action taken at each stage.
/// `*_p` fields are per-flow engage probabilities (1.0 = always); they
/// model load-balanced multi-stage deployments where only a fraction of
/// flows traverse a given filtering device.
#[derive(Debug, Clone, PartialEq)]
pub struct CensorRule {
    /// Which traffic this rule covers.
    pub target: TargetMatcher,
    /// DNS-stage action.
    pub dns: DnsTamper,
    /// Probability the DNS stage engages for a given flow.
    pub dns_p: f64,
    /// IP-stage action (requires the destination IP to be blacklisted —
    /// see [`CensorPolicy::materialize_ips`]).
    pub ip: IpAction,
    /// Probability the IP stage engages.
    pub ip_p: f64,
    /// HTTP-stage action.
    pub http: HttpAction,
    /// Probability the HTTP stage engages.
    pub http_p: f64,
    /// TLS-stage action.
    pub tls: TlsAction,
    /// Probability the TLS stage engages.
    pub tls_p: f64,
    /// UDP-stage action (non-web services).
    pub udp: UdpAction,
    /// Probability the UDP stage engages.
    pub udp_p: f64,
}

impl CensorRule {
    /// A rule with no actions (builder seed).
    pub fn target(target: TargetMatcher) -> CensorRule {
        CensorRule {
            target,
            dns: DnsTamper::None,
            dns_p: 1.0,
            ip: IpAction::None,
            ip_p: 1.0,
            http: HttpAction::None,
            http_p: 1.0,
            tls: TlsAction::None,
            tls_p: 1.0,
            udp: UdpAction::None,
            udp_p: 1.0,
        }
    }

    /// Builder: set the DNS action.
    pub fn dns(mut self, t: DnsTamper) -> CensorRule {
        self.dns = t;
        self
    }

    /// Builder: set the DNS engage probability.
    pub fn dns_p(mut self, p: f64) -> CensorRule {
        self.dns_p = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: set the IP action.
    pub fn ip(mut self, a: IpAction) -> CensorRule {
        self.ip = a;
        self
    }

    /// Builder: set the IP engage probability.
    pub fn ip_p(mut self, p: f64) -> CensorRule {
        self.ip_p = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: set the HTTP action.
    pub fn http(mut self, a: HttpAction) -> CensorRule {
        self.http = a;
        self
    }

    /// Builder: set the HTTP engage probability.
    pub fn http_p(mut self, p: f64) -> CensorRule {
        self.http_p = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: set the TLS action.
    pub fn tls(mut self, a: TlsAction) -> CensorRule {
        self.tls = a;
        self
    }

    /// Builder: set the TLS engage probability.
    pub fn tls_p(mut self, p: f64) -> CensorRule {
        self.tls_p = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: set the UDP action.
    pub fn udp(mut self, a: UdpAction) -> CensorRule {
        self.udp = a;
        self
    }

    /// Builder: set the UDP engage probability.
    pub fn udp_p(mut self, p: f64) -> CensorRule {
        self.udp_p = p.clamp(0.0, 1.0);
        self
    }
}

/// The filtering configuration of one censoring ISP.
#[derive(Debug, Clone, Default)]
pub struct CensorPolicy {
    /// Display name (e.g. "ISP-A").
    pub name: String,
    rules: Vec<CensorRule>,
    /// Destination addresses subject to IP-stage actions. Populated by
    /// [`CensorPolicy::materialize_ips`] from the deployment's host→IP
    /// map, the way real censors compile hostname blacklists into router
    /// ACLs.
    ip_blacklist: HashSet<Ipv4Addr>,
    /// Where HTTP-stage redirects send the client.
    pub block_page_location: String,
}

impl CensorPolicy {
    /// An empty (non-censoring) policy.
    pub fn new(name: impl Into<String>) -> CensorPolicy {
        CensorPolicy {
            name: name.into(),
            rules: Vec::new(),
            ip_blacklist: HashSet::new(),
            block_page_location: "http://block.invalid/".to_string(),
        }
    }

    /// Add a rule.
    pub fn with_rule(mut self, rule: CensorRule) -> CensorPolicy {
        self.rules.push(rule);
        self
    }

    /// Number of rules installed.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Iterate over rules (read-only).
    pub fn rules(&self) -> &[CensorRule] {
        &self.rules
    }

    /// Whether any rule targets traffic that could involve `name`.
    pub fn censors_name(&self, name: &str, category: Option<Category>) -> bool {
        self.rules
            .iter()
            .any(|r| r.target.matches_name(name, category))
    }

    /// Compile host-level rules into an IP blacklist using the
    /// deployment's resolver. Call once after the world's addresses are
    /// assigned. `resolve` maps a hostname to its true address(es).
    pub fn materialize_ips<F>(&mut self, hosts: &[(String, Option<Category>)], resolve: F)
    where
        F: Fn(&str) -> Option<Ipv4Addr>,
    {
        for (host, category) in hosts {
            let targeted = self
                .rules
                .iter()
                .any(|r| r.ip.is_active() && r.target.matches_name(host, *category));
            if targeted {
                if let Some(ip) = resolve(host) {
                    self.ip_blacklist.insert(ip);
                }
            }
        }
    }

    /// Manually blacklist an address at the IP stage.
    pub fn blacklist_ip(&mut self, ip: Ipv4Addr) {
        self.ip_blacklist.insert(ip);
    }

    /// Is the address on the compiled IP blacklist?
    pub fn ip_blacklisted(&self, ip: Ipv4Addr) -> bool {
        self.ip_blacklist.contains(&ip)
    }

    // --- middlebox decision points -------------------------------------

    /// DNS interception: what happens to a query for `qname`?
    pub fn on_dns_query(
        &self,
        qname: &str,
        category: Option<Category>,
        rng: &mut DetRng,
    ) -> DnsTamper {
        for r in &self.rules {
            if r.dns.is_active() && r.target.matches_name(qname, category) && rng.chance(r.dns_p) {
                return r.dns;
            }
        }
        DnsTamper::None
    }

    /// TCP interception: what happens to a connect to `dst`?
    ///
    /// Real IP blocking doesn't know hostnames — only the compiled
    /// blacklist. The first rule with an active IP action supplies the
    /// action/probability once the address matches.
    pub fn on_tcp_connect(&self, dst: Ipv4Addr, rng: &mut DetRng) -> IpAction {
        if !self.ip_blacklist.contains(&dst) {
            return IpAction::None;
        }
        for r in &self.rules {
            if r.ip.is_active() && rng.chance(r.ip_p) {
                return r.ip;
            }
        }
        IpAction::None
    }

    /// TLS interception: what happens to a ClientHello bearing `sni`?
    pub fn on_tls_hello(
        &self,
        sni: Option<&str>,
        category: Option<Category>,
        rng: &mut DetRng,
    ) -> TlsAction {
        let Some(sni) = sni else {
            return TlsAction::None; // nothing visible to match on
        };
        for r in &self.rules {
            if r.tls.is_active() && r.target.matches_name(sni, category) && rng.chance(r.tls_p) {
                return r.tls;
            }
        }
        TlsAction::None
    }

    /// UDP interception: what happens to datagrams toward the service at
    /// `service_host`? Deep packet inspection classifies non-web apps by
    /// endpoint (we model that as the service's hostname + category; the
    /// wire reality is IP/port signatures compiled from the same intent).
    pub fn on_udp_flow(
        &self,
        service_host: &str,
        category: Option<Category>,
        rng: &mut DetRng,
    ) -> UdpAction {
        for r in &self.rules {
            if r.udp.is_active()
                && r.target.matches_name(service_host, category)
                && rng.chance(r.udp_p)
            {
                return r.udp;
            }
        }
        UdpAction::None
    }

    /// HTTP interception: what happens to a plaintext request for `url`?
    pub fn on_http_request(
        &self,
        url: &Url,
        category: Option<Category>,
        rng: &mut DetRng,
    ) -> HttpAction {
        for r in &self.rules {
            if r.http.is_active() && r.target.matches_url(url, category) && rng.chance(r.http_p) {
                return r.http;
            }
        }
        HttpAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn rng() -> DetRng {
        DetRng::new(7)
    }

    #[test]
    fn domain_suffix_matches_subdomains() {
        let m = TargetMatcher::DomainSuffix("youtube.com".into());
        assert!(m.matches_name("youtube.com", None));
        assert!(m.matches_name("www.youtube.com", None));
        assert!(m.matches_name("WWW.YOUTUBE.COM", None));
        assert!(!m.matches_name("notyoutube.com", None));
        assert!(!m.matches_name("youtube.com.evil.net", None));
    }

    #[test]
    fn keyword_matches_host_and_path() {
        let m = TargetMatcher::Keyword("xvid".into());
        assert!(m.matches_url(&url("http://xvideos.example/"), None));
        assert!(m.matches_url(&url("http://mirror.example/xvid/page"), None));
        assert!(!m.matches_url(&url("http://10.1.2.3/page"), None));
    }

    #[test]
    fn url_prefix_http_only_semantics() {
        let m = TargetMatcher::UrlPrefix(url("http://foo.com/banned"));
        assert!(m.matches_url(&url("http://foo.com/banned/page.html"), None));
        assert!(!m.matches_url(&url("http://foo.com/other"), None));
        // At name-only stages a non-base prefix cannot match.
        assert!(!m.matches_name("foo.com", None));
        let base = TargetMatcher::UrlPrefix(url("http://foo.com/"));
        assert!(base.matches_name("foo.com", None));
    }

    #[test]
    fn dns_decision_respects_rules() {
        let hijack: Ipv4Addr = "10.10.34.34".parse().unwrap();
        let pol = CensorPolicy::new("isp").with_rule(
            CensorRule::target(TargetMatcher::DomainSuffix("youtube.com".into()))
                .dns(DnsTamper::HijackTo(hijack)),
        );
        let mut r = rng();
        assert_eq!(
            pol.on_dns_query("www.youtube.com", None, &mut r),
            DnsTamper::HijackTo(hijack)
        );
        assert_eq!(
            pol.on_dns_query("example.com", None, &mut r),
            DnsTamper::None
        );
    }

    #[test]
    fn ip_stage_requires_materialized_blacklist() {
        let mut pol = CensorPolicy::new("isp").with_rule(
            CensorRule::target(TargetMatcher::DomainSuffix("blocked.com".into()))
                .ip(IpAction::Drop),
        );
        let addr: Ipv4Addr = "93.184.216.34".parse().unwrap();
        let mut r = rng();
        // Before compilation: no IP knowledge, no action.
        assert_eq!(pol.on_tcp_connect(addr, &mut r), IpAction::None);
        pol.materialize_ips(&[("blocked.com".to_string(), None)], |h| {
            (h == "blocked.com").then_some(addr)
        });
        assert!(pol.ip_blacklisted(addr));
        assert_eq!(pol.on_tcp_connect(addr, &mut r), IpAction::Drop);
    }

    #[test]
    fn tls_matches_sni_only() {
        let pol = CensorPolicy::new("isp").with_rule(
            CensorRule::target(TargetMatcher::DomainSuffix("youtube.com".into()))
                .tls(TlsAction::Drop),
        );
        let mut r = rng();
        assert_eq!(
            pol.on_tls_hello(Some("www.youtube.com"), None, &mut r),
            TlsAction::Drop
        );
        // Fronted SNI sails through.
        assert_eq!(
            pol.on_tls_hello(Some("google.com"), None, &mut r),
            TlsAction::None
        );
        // No SNI, nothing to match.
        assert_eq!(pol.on_tls_hello(None, None, &mut r), TlsAction::None);
    }

    #[test]
    fn http_block_page() {
        let pol = CensorPolicy::new("isp").with_rule(
            CensorRule::target(TargetMatcher::Category(Category::Porn))
                .http(HttpAction::BlockPageRedirect),
        );
        let mut r = rng();
        assert_eq!(
            pol.on_http_request(&url("http://adult.example/x"), Some(Category::Porn), &mut r),
            HttpAction::BlockPageRedirect
        );
        assert_eq!(
            pol.on_http_request(&url("http://adult.example/x"), Some(Category::News), &mut r),
            HttpAction::None
        );
    }

    #[test]
    fn engage_probability_splits_flows() {
        let pol = CensorPolicy::new("isp").with_rule(
            CensorRule::target(TargetMatcher::DomainSuffix("yt.com".into()))
                .dns(DnsTamper::Nxdomain)
                .dns_p(0.5),
        );
        let mut r = rng();
        let mut hits = 0;
        for _ in 0..2_000 {
            if pol.on_dns_query("yt.com", None, &mut r).is_active() {
                hits += 1;
            }
        }
        let frac = hits as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn first_matching_rule_wins() {
        let pol = CensorPolicy::new("isp")
            .with_rule(
                CensorRule::target(TargetMatcher::DomainSuffix("a.com".into()))
                    .http(HttpAction::Rst),
            )
            .with_rule(
                CensorRule::target(TargetMatcher::Keyword("a.com".into())).http(HttpAction::Drop),
            );
        let mut r = rng();
        assert_eq!(
            pol.on_http_request(&url("http://a.com/"), None, &mut r),
            HttpAction::Rst
        );
    }

    #[test]
    fn censors_name_probe() {
        let pol = CensorPolicy::new("isp").with_rule(
            CensorRule::target(TargetMatcher::DomainSuffix("bad.org".into()))
                .http(HttpAction::Drop),
        );
        assert!(pol.censors_name("www.bad.org", None));
        assert!(!pol.censors_name("good.org", None));
    }
}
