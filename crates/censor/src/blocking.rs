//! The blocking taxonomy.
//!
//! §2.1 of the paper catalogues how web censors intervene at each layer of
//! the stack; Table 5 measures how long each takes to detect; Figure 2
//! breaks observed blocking into five ONI categories. This module defines
//! the per-layer *actions* a censor model can take, and the summary
//! [`BlockingType`] recorded in C-Saw's databases.

use std::fmt;
use std::net::Ipv4Addr;

/// What a censor does to a DNS query/response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsTamper {
    /// Leave it alone.
    None,
    /// Drop the query (and any response): the stub resolver times out.
    Drop,
    /// Forge a response pointing at `target` (a local host, a block-page
    /// server, or garbage). ISP-B in the paper's case study resolved
    /// YouTube "to a local host in ISP-B".
    HijackTo(Ipv4Addr),
    /// Forge an NXDOMAIN.
    Nxdomain,
    /// Return SERVFAIL — surfaces only after the resolver's retry ladder
    /// (Table 5: 10.6 s average).
    Servfail,
    /// Return REFUSED — surfaces in one RTT (Table 5: 25 ms average).
    Refused,
}

impl DnsTamper {
    /// Does this tamper do anything?
    pub fn is_active(self) -> bool {
        !matches!(self, DnsTamper::None)
    }
}

/// What a censor does at the TCP/IP layer, keyed on destination address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpAction {
    /// Leave the flow alone.
    None,
    /// Black-hole packets: SYNs vanish, the client burns the RTO ladder
    /// (Table 5: 21 s average).
    Drop,
    /// Inject a RST: the client fails fast but visibly.
    Rst,
}

impl IpAction {
    /// Does this action do anything?
    pub fn is_active(self) -> bool {
        !matches!(self, IpAction::None)
    }
}

/// What a censor does to a plaintext HTTP request it can parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpAction {
    /// Leave it alone.
    None,
    /// Silently drop the GET: the client sees an HTTP timeout
    /// (`HTTP_GET_TIMEOUT` in the paper's §7.5 snapshot).
    Drop,
    /// Inject a TCP RST after the request is observed.
    Rst,
    /// Redirect (302) the client to a block-page server — ISP-A's
    /// behaviour in Table 1.
    BlockPageRedirect,
    /// Serve a block page directly in-band (ISP-B's iframe variant in
    /// Table 1; ONI's "Block Page w/o Redir").
    BlockPageInline,
}

impl HttpAction {
    /// Does this action do anything?
    pub fn is_active(self) -> bool {
        !matches!(self, HttpAction::None)
    }

    /// Does this action deliver a block page (by any mechanism)?
    pub fn serves_block_page(self) -> bool {
        matches!(
            self,
            HttpAction::BlockPageRedirect | HttpAction::BlockPageInline
        )
    }
}

/// What a censor does to a TLS flow, keyed on the plaintext SNI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsAction {
    /// Leave it alone.
    None,
    /// Drop the ClientHello: handshake times out.
    Drop,
    /// RST on seeing the blacklisted SNI.
    Rst,
}

impl TlsAction {
    /// Does this action do anything?
    pub fn is_active(self) -> bool {
        !matches!(self, TlsAction::None)
    }
}

/// What a censor does to UDP application flows (messaging/voice/video —
/// the paper's §8 non-web filtering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpAction {
    /// Leave the flow alone.
    None,
    /// Drop datagrams to the service: the app sees silence.
    Drop,
    /// Let a trickle through: the app "works" but is unusable (a common
    /// soft-blocking tactic against VoIP).
    Throttle,
}

impl UdpAction {
    /// Does this action do anything?
    pub fn is_active(self) -> bool {
        !matches!(self, UdpAction::None)
    }
}

/// The summarized blocking mechanism, as recorded in C-Saw's local and
/// global databases ("Stage-k Blocking" fields of Table 3) and counted in
/// the deployment study (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockingType {
    /// DNS query/response dropped — no resolution at all.
    DnsNoResponse,
    /// DNS forged to another address (local host / block-page server).
    DnsHijack,
    /// Forged NXDOMAIN.
    DnsNxdomain,
    /// SERVFAIL from the resolver.
    DnsServfail,
    /// REFUSED from the resolver.
    DnsRefused,
    /// TCP/IP black-holing (connect timeout).
    IpDrop,
    /// TCP RST injected at connect time.
    IpRst,
    /// HTTP GET silently dropped.
    HttpDrop,
    /// TCP RST injected after the HTTP request.
    HttpRst,
    /// Block page delivered via redirect.
    HttpBlockPageRedirect,
    /// Block page delivered in-band.
    HttpBlockPageInline,
    /// TLS ClientHello dropped on SNI match.
    SniDrop,
    /// TLS RST on SNI match.
    SniRst,
    /// UDP flows to the service dropped (non-web filtering, §8 —
    /// messaging/voice/video apps).
    UdpDrop,
    /// UDP flows throttled to uselessness rather than dropped outright.
    UdpThrottle,
}

impl BlockingType {
    /// The protocol stage this mechanism operates at (Fig. 4's decision
    /// levels; also the key for the paper's multi-stage tracking).
    pub fn stage(self) -> Stage {
        match self {
            BlockingType::DnsNoResponse
            | BlockingType::DnsHijack
            | BlockingType::DnsNxdomain
            | BlockingType::DnsServfail
            | BlockingType::DnsRefused => Stage::Dns,
            BlockingType::IpDrop | BlockingType::IpRst => Stage::Ip,
            BlockingType::HttpDrop
            | BlockingType::HttpRst
            | BlockingType::HttpBlockPageRedirect
            | BlockingType::HttpBlockPageInline => Stage::Http,
            BlockingType::SniDrop | BlockingType::SniRst => Stage::Tls,
            BlockingType::UdpDrop | BlockingType::UdpThrottle => Stage::Udp,
        }
    }

    /// The stable wire/metric name of this mechanism — used as the JSON
    /// encoding in reports and DB snapshots, and as the histogram key
    /// suffix for per-type detection-time metrics.
    pub fn name(self) -> &'static str {
        match self {
            BlockingType::DnsNoResponse => "DnsNoResponse",
            BlockingType::DnsHijack => "DnsHijack",
            BlockingType::DnsNxdomain => "DnsNxdomain",
            BlockingType::DnsServfail => "DnsServfail",
            BlockingType::DnsRefused => "DnsRefused",
            BlockingType::IpDrop => "IpDrop",
            BlockingType::IpRst => "IpRst",
            BlockingType::HttpDrop => "HttpDrop",
            BlockingType::HttpRst => "HttpRst",
            BlockingType::HttpBlockPageRedirect => "HttpBlockPageRedirect",
            BlockingType::HttpBlockPageInline => "HttpBlockPageInline",
            BlockingType::SniDrop => "SniDrop",
            BlockingType::SniRst => "SniRst",
            BlockingType::UdpDrop => "UdpDrop",
            BlockingType::UdpThrottle => "UdpThrottle",
        }
    }

    /// Inverse of [`BlockingType::name`].
    pub fn from_name(s: &str) -> Option<BlockingType> {
        BlockingType::ALL.iter().copied().find(|t| t.name() == s)
    }

    /// All variants, for exhaustive sweeps in tests and benches.
    pub const ALL: [BlockingType; 15] = [
        BlockingType::DnsNoResponse,
        BlockingType::DnsHijack,
        BlockingType::DnsNxdomain,
        BlockingType::DnsServfail,
        BlockingType::DnsRefused,
        BlockingType::IpDrop,
        BlockingType::IpRst,
        BlockingType::HttpDrop,
        BlockingType::HttpRst,
        BlockingType::HttpBlockPageRedirect,
        BlockingType::HttpBlockPageInline,
        BlockingType::SniDrop,
        BlockingType::SniRst,
        BlockingType::UdpDrop,
        BlockingType::UdpThrottle,
    ];
}

impl fmt::Display for BlockingType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockingType::DnsNoResponse => "DNS (no response)",
            BlockingType::DnsHijack => "DNS (hijack)",
            BlockingType::DnsNxdomain => "DNS (NXDOMAIN)",
            BlockingType::DnsServfail => "DNS (SERVFAIL)",
            BlockingType::DnsRefused => "DNS (REFUSED)",
            BlockingType::IpDrop => "TCP/IP (drop)",
            BlockingType::IpRst => "TCP/IP (RST)",
            BlockingType::HttpDrop => "HTTP (drop)",
            BlockingType::HttpRst => "HTTP (RST)",
            BlockingType::HttpBlockPageRedirect => "HTTP (block page, redirect)",
            BlockingType::HttpBlockPageInline => "HTTP (block page, inline)",
            BlockingType::SniDrop => "TLS/SNI (drop)",
            BlockingType::SniRst => "TLS/SNI (RST)",
            BlockingType::UdpDrop => "UDP (drop)",
            BlockingType::UdpThrottle => "UDP (throttle)",
        };
        f.write_str(s)
    }
}

/// The protocol stage at which a mechanism intervenes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Name resolution.
    Dns,
    /// TCP/IP connectivity.
    Ip,
    /// Plaintext HTTP.
    Http,
    /// TLS handshake (SNI).
    Tls,
    /// Non-web UDP application traffic (messaging/voice/video).
    Udp,
}

/// Content categories used by censor policies. The case study (§2.3)
/// groups censored content as YouTube vs. "Rest (Social, Porn,
/// Political, ...)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Video platforms (the paper's YouTube focus).
    Video,
    /// Social networks (Twitter/Instagram in §7.5).
    Social,
    /// Pornography.
    Porn,
    /// Political content.
    Political,
    /// Religious content.
    Religious,
    /// News media.
    News,
    /// Content-delivery infrastructure (§7.4's CDN-blocking finding).
    Cdn,
    /// Anything else.
    Other,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_partition_types() {
        use BlockingType::*;
        assert_eq!(DnsHijack.stage(), Stage::Dns);
        assert_eq!(IpDrop.stage(), Stage::Ip);
        assert_eq!(HttpBlockPageInline.stage(), Stage::Http);
        assert_eq!(SniRst.stage(), Stage::Tls);
        // ALL covers every variant exactly once.
        let mut sorted = BlockingType::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), BlockingType::ALL.len());
    }

    #[test]
    fn activity_flags() {
        assert!(!DnsTamper::None.is_active());
        assert!(DnsTamper::Servfail.is_active());
        assert!(!IpAction::None.is_active());
        assert!(IpAction::Rst.is_active());
        assert!(!HttpAction::None.is_active());
        assert!(HttpAction::Drop.is_active());
        assert!(!TlsAction::None.is_active());
        assert!(TlsAction::Drop.is_active());
    }

    #[test]
    fn block_page_actions() {
        assert!(HttpAction::BlockPageRedirect.serves_block_page());
        assert!(HttpAction::BlockPageInline.serves_block_page());
        assert!(!HttpAction::Drop.serves_block_page());
        assert!(!HttpAction::None.serves_block_page());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(BlockingType::IpDrop.to_string(), "TCP/IP (drop)");
        assert_eq!(BlockingType::DnsServfail.to_string(), "DNS (SERVFAIL)");
    }

    #[test]
    fn wire_names_roundtrip() {
        for t in BlockingType::ALL {
            assert_eq!(BlockingType::from_name(t.name()), Some(t));
        }
        assert_eq!(BlockingType::from_name("NotAMechanism"), None);
    }
}
