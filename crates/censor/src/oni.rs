//! ONI-style blocking-type distributions (Figure 2).
//!
//! Figure 2 of the paper plots, for eight ASes in Yemen, Indonesia,
//! Vietnam and Kyrgyzstan, the fraction of censored pages experiencing
//! each of five blocking signatures measured from the OpenNet Initiative
//! dataset: `No DNS`, `DNS Redir`, `No HTTP Resp`, `RST`, and
//! `Block Page w/o Redir`.
//!
//! The exact ONI per-AS numbers are not machine-readable from the paper,
//! so this module encodes the *qualitative* structure the paper draws from
//! the figure — DNS and HTTP blocking are both common, but their mix
//! varies sharply across ISPs and countries — as a set of per-AS mixtures.
//! The Figure 2 experiment then builds a censor policy from each mixture,
//! measures it with the C-Saw detector, and reports the recovered
//! fractions.

use crate::blocking::{DnsTamper, HttpAction, IpAction, TlsAction};
use crate::policy::{CensorPolicy, CensorRule, TargetMatcher};
use csaw_simnet::topology::Asn;

/// The five blocking signatures of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OniCategory {
    /// No DNS response received for a censored page.
    NoDns,
    /// DNS redirected to a different (bogus) address.
    DnsRedir,
    /// No HTTP response received.
    NoHttpResp,
    /// TCP reset attributed to blocking.
    Rst,
    /// Block page received without DNS redirection.
    BlockPageWoRedir,
}

impl OniCategory {
    /// All categories, in the figure's legend order.
    pub const ALL: [OniCategory; 5] = [
        OniCategory::NoDns,
        OniCategory::DnsRedir,
        OniCategory::NoHttpResp,
        OniCategory::Rst,
        OniCategory::BlockPageWoRedir,
    ];

    /// Legend label used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            OniCategory::NoDns => "No DNS",
            OniCategory::DnsRedir => "DNS Redir",
            OniCategory::NoHttpResp => "No HTTP Resp",
            OniCategory::Rst => "RST",
            OniCategory::BlockPageWoRedir => "Block Page w/o Redir",
        }
    }
}

/// One AS's blocking-type mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct AsMixture {
    /// The AS this mixture describes.
    pub asn: Asn,
    /// Country label for reporting.
    pub country: &'static str,
    /// Fractions per category, same order as [`OniCategory::ALL`];
    /// sums to 1.
    pub fractions: [f64; 5],
}

impl AsMixture {
    /// The fraction for one category.
    pub fn fraction(&self, cat: OniCategory) -> f64 {
        let idx = OniCategory::ALL
            .iter()
            .position(|c| *c == cat)
            .expect("category in ALL");
        self.fractions[idx]
    }
}

/// The eight ASes of Figure 2 with mixtures encoding the figure's
/// qualitative story: Yemen leans on no-HTTP-response filtering; the
/// Indonesian AS mixes DNS redirection with block pages; Vietnamese ASes
/// are dominated by DNS-level interference with some silent HTTP drops;
/// Kyrgyz ASes mix resets and block pages.
pub fn figure2_mixtures() -> Vec<AsMixture> {
    vec![
        AsMixture {
            asn: Asn(30873),
            country: "Yemen",
            // NoDns, DnsRedir, NoHttpResp, Rst, BlockPage
            fractions: [0.05, 0.10, 0.60, 0.05, 0.20],
        },
        AsMixture {
            asn: Asn(4795),
            country: "Indonesia",
            fractions: [0.05, 0.45, 0.10, 0.05, 0.35],
        },
        AsMixture {
            asn: Asn(18403),
            country: "Vietnam",
            fractions: [0.50, 0.10, 0.30, 0.05, 0.05],
        },
        AsMixture {
            asn: Asn(45543),
            country: "Vietnam",
            fractions: [0.60, 0.05, 0.25, 0.05, 0.05],
        },
        AsMixture {
            asn: Asn(45899),
            country: "Vietnam",
            fractions: [0.45, 0.15, 0.30, 0.05, 0.05],
        },
        AsMixture {
            asn: Asn(8511),
            country: "Kyrgyzstan",
            fractions: [0.05, 0.05, 0.15, 0.40, 0.35],
        },
        AsMixture {
            asn: Asn(12997),
            country: "Kyrgyzstan",
            fractions: [0.10, 0.05, 0.10, 0.30, 0.45],
        },
        AsMixture {
            asn: Asn(8449),
            country: "Kyrgyzstan",
            fractions: [0.05, 0.10, 0.20, 0.25, 0.40],
        },
    ]
}

/// Build a censor policy for an AS mixture over a universe of censored
/// domains: domain *i* is assigned the blocking signature whose cumulative
/// share covers `i / domains.len()` — a deterministic allocation that
/// recovers the mixture exactly in expectation.
pub fn policy_from_mixture(mix: &AsMixture, domains: &[String]) -> CensorPolicy {
    let mut p = CensorPolicy::new(format!("{} ({})", mix.country, mix.asn));
    let n = domains.len().max(1) as f64;
    for (i, domain) in domains.iter().enumerate() {
        let u = (i as f64 + 0.5) / n;
        let mut acc = 0.0;
        let mut chosen = OniCategory::BlockPageWoRedir;
        for (j, cat) in OniCategory::ALL.iter().enumerate() {
            acc += mix.fractions[j];
            if u < acc {
                chosen = *cat;
                break;
            }
        }
        let rule = CensorRule::target(TargetMatcher::DomainSuffix(domain.clone()));
        let rule = match chosen {
            OniCategory::NoDns => rule.dns(DnsTamper::Drop),
            OniCategory::DnsRedir => {
                rule.dns(DnsTamper::HijackTo("10.0.0.77".parse().expect("static")))
            }
            OniCategory::NoHttpResp => rule.http(HttpAction::Drop).tls(TlsAction::Drop),
            OniCategory::Rst => rule.http(HttpAction::Rst).ip(IpAction::None),
            OniCategory::BlockPageWoRedir => rule.http(HttpAction::BlockPageInline),
        };
        p = p.with_rule(rule);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_simnet::DetRng;
    use csaw_webproto::url::Url;

    #[test]
    fn mixtures_sum_to_one() {
        for m in figure2_mixtures() {
            let s: f64 = m.fractions.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: sum {s}", m.asn);
            assert!(m.fractions.iter().all(|f| *f >= 0.0));
        }
    }

    #[test]
    fn eight_ases_four_countries() {
        let ms = figure2_mixtures();
        assert_eq!(ms.len(), 8);
        let countries: std::collections::HashSet<&str> = ms.iter().map(|m| m.country).collect();
        assert_eq!(countries.len(), 4);
    }

    #[test]
    fn policy_allocation_matches_mixture() {
        let mix = &figure2_mixtures()[0]; // Yemen
        let domains: Vec<String> = (0..100).map(|i| format!("site{i}.ye")).collect();
        let pol = policy_from_mixture(mix, &domains);
        assert_eq!(pol.rule_count(), 100);
        // Count mechanisms: NoHttpResp should dominate for Yemen (0.60).
        let mut rng = DetRng::new(1);
        let mut http_drop = 0;
        let mut dns_active = 0;
        for d in &domains {
            let u = Url::parse(&format!("http://{d}/")).unwrap();
            if pol.on_http_request(&u, None, &mut rng) == HttpAction::Drop {
                http_drop += 1;
            }
            if pol.on_dns_query(d, None, &mut rng).is_active() {
                dns_active += 1;
            }
        }
        assert_eq!(http_drop, 60, "NoHttpResp share");
        assert_eq!(dns_active, 15, "NoDns + DnsRedir share");
    }

    #[test]
    fn fraction_accessor() {
        let m = &figure2_mixtures()[1];
        assert!((m.fraction(OniCategory::DnsRedir) - 0.45).abs() < 1e-9);
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(
            OniCategory::BlockPageWoRedir.label(),
            "Block Page w/o Redir"
        );
        assert_eq!(OniCategory::NoDns.label(), "No DNS");
    }
}
