//! # csaw-censor — censor middlebox models
//!
//! The paper evaluates C-Saw against live censoring ISPs; this crate is the
//! synthetic stand-in. A [`CensorPolicy`] exposes the same four
//! interception points a real filtering deployment has — DNS queries, TCP
//! connects, TLS ClientHellos, plaintext HTTP requests — and each decision
//! sees only the fields genuinely visible at that layer. That constraint is
//! what makes circumvention mechanics honest: domain fronting works here
//! because the HTTP stage never sees inside TLS, "IP as hostname" works
//! because the keyword matcher has no name to match, and so on.
//!
//! - [`blocking`]: per-layer actions and the [`BlockingType`] taxonomy;
//! - [`policy`]: rules, matchers, engage probabilities, and the compiled
//!   IP blacklist;
//! - [`profiles`]: Table 1's ISP-A/ISP-B, keyword filters, the §7.5
//!   Nov 2017 event matrix, and single-mechanism policies for Table 5;
//! - [`oni`]: Figure 2's per-AS blocking-type mixtures.

//!
//! ```
//! use csaw_censor::{isp_a, Category, HttpAction};
//! use csaw_simnet::DetRng;
//!
//! let policy = isp_a(); // Table 1's ISP-A: HTTP-level block pages
//! let mut rng = DetRng::new(1);
//! let url = "http://www.youtube.com/watch".parse().unwrap();
//! assert_eq!(
//!     policy.on_http_request(&url, Some(Category::Video), &mut rng),
//!     HttpAction::BlockPageRedirect
//! );
//! // ...but its DNS stage is clean, so HTTPS is a working local fix.
//! assert!(!policy.on_dns_query("www.youtube.com", Some(Category::Video), &mut rng).is_active());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blocking;
pub mod oni;
pub mod policy;
pub mod profiles;

pub use blocking::{
    BlockingType, Category, DnsTamper, HttpAction, IpAction, Stage, TlsAction, UdpAction,
};
pub use oni::{figure2_mixtures, policy_from_mixture, AsMixture, OniCategory};
pub use policy::{CensorPolicy, CensorRule, TargetMatcher};
pub use profiles::{
    clean, event_blocking_2017, event_matrix_2017, isp_a, isp_b, keyword_filter, single_mechanism,
    EventBlocking, ISP_A_ASN, ISP_B_ASN,
};
