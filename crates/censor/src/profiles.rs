//! Ready-made censor profiles.
//!
//! [`isp_a`] and [`isp_b`] reproduce Table 1 of the paper — the two large
//! Pakistani ISPs of the §2.3 case study:
//!
//! | Target            | ISP-A                               | ISP-B                                                  |
//! |-------------------|-------------------------------------|--------------------------------------------------------|
//! | YouTube           | HTTP blocking → block-page redirect | DNS → local host; HTTP/HTTPS → request dropped         |
//! | Rest (social/porn/political/…) | HTTP blocking → block-page redirect | HTTP blocking → block page via iframe     |
//!
//! [`event_blocking_2017`] reproduces the §7.5 "C-Saw in the wild"
//! snapshot: between Nov 25–28 2017, Twitter and Instagram were blocked
//! differently by different ASes (HTTP GET timeout on AS 38193, block page
//! on AS 17557, DNS blocking on AS 38193/59257/45773).

use crate::blocking::{Category, DnsTamper, HttpAction, IpAction, TlsAction};
use crate::policy::{CensorPolicy, CensorRule, TargetMatcher};
use csaw_simnet::topology::Asn;
use std::net::Ipv4Addr;

/// Canonical AS number used for ISP-A in experiments.
pub const ISP_A_ASN: Asn = Asn(45595);
/// Canonical AS number used for ISP-B in experiments.
pub const ISP_B_ASN: Asn = Asn(17557);

/// The local host ISP-B resolves blocked names to (a private address
/// inside the ISP — connecting to it goes nowhere useful).
pub fn isp_b_dns_sinkhole() -> Ipv4Addr {
    "10.10.34.36".parse().expect("static address")
}

/// ISP-A (Table 1): pure HTTP-level blocking with a redirect to a block
/// page, for YouTube and everything else on the blacklist. No DNS or
/// HTTPS interference — which is why plain HTTPS is a working local-fix
/// on this ISP.
pub fn isp_a() -> CensorPolicy {
    let mut p = CensorPolicy::new("ISP-A")
        .with_rule(
            CensorRule::target(TargetMatcher::DomainSuffix("youtube.com".into()))
                .http(HttpAction::BlockPageRedirect),
        )
        .with_rule(
            CensorRule::target(TargetMatcher::Category(Category::Social))
                .http(HttpAction::BlockPageRedirect),
        )
        .with_rule(
            CensorRule::target(TargetMatcher::Category(Category::Porn))
                .http(HttpAction::BlockPageRedirect),
        )
        .with_rule(
            CensorRule::target(TargetMatcher::Category(Category::Political))
                .http(HttpAction::BlockPageRedirect),
        )
        .with_rule(
            CensorRule::target(TargetMatcher::Category(Category::Religious))
                .http(HttpAction::BlockPageRedirect),
        );
    p.block_page_location = "http://surfsafely.isp-a.pk/".to_string();
    p
}

/// ISP-B (Table 1): multi-stage blocking for YouTube — DNS answers forged
/// to a local host *and*, for flows that slip past DNS (e.g. cached or
/// alternate resolutions), both HTTP and HTTPS requests are dropped. The
/// DNS stage engages for most flows (load balancing across filtering
/// devices); the rest of the blacklist gets an in-band block page.
pub fn isp_b() -> CensorPolicy {
    let mut p = CensorPolicy::new("ISP-B")
        .with_rule(
            CensorRule::target(TargetMatcher::DomainSuffix("youtube.com".into()))
                .dns(DnsTamper::HijackTo(isp_b_dns_sinkhole()))
                .dns_p(0.8)
                .http(HttpAction::Drop)
                .tls(TlsAction::Drop),
        )
        .with_rule(
            CensorRule::target(TargetMatcher::Category(Category::Social))
                .http(HttpAction::BlockPageInline),
        )
        .with_rule(
            CensorRule::target(TargetMatcher::Category(Category::Porn))
                .http(HttpAction::BlockPageInline),
        )
        .with_rule(
            CensorRule::target(TargetMatcher::Category(Category::Political))
                .http(HttpAction::BlockPageInline),
        )
        .with_rule(
            CensorRule::target(TargetMatcher::Category(Category::Religious))
                .http(HttpAction::BlockPageInline),
        );
    p.block_page_location = "http://blocked.isp-b.pk/".to_string();
    p
}

/// A keyword-filtering ISP: blocks plaintext HTTP whose host or path
/// contains a blacklisted keyword. The "IP as hostname" trick (Fig. 1c)
/// specifically defeats this profile.
pub fn keyword_filter(keywords: &[&str]) -> CensorPolicy {
    let mut p = CensorPolicy::new("ISP-KW");
    for k in keywords {
        p = p.with_rule(
            CensorRule::target(TargetMatcher::Keyword(k.to_ascii_lowercase()))
                .http(HttpAction::BlockPageRedirect),
        );
    }
    p.block_page_location = "http://filter.isp-kw.pk/".to_string();
    p
}

/// An ISP that does not censor at all (control condition).
pub fn clean() -> CensorPolicy {
    CensorPolicy::new("ISP-CLEAN")
}

/// A resourceful, GFW-style censor (the paper's §8 contrast to Pakistani
/// ISPs: "censors in several countries are neither as resourceful nor
/// motivated as the censors in countries like China"): on-path DNS
/// injection that poisons even public-resolver answers, RST injection on
/// blacklisted SNI, and plaintext HTTP resets. Pair with
/// `World::set_public_dns_intercepted(true)`.
pub fn resourceful(domains: &[&str]) -> CensorPolicy {
    let mut p = CensorPolicy::new("ISP-GFW");
    for d in domains {
        p = p.with_rule(
            CensorRule::target(TargetMatcher::DomainSuffix(d.to_string()))
                .dns(DnsTamper::HijackTo("10.99.99.99".parse().expect("static")))
                .http(HttpAction::Rst)
                .tls(TlsAction::Rst),
        );
    }
    p
}

/// How a given AS blocked a service during the Nov 2017 event (§7.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventBlocking {
    /// HTTP GET silently dropped (`HTTP_GET_TIMEOUT`).
    HttpGetTimeout,
    /// Block page served (`HTTP_GET_BLOCKPAGE`).
    HttpBlockPage,
    /// DNS blocking.
    Dns,
}

/// The §7.5 event matrix: `(ASN, service domain, mechanism)` rows exactly
/// as the paper's snapshot reports them.
pub fn event_matrix_2017() -> Vec<(Asn, &'static str, EventBlocking)> {
    vec![
        (Asn(38193), "twitter.com", EventBlocking::HttpGetTimeout),
        (Asn(17557), "twitter.com", EventBlocking::HttpBlockPage),
        (Asn(38193), "instagram.com", EventBlocking::Dns),
        (Asn(59257), "instagram.com", EventBlocking::Dns),
        (Asn(45773), "instagram.com", EventBlocking::Dns),
    ]
}

/// Build the policy an AS applied during the Nov 2017 event, layered on
/// top of an existing base policy.
pub fn event_blocking_2017(asn: Asn, base: CensorPolicy) -> CensorPolicy {
    let mut p = base;
    for (who, domain, how) in event_matrix_2017() {
        if who != asn {
            continue;
        }
        let rule = CensorRule::target(TargetMatcher::DomainSuffix(domain.to_string()));
        let rule = match how {
            EventBlocking::HttpGetTimeout => rule.http(HttpAction::Drop).tls(TlsAction::Drop),
            EventBlocking::HttpBlockPage => rule.http(HttpAction::BlockPageInline),
            EventBlocking::Dns => rule.dns(DnsTamper::Nxdomain).tls(TlsAction::Drop),
        };
        p = p.with_rule(rule);
    }
    p
}

/// A policy exercising exactly one blocking mechanism against one domain —
/// the workhorse for Table 5 and the Figure 5a sweeps.
pub fn single_mechanism(
    name: &str,
    domain: &str,
    dns: DnsTamper,
    ip: IpAction,
    http: HttpAction,
    tls: TlsAction,
) -> CensorPolicy {
    CensorPolicy::new(name).with_rule(
        CensorRule::target(TargetMatcher::DomainSuffix(domain.to_string()))
            .dns(dns)
            .ip(ip)
            .http(http)
            .tls(tls),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_simnet::DetRng;
    use csaw_webproto::url::Url;

    #[test]
    fn isp_a_is_http_only() {
        let pol = isp_a();
        let mut rng = DetRng::new(1);
        let yt = Url::parse("http://www.youtube.com/watch").unwrap();
        assert_eq!(
            pol.on_http_request(&yt, Some(Category::Video), &mut rng),
            HttpAction::BlockPageRedirect
        );
        // No DNS or TLS interference: HTTPS is a local-fix here.
        assert_eq!(
            pol.on_dns_query("www.youtube.com", Some(Category::Video), &mut rng),
            DnsTamper::None
        );
        assert_eq!(
            pol.on_tls_hello(Some("www.youtube.com"), Some(Category::Video), &mut rng),
            TlsAction::None
        );
    }

    #[test]
    fn isp_b_is_multi_stage_for_youtube() {
        let pol = isp_b();
        let mut rng = DetRng::new(2);
        // DNS hijacks most flows (p = 0.8).
        let mut hijacked = 0;
        for _ in 0..1_000 {
            if pol
                .on_dns_query("www.youtube.com", Some(Category::Video), &mut rng)
                .is_active()
            {
                hijacked += 1;
            }
        }
        assert!((700..=900).contains(&hijacked), "hijacked {hijacked}");
        // HTTP and HTTPS stages both drop.
        let yt = Url::parse("http://www.youtube.com/").unwrap();
        assert_eq!(
            pol.on_http_request(&yt, Some(Category::Video), &mut rng),
            HttpAction::Drop
        );
        assert_eq!(
            pol.on_tls_hello(Some("www.youtube.com"), Some(Category::Video), &mut rng),
            TlsAction::Drop
        );
        // Other content: inline block page, DNS untouched.
        let porn = Url::parse("http://adult.example/").unwrap();
        assert_eq!(
            pol.on_http_request(&porn, Some(Category::Porn), &mut rng),
            HttpAction::BlockPageInline
        );
        assert_eq!(
            pol.on_dns_query("adult.example", Some(Category::Porn), &mut rng),
            DnsTamper::None
        );
    }

    #[test]
    fn keyword_profile_defeated_by_ip_hostname() {
        let pol = keyword_filter(&["forbidden"]);
        let mut rng = DetRng::new(3);
        let named = Url::parse("http://forbidden-site.example/").unwrap();
        assert!(pol
            .on_http_request(&named, None, &mut rng)
            .serves_block_page());
        let by_ip = named.with_ip_host("93.184.216.34".parse().unwrap());
        assert_eq!(
            pol.on_http_request(&by_ip, None, &mut rng),
            HttpAction::None
        );
    }

    #[test]
    fn clean_profile_blocks_nothing() {
        let pol = clean();
        let mut rng = DetRng::new(4);
        let u = Url::parse("http://anything.example/").unwrap();
        assert_eq!(pol.on_http_request(&u, None, &mut rng), HttpAction::None);
        assert_eq!(
            pol.on_dns_query("anything.example", None, &mut rng),
            DnsTamper::None
        );
    }

    #[test]
    fn resourceful_profile_hits_every_plaintext_stage() {
        let pol = resourceful(&["blocked.example"]);
        let mut rng = DetRng::new(9);
        assert!(pol
            .on_dns_query("www.blocked.example", None, &mut rng)
            .is_active());
        assert_eq!(
            pol.on_tls_hello(Some("blocked.example"), None, &mut rng),
            TlsAction::Rst
        );
        let u = Url::parse("http://blocked.example/").unwrap();
        assert_eq!(pol.on_http_request(&u, None, &mut rng), HttpAction::Rst);
        // Unlisted domains untouched.
        assert!(!pol.on_dns_query("fine.example", None, &mut rng).is_active());
    }

    #[test]
    fn event_matrix_applied_per_as() {
        let mut rng = DetRng::new(5);
        let as38193 = event_blocking_2017(Asn(38193), clean());
        let as17557 = event_blocking_2017(Asn(17557), clean());
        let as59257 = event_blocking_2017(Asn(59257), clean());
        let tw = Url::parse("http://twitter.com/").unwrap();
        // AS 38193: Twitter GET dropped, Instagram DNS-blocked.
        assert_eq!(
            as38193.on_http_request(&tw, Some(Category::Social), &mut rng),
            HttpAction::Drop
        );
        assert_eq!(
            as38193.on_dns_query("instagram.com", Some(Category::Social), &mut rng),
            DnsTamper::Nxdomain
        );
        // AS 17557: Twitter gets a block page; Instagram untouched there.
        assert_eq!(
            as17557.on_http_request(&tw, Some(Category::Social), &mut rng),
            HttpAction::BlockPageInline
        );
        assert_eq!(
            as17557.on_dns_query("instagram.com", Some(Category::Social), &mut rng),
            DnsTamper::None
        );
        // AS 59257: only Instagram DNS.
        assert_eq!(
            as59257.on_http_request(&tw, Some(Category::Social), &mut rng),
            HttpAction::None
        );
        assert_eq!(
            as59257.on_dns_query("instagram.com", Some(Category::Social), &mut rng),
            DnsTamper::Nxdomain
        );
    }

    #[test]
    fn single_mechanism_builder() {
        let pol = single_mechanism(
            "T5",
            "victim.example",
            DnsTamper::None,
            IpAction::Drop,
            HttpAction::None,
            TlsAction::None,
        );
        assert_eq!(pol.rule_count(), 1);
        assert!(pol.censors_name("www.victim.example", None));
    }
}
