//! Transport abstraction over the global DB: one trait, two homes.
//!
//! [`GlobalApi`] is the surface a client needs from the server —
//! register, post a batch, download blocked records. The in-process
//! [`ServerDb`] implements it directly; [`RemoteDb`] implements it over
//! TCP against a `csaw-dbserver` instance, speaking the length-framed
//! wire protocol from [`csaw_store::net`] through a small connection
//! pool. `CsawClient::post_reports`/`sync_global` are generic over the
//! trait, so the same client code runs in-process in the simulator and
//! over real sockets in the scale harness.
//!
//! Transport failures surface as [`StoreError::Unavailable`] (posting,
//! syncing) or [`RegistrationError::Unavailable`] (registering) —
//! exactly the retryable-error shapes the client's backoff and
//! receipt-reconciliation paths already handle. Nothing is silently
//! dropped: a batch whose receipt never arrived is still queued on the
//! client.

use crate::global::server::{RegistrationError, ServerDb};
use csaw_simnet::time::SimTime;
use csaw_simnet::topology::Asn;
use csaw_store::net::{DbRequest, DbResponse};
use csaw_store::{Batch, ConfidenceFilter, GlobalRecord, IngestReceipt, StoreError, Uuid};
use csaw_webproto::bytes::BytesMut;
use csaw_webproto::codec::{read_frame, write_frame};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// What a client needs from the global DB, wherever it lives.
pub trait GlobalApi: Send + Sync {
    /// Register a new client UUID (the "No CAPTCHA reCAPTCHA" gate).
    fn register(&self, now: SimTime, risk_score: f64) -> Result<Uuid, RegistrationError>;

    /// Post a report batch; the receipt reconciles every index.
    fn ingest(&self, batch: Batch) -> Result<IngestReceipt, StoreError>;

    /// Download the blocked records visible from an AS.
    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError>;
}

impl<T: GlobalApi + ?Sized> GlobalApi for std::sync::Arc<T> {
    fn register(&self, now: SimTime, risk_score: f64) -> Result<Uuid, RegistrationError> {
        (**self).register(now, risk_score)
    }

    fn ingest(&self, batch: Batch) -> Result<IngestReceipt, StoreError> {
        (**self).ingest(batch)
    }

    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError> {
        (**self).blocked_for_as(asn, filter)
    }
}

impl<T: GlobalApi + ?Sized> GlobalApi for &T {
    fn register(&self, now: SimTime, risk_score: f64) -> Result<Uuid, RegistrationError> {
        (**self).register(now, risk_score)
    }

    fn ingest(&self, batch: Batch) -> Result<IngestReceipt, StoreError> {
        (**self).ingest(batch)
    }

    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError> {
        (**self).blocked_for_as(asn, filter)
    }
}

impl GlobalApi for ServerDb {
    fn register(&self, now: SimTime, risk_score: f64) -> Result<Uuid, RegistrationError> {
        ServerDb::register(self, now, risk_score)
    }

    fn ingest(&self, batch: Batch) -> Result<IngestReceipt, StoreError> {
        ServerDb::ingest(self, batch)
    }

    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError> {
        ServerDb::blocked_for_as(self, asn, filter)
    }
}

/// One pooled connection: the blocking stream plus its incremental
/// read buffer (responses can arrive torn across reads).
#[derive(Debug)]
struct PooledConn {
    stream: TcpStream,
    buf: BytesMut,
}

impl PooledConn {
    fn roundtrip(&mut self, req: &DbRequest) -> Result<DbResponse, StoreError> {
        write_frame(&mut self.stream, &req.to_frame())
            .map_err(|_| StoreError::Unavailable("global DB connection write failed"))?;
        let frame = read_frame(&mut self.stream, &mut self.buf)
            .map_err(|_| StoreError::Unavailable("global DB connection read failed"))?
            .ok_or(StoreError::Unavailable("global DB closed the connection"))?;
        DbResponse::from_frame(&frame)
    }
}

/// A TCP client for `csaw-dbserver` with a checkout/return connection
/// pool. Shareable across threads (`&RemoteDb` posts concurrently —
/// each in-flight request owns a pooled connection exclusively).
#[derive(Debug)]
pub struct RemoteDb {
    addr: SocketAddr,
    idle: Mutex<Vec<PooledConn>>,
    max_idle: usize,
    read_timeout: Duration,
}

impl RemoteDb {
    /// A pool that will connect lazily to `addr`.
    pub fn new(addr: SocketAddr) -> RemoteDb {
        RemoteDb {
            addr,
            idle: Mutex::new(Vec::new()),
            max_idle: 16,
            read_timeout: Duration::from_secs(10),
        }
    }

    /// Cap the number of idle connections kept for reuse.
    pub fn with_max_idle(mut self, n: usize) -> RemoteDb {
        self.max_idle = n;
        self
    }

    /// Per-request read timeout (a hung server surfaces as
    /// [`StoreError::Unavailable`], not a deadlock).
    pub fn with_read_timeout(mut self, t: Duration) -> RemoteDb {
        self.read_timeout = t;
        self
    }

    /// The server address this pool talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Idle connections currently pooled (telemetry/tests).
    pub fn idle_connections(&self) -> usize {
        self.idle.lock().unwrap().len()
    }

    fn checkout(&self) -> io::Result<PooledConn> {
        if let Some(conn) = self.idle.lock().unwrap().pop() {
            return Ok(conn);
        }
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        Ok(PooledConn {
            stream,
            buf: BytesMut::new(),
        })
    }

    fn put_back(&self, conn: PooledConn) {
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }

    /// One request/response exchange. The connection returns to the
    /// pool only after a clean roundtrip; any transport error drops it
    /// (its framing state is unknown) and surfaces as `Unavailable` —
    /// the caller's retry path, not the pool, owns resubmission.
    fn call(&self, req: &DbRequest) -> Result<DbResponse, StoreError> {
        let mut conn = self
            .checkout()
            .map_err(|_| StoreError::Unavailable("global DB server unreachable"))?;
        match conn.roundtrip(req) {
            Ok(resp) => {
                self.put_back(conn);
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }

    fn unexpected(resp: &DbResponse) -> StoreError {
        StoreError::Corrupt(format!("unexpected response from global DB: {resp:?}"))
    }
}

impl GlobalApi for RemoteDb {
    fn register(&self, now: SimTime, risk_score: f64) -> Result<Uuid, RegistrationError> {
        let resp = self
            .call(&DbRequest::Register {
                now,
                risk: risk_score,
            })
            .map_err(|_| RegistrationError::Unavailable)?;
        match resp {
            DbResponse::Registered(uuid) => Ok(uuid),
            DbResponse::Error { code, .. } => Err(match code.as_str() {
                "risk_rejected" => RegistrationError::RiskRejected,
                "rate_limited" => RegistrationError::RateLimited,
                _ => RegistrationError::Unavailable,
            }),
            _ => Err(RegistrationError::Unavailable),
        }
    }

    fn ingest(&self, batch: Batch) -> Result<IngestReceipt, StoreError> {
        let resp = self.call(&DbRequest::Post {
            client: batch.client,
            posted_at: batch.posted_at,
            reports: batch.reports().to_vec(),
        })?;
        match resp {
            DbResponse::Receipt(receipt) => Ok(receipt),
            DbResponse::Error {
                code,
                detail,
                index,
            } => Err(DbResponse::to_store_error(&code, &detail, index)),
            other => Err(Self::unexpected(&other)),
        }
    }

    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError> {
        let resp = self.call(&DbRequest::Blocked {
            asn,
            filter: *filter,
        })?;
        match resp {
            DbResponse::Records(records) => Ok(records),
            DbResponse::Error {
                code,
                detail,
                index,
            } => Err(DbResponse::to_store_error(&code, &detail, index)),
            other => Err(Self::unexpected(&other)),
        }
    }
}
