//! Distributed report collection (§5 "Blocking access to the global_DB").
//!
//! A global DB behind one well-known name is a single choke point: a
//! censor that blocks it (or that hosts the Tor exit carrying the report)
//! silences all measurement. The paper's answer, borrowed from OONI's
//! collector design, is a *set* of collectors, each exposed as a Tor
//! hidden service, any of which can relay a report to the global DB.
//!
//! This module models that collection tier: a [`CollectorSet`] with
//! per-collector reachability that censors can flip, and a submission
//! routine that fails over deterministically and reports which collector
//! carried the batch.

use crate::global::record::{Report, Uuid};
use crate::global::server::{PostError, ServerDb};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};

/// One collector endpoint (a Tor hidden service in the paper's design).
#[derive(Debug, Clone, PartialEq)]
pub struct Collector {
    /// Onion-style identifier.
    pub id: String,
    /// Can clients currently reach it?
    pub reachable: bool,
    /// Submission latency through this collector.
    pub latency: SimDuration,
}

/// Submission failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Every collector was unreachable.
    AllCollectorsBlocked,
    /// The server rejected the batch.
    Rejected(PostError),
}

/// Outcome of a successful submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReceipt {
    /// Which collector carried the batch.
    pub via: String,
    /// Reports accepted by the server.
    pub accepted: usize,
    /// Time spent, including failed attempts against blocked collectors.
    pub elapsed: SimDuration,
    /// Batch indices the server permanently rejected (sanitization) —
    /// resubmitting these is futile.
    pub rejected_indices: Vec<usize>,
    /// Batch indices the store never attempted (torn write) — these
    /// must be resubmitted or they are lost.
    pub deferred_indices: Vec<usize>,
}

impl SubmitReceipt {
    /// A receipt for an empty submission (nothing queued).
    pub fn empty() -> SubmitReceipt {
        SubmitReceipt {
            via: "-".into(),
            accepted: 0,
            elapsed: SimDuration::ZERO,
            rejected_indices: Vec::new(),
            deferred_indices: Vec::new(),
        }
    }
}

/// The collection tier.
#[derive(Debug, Clone, Default)]
pub struct CollectorSet {
    collectors: Vec<Collector>,
}

impl CollectorSet {
    /// An OONI-style default: three hidden-service collectors.
    pub fn default_set() -> CollectorSet {
        CollectorSet {
            collectors: vec![
                Collector {
                    id: "collector-a.onion".into(),
                    reachable: true,
                    latency: SimDuration::from_millis(1_800),
                },
                Collector {
                    id: "collector-b.onion".into(),
                    reachable: true,
                    latency: SimDuration::from_millis(2_400),
                },
                Collector {
                    id: "collector-c.onion".into(),
                    reachable: true,
                    latency: SimDuration::from_millis(3_100),
                },
            ],
        }
    }

    /// Build from explicit collectors.
    pub fn new(collectors: Vec<Collector>) -> CollectorSet {
        CollectorSet { collectors }
    }

    /// Flip a collector's reachability (a censor blocking or unblocking
    /// it).
    pub fn set_reachable(&mut self, id: &str, reachable: bool) {
        if let Some(c) = self.collectors.iter_mut().find(|c| c.id == id) {
            c.reachable = reachable;
        }
    }

    /// How many collectors are currently reachable?
    pub fn reachable_count(&self) -> usize {
        self.collectors.iter().filter(|c| c.reachable).count()
    }

    /// Submit a batch: collectors are tried in a random order (clients
    /// spreading load, and not all hammering the same first entry), with
    /// failover past blocked ones. A blocked attempt costs a timeout
    /// before the client moves on.
    pub fn submit(
        &self,
        server: &ServerDb,
        client: Uuid,
        reports: &[Report],
        now: SimTime,
        rng: &mut DetRng,
    ) -> Result<SubmitReceipt, SubmitError> {
        let mut order: Vec<usize> = (0..self.collectors.len()).collect();
        rng.shuffle(&mut order);
        let mut elapsed = SimDuration::ZERO;
        for idx in order {
            let c = &self.collectors[idx];
            if !c.reachable {
                // Hidden-service connection attempt that never completes.
                elapsed += SimDuration::from_secs(10);
                continue;
            }
            elapsed += c.latency;
            // Wire round trip (Tor carries it), then the first-class
            // ingest path so the receipt's per-report indices survive
            // for client-side reconciliation.
            let wire = Report::encode_batch(reports);
            let batch = match crate::global::Batch::from_wire(client, &wire, now + elapsed) {
                Ok(b) => b,
                Err(e) => return Err(SubmitError::Rejected(e)),
            };
            return match server.ingest(batch) {
                Ok(receipt) => Ok(SubmitReceipt {
                    via: c.id.clone(),
                    accepted: receipt.accepted,
                    elapsed,
                    rejected_indices: receipt.rejected_indices,
                    deferred_indices: receipt.deferred_indices,
                }),
                Err(e) => Err(SubmitError::Rejected(e)),
            };
        }
        Err(SubmitError::AllCollectorsBlocked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::BlockingType;

    fn report(url: &str) -> Report {
        Report {
            url: url.into(),
            asn: 17557,
            measured_at_us: 1,
            stages: vec![BlockingType::HttpDrop],
        }
    }

    fn setup() -> (ServerDb, Uuid) {
        let s = ServerDb::builder(3).build().unwrap();
        let c = s.register(SimTime::from_secs(1), 0.0).unwrap();
        (s, c)
    }

    #[test]
    fn submits_through_any_reachable_collector() {
        let (server, client) = setup();
        let set = CollectorSet::default_set();
        let mut rng = DetRng::new(1);
        let r = set
            .submit(
                &server,
                client,
                &[report("http://x.example/")],
                SimTime::from_secs(5),
                &mut rng,
            )
            .unwrap();
        assert_eq!(r.accepted, 1);
        assert!(r.via.ends_with(".onion"));
        assert_eq!(server.stats().unique_blocked_urls, 1);
    }

    #[test]
    fn fails_over_past_blocked_collectors() {
        let (server, client) = setup();
        let mut set = CollectorSet::default_set();
        set.set_reachable("collector-a.onion", false);
        set.set_reachable("collector-b.onion", false);
        assert_eq!(set.reachable_count(), 1);
        let mut rng = DetRng::new(2);
        let r = set
            .submit(
                &server,
                client,
                &[report("http://x.example/")],
                SimTime::from_secs(5),
                &mut rng,
            )
            .unwrap();
        assert_eq!(r.via, "collector-c.onion");
        // Failed attempts cost time before the success.
        assert!(r.elapsed >= SimDuration::from_secs(3), "{:?}", r.elapsed);
    }

    #[test]
    fn all_blocked_is_reported_not_lost() {
        let (server, client) = setup();
        let mut set = CollectorSet::default_set();
        for id in [
            "collector-a.onion",
            "collector-b.onion",
            "collector-c.onion",
        ] {
            set.set_reachable(id, false);
        }
        let mut rng = DetRng::new(3);
        let err = set
            .submit(
                &server,
                client,
                &[report("http://x.example/")],
                SimTime::from_secs(5),
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, SubmitError::AllCollectorsBlocked);
        assert_eq!(server.stats().unique_blocked_urls, 0);
    }

    #[test]
    fn server_rejections_propagate() {
        let (server, _) = setup();
        let set = CollectorSet::default_set();
        let mut rng = DetRng::new(4);
        let err = set
            .submit(
                &server,
                Uuid::from_raw(0xdead),
                &[report("http://x.example/")],
                SimTime::from_secs(5),
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, SubmitError::Rejected(PostError::UnknownClient));
    }

    #[test]
    fn load_spreads_across_collectors() {
        let (server, client) = setup();
        let set = CollectorSet::default_set();
        let mut rng = DetRng::new(5);
        let mut used = std::collections::HashSet::new();
        for i in 0..30 {
            let r = set
                .submit(
                    &server,
                    client,
                    &[report(&format!("http://x{i}.example/"))],
                    SimTime::from_secs(10 + i),
                    &mut rng,
                )
                .unwrap();
            used.insert(r.via);
        }
        assert_eq!(used.len(), 3, "all collectors should carry some load");
    }
}
