//! The server_DB: registration, update ingestion, per-AS downloads,
//! voting, and deployment-study analytics (§4.2, §5, Table 7).

use crate::global::record::{GlobalRecord, Report, Uuid};
use crate::global::voting::{ConfidenceFilter, Tally, VoteLedger};
use csaw_censor::blocking::{BlockingType, Stage};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;
use std::collections::{HashMap, HashSet};

/// Registration failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistrationError {
    /// The risk-analysis engine flagged the attempt ("No CAPTCHA
    /// reCAPTCHA"'s adaptive gate, §5).
    RiskRejected,
    /// Too many registrations in the current window (automated
    /// fake-identity farming).
    RateLimited,
}

/// Update-posting failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// Unknown or revoked UUID.
    UnknownClient,
    /// The batch could not be parsed.
    Malformed,
}

/// Registration gate configuration.
#[derive(Debug, Clone, Copy)]
pub struct RegistrarConfig {
    /// Risk scores above this are rejected (0 = reject everyone,
    /// 1 = accept everyone).
    pub max_risk: f64,
    /// Maximum registrations per window.
    pub max_per_window: usize,
    /// Window length.
    pub window: SimDuration,
}

impl Default for RegistrarConfig {
    fn default() -> Self {
        RegistrarConfig {
            max_risk: 0.7,
            max_per_window: 20,
            window: SimDuration::from_secs(60),
        }
    }
}

/// The global measurement server (server_DB + global_DB).
#[derive(Debug, Clone)]
pub struct ServerDb {
    salt: u64,
    uuid_counter: u64,
    clients: HashSet<Uuid>,
    records: HashMap<(String, Asn), GlobalRecord>,
    ledger: VoteLedger,
    registrar: RegistrarConfig,
    window_start: SimTime,
    window_count: usize,
    /// Total updates accepted (Table 7's "No. of unique updates").
    pub updates_accepted: u64,
}

impl ServerDb {
    /// A server with the given salt (determinism) and default gate.
    pub fn new(salt: u64) -> ServerDb {
        ServerDb {
            salt,
            uuid_counter: 0,
            clients: HashSet::new(),
            records: HashMap::new(),
            ledger: VoteLedger::new(),
            registrar: RegistrarConfig::default(),
            window_start: SimTime::ZERO,
            window_count: 0,
            updates_accepted: 0,
        }
    }

    /// Override the registration gate.
    pub fn with_registrar(mut self, cfg: RegistrarConfig) -> ServerDb {
        self.registrar = cfg;
        self
    }

    /// Register a new client. `risk_score` comes from the CAPTCHA/risk
    /// engine (0 = certainly human, 1 = certainly bot).
    pub fn register(&mut self, now: SimTime, risk_score: f64) -> Result<Uuid, RegistrationError> {
        if now.duration_since(self.window_start) >= self.registrar.window {
            self.window_start = now;
            self.window_count = 0;
        }
        if risk_score > self.registrar.max_risk {
            csaw_obs::inc("global.register.risk_rejected");
            return Err(RegistrationError::RiskRejected);
        }
        if self.window_count >= self.registrar.max_per_window {
            csaw_obs::inc("global.register.rate_limited");
            return Err(RegistrationError::RateLimited);
        }
        self.window_count += 1;
        self.uuid_counter += 1;
        let uuid = Uuid::derive(now, self.uuid_counter, self.salt);
        self.clients.insert(uuid);
        csaw_obs::inc("global.register.accepted");
        csaw_obs::gauge_set("global.clients", self.clients.len() as i64);
        Ok(uuid)
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Ingest a JSON batch from the wire.
    pub fn post_update_wire(
        &mut self,
        client: Uuid,
        wire: &str,
        now: SimTime,
    ) -> Result<usize, PostError> {
        let reports = Report::decode_batch(wire).map_err(|_| PostError::Malformed)?;
        self.post_update(client, &reports, now)
    }

    /// Ingest parsed reports: store/update global records and re-spread
    /// the client's votes. Only blocked URLs travel in reports by
    /// protocol construction.
    pub fn post_update(
        &mut self,
        client: Uuid,
        reports: &[Report],
        now: SimTime,
    ) -> Result<usize, PostError> {
        if !self.clients.contains(&client) {
            csaw_obs::inc("global.post.unknown_client");
            return Err(PostError::UnknownClient);
        }
        let mut accepted = 0;
        for r in reports {
            // Sanitize: the URL must parse; garbage is dropped, not stored.
            if Url::parse(&r.url).is_err() || r.stages.is_empty() {
                continue;
            }
            let key = (r.url.clone(), Asn(r.asn));
            self.records.insert(
                key,
                GlobalRecord {
                    url: r.url.clone(),
                    asn: Asn(r.asn),
                    measured_at: SimTime::from_micros(r.measured_at_us),
                    stages: r.stages.clone(),
                    posted_at: now,
                    reporter: client,
                },
            );
            accepted += 1;
        }
        self.ledger.add_client_urls(
            client,
            reports
                .iter()
                .filter(|r| Url::parse(&r.url).is_ok() && !r.stages.is_empty())
                .map(|r| (r.url.clone(), Asn(r.asn))),
        );
        self.updates_accepted += accepted as u64;
        let ctx = csaw_obs::scope::current();
        ctx.registry.counter("global.post.batches").inc();
        ctx.registry
            .counter("global.post.reports_accepted")
            .add(accepted as u64);
        ctx.registry
            .counter("global.post.reports_dropped")
            .add(reports.len() as u64 - accepted as u64);
        ctx.registry
            .gauge("global.records")
            .set(self.records.len() as i64);
        Ok(accepted as usize)
    }

    /// The blocked-URL list for an AS, filtered by vote confidence —
    /// what clients download at initialization and on every sync.
    pub fn blocked_for_as(&self, asn: Asn, filter: &ConfidenceFilter) -> Vec<GlobalRecord> {
        let mut out: Vec<GlobalRecord> = self
            .records
            .values()
            .filter(|r| r.asn == asn)
            .filter(|r| filter.passes(&self.ledger.tally(&r.url, r.asn)))
            .cloned()
            .collect();
        out.sort_by(|a, b| a.url.cmp(&b.url));
        let ctx = csaw_obs::scope::current();
        ctx.registry.counter("global.downloads").inc();
        ctx.registry
            .counter("global.downloads.records_served")
            .add(out.len() as u64);
        out
    }

    /// Vote tally for a (URL, AS) — exposed for analytics.
    pub fn tally(&self, url: &str, asn: Asn) -> Tally {
        self.ledger.tally(url, asn)
    }

    /// Evict a client and its votes (reputation enforcement, §5).
    pub fn revoke(&mut self, client: Uuid) {
        if self.clients.remove(&client) {
            csaw_obs::inc("global.revocations");
            csaw_obs::gauge_set("global.clients", self.clients.len() as i64);
        }
        self.ledger.revoke(client);
    }

    /// Read access to the vote ledger (analytics, auditing).
    pub fn ledger(&self) -> &VoteLedger {
        &self.ledger
    }

    /// Run a behavioral reputation audit and revoke every flagged client
    /// along with its records (§5's "revoke UUIDs of malicious users").
    pub fn audit_and_revoke(
        &mut self,
        cfg: &crate::global::reputation::ReputationConfig,
    ) -> Vec<crate::global::reputation::Flag> {
        let flags = crate::global::reputation::audit(&self.ledger, cfg);
        for f in &flags {
            self.revoke(f.client);
            self.records.retain(|_, r| r.reporter != f.client);
        }
        flags
    }

    /// Drop global records older than `max_age` (the global DB tracks
    /// *current* censorship; §4.4 churn).
    pub fn expire_records(&mut self, now: SimTime, max_age: SimDuration) -> usize {
        let before = self.records.len();
        self.records
            .retain(|_, r| now.duration_since(r.posted_at) < max_age);
        before - self.records.len()
    }

    /// Deployment-study analytics (Table 7).
    pub fn stats(&self) -> DeploymentStats {
        let mut domains = HashSet::new();
        let mut ases = HashSet::new();
        let mut types = HashSet::new();
        let mut dns_urls = HashSet::new();
        let mut tcp_urls = HashSet::new();
        let mut blockpage_urls = HashSet::new();
        let mut urls = HashSet::new();
        for r in self.records.values() {
            urls.insert(&r.url);
            ases.insert(r.asn);
            if let Ok(u) = Url::parse(&r.url) {
                domains.insert(u.host().registrable_domain());
            }
            for s in &r.stages {
                types.insert(*s);
                match s {
                    BlockingType::HttpBlockPageRedirect | BlockingType::HttpBlockPageInline => {
                        blockpage_urls.insert(&r.url);
                    }
                    BlockingType::IpDrop => {
                        tcp_urls.insert(&r.url);
                    }
                    _ if s.stage() == Stage::Dns => {
                        dns_urls.insert(&r.url);
                    }
                    _ => {}
                }
            }
        }
        DeploymentStats {
            clients: self.client_count(),
            unique_blocked_urls: urls.len(),
            unique_blocked_domains: domains.len(),
            unique_ases: ases.len(),
            distinct_blocking_types: types.len(),
            urls_dns_blocked: dns_urls.len(),
            urls_tcp_timeout: tcp_urls.len(),
            urls_block_page: blockpage_urls.len(),
            unique_updates: self.updates_accepted,
        }
    }
}

/// The Table 7 aggregate view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentStats {
    /// Registered clients ("No. of users").
    pub clients: usize,
    /// Unique blocked URLs accessed.
    pub unique_blocked_urls: usize,
    /// Unique blocked domains accessed.
    pub unique_blocked_domains: usize,
    /// Unique ASes reporting.
    pub unique_ases: usize,
    /// Distinct blocking mechanisms observed.
    pub distinct_blocking_types: usize,
    /// URLs experiencing DNS blocking.
    pub urls_dns_blocked: usize,
    /// URLs experiencing TCP connection timeouts.
    pub urls_tcp_timeout: usize,
    /// URLs for which a block page was returned.
    pub urls_block_page: usize,
    /// Unique updates accepted.
    pub unique_updates: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(url: &str, asn: u32, stage: BlockingType) -> Report {
        Report {
            url: url.into(),
            asn,
            measured_at_us: 123,
            stages: vec![stage],
        }
    }

    #[test]
    fn register_and_post_flow() {
        let mut s = ServerDb::new(7);
        let c = s.register(SimTime::from_secs(1), 0.1).unwrap();
        let n = s
            .post_update(
                c,
                &[report("http://x.com/", 17557, BlockingType::DnsHijack)],
                SimTime::from_secs(2),
            )
            .unwrap();
        assert_eq!(n, 1);
        let list = s.blocked_for_as(Asn(17557), &ConfidenceFilter::default());
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].url, "http://x.com/");
        assert_eq!(list[0].posted_at, SimTime::from_secs(2));
        assert_eq!(list[0].reporter, c);
        // Other ASes see nothing.
        assert!(s
            .blocked_for_as(Asn(1), &ConfidenceFilter::default())
            .is_empty());
    }

    #[test]
    fn unknown_client_rejected() {
        let mut s = ServerDb::new(7);
        let err = s.post_update(Uuid::from_raw(99), &[], SimTime::ZERO);
        assert_eq!(err, Err(PostError::UnknownClient));
    }

    #[test]
    fn malformed_wire_rejected_and_garbage_urls_dropped() {
        let mut s = ServerDb::new(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        assert_eq!(
            s.post_update_wire(c, "garbage", SimTime::ZERO),
            Err(PostError::Malformed)
        );
        let n = s
            .post_update(
                c,
                &[
                    report("not a url", 1, BlockingType::HttpDrop),
                    report("http://ok.com/", 1, BlockingType::HttpDrop),
                ],
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn risk_gate_and_rate_limit() {
        let mut s = ServerDb::new(7).with_registrar(RegistrarConfig {
            max_risk: 0.5,
            max_per_window: 2,
            window: SimDuration::from_secs(60),
        });
        assert_eq!(
            s.register(SimTime::ZERO, 0.9),
            Err(RegistrationError::RiskRejected)
        );
        s.register(SimTime::ZERO, 0.1).unwrap();
        s.register(SimTime::ZERO, 0.1).unwrap();
        assert_eq!(
            s.register(SimTime::from_secs(1), 0.1),
            Err(RegistrationError::RateLimited)
        );
        // New window resets the budget.
        assert!(s.register(SimTime::from_secs(61), 0.1).is_ok());
        assert_eq!(s.client_count(), 3);
    }

    #[test]
    fn confidence_filter_hides_lone_spam() {
        let mut s = ServerDb::new(7);
        let honest1 = s.register(SimTime::ZERO, 0.0).unwrap();
        let honest2 = s.register(SimTime::ZERO, 0.0).unwrap();
        let spammer = s.register(SimTime::ZERO, 0.0).unwrap();
        for c in [honest1, honest2] {
            s.post_update(
                c,
                &[report("http://real.com/", 1, BlockingType::HttpDrop)],
                SimTime::ZERO,
            )
            .unwrap();
        }
        let fakes: Vec<Report> = (0..200)
            .map(|i| report(&format!("http://fake{i}.com/"), 1, BlockingType::HttpDrop))
            .collect();
        s.post_update(spammer, &fakes, SimTime::ZERO).unwrap();
        let strict = ConfidenceFilter::strict(2, 0.1);
        let visible = s.blocked_for_as(Asn(1), &strict);
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].url, "http://real.com/");
        // Unfiltered view contains everything (for analytics).
        assert_eq!(
            s.blocked_for_as(Asn(1), &ConfidenceFilter::default()).len(),
            201
        );
    }

    #[test]
    fn revocation_hides_reports() {
        let mut s = ServerDb::new(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        s.post_update(
            c,
            &[report("http://x.com/", 1, BlockingType::HttpDrop)],
            SimTime::ZERO,
        )
        .unwrap();
        s.revoke(c);
        let strict = ConfidenceFilter::strict(1, 0.01);
        assert!(s.blocked_for_as(Asn(1), &strict).is_empty());
        // And the client can no longer post.
        assert_eq!(
            s.post_update(c, &[], SimTime::ZERO),
            Err(PostError::UnknownClient)
        );
    }

    #[test]
    fn stats_cover_table7_dimensions() {
        let mut s = ServerDb::new(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        s.post_update(
            c,
            &[
                report("http://a.foo.com/x", 1, BlockingType::DnsHijack),
                report("http://b.foo.com/", 1, BlockingType::IpDrop),
                report("http://bar.com/", 2, BlockingType::HttpBlockPageInline),
            ],
            SimTime::ZERO,
        )
        .unwrap();
        let st = s.stats();
        assert_eq!(st.clients, 1);
        assert_eq!(st.unique_blocked_urls, 3);
        assert_eq!(st.unique_blocked_domains, 2); // foo.com, bar.com
        assert_eq!(st.unique_ases, 2);
        assert_eq!(st.distinct_blocking_types, 3);
        assert_eq!(st.urls_dns_blocked, 1);
        assert_eq!(st.urls_tcp_timeout, 1);
        assert_eq!(st.urls_block_page, 1);
        assert_eq!(st.unique_updates, 3);
    }

    #[test]
    fn repost_after_expiry_restores_visibility() {
        let mut s = ServerDb::new(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        let r = report("http://x.com/", 1, BlockingType::HttpDrop);
        s.post_update(c, std::slice::from_ref(&r), SimTime::ZERO)
            .unwrap();
        s.expire_records(SimTime::from_secs(100), SimDuration::from_secs(50));
        assert!(s
            .blocked_for_as(Asn(1), &ConfidenceFilter::default())
            .is_empty());
        // Fresh censorship re-reported after expiry shows up again.
        s.post_update(c, &[r], SimTime::from_secs(101)).unwrap();
        let list = s.blocked_for_as(Asn(1), &ConfidenceFilter::default());
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].posted_at, SimTime::from_secs(101));
    }

    #[test]
    fn record_expiry() {
        let mut s = ServerDb::new(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        s.post_update(
            c,
            &[report("http://x.com/", 1, BlockingType::HttpDrop)],
            SimTime::ZERO,
        )
        .unwrap();
        let removed = s.expire_records(SimTime::from_secs(100), SimDuration::from_secs(50));
        assert_eq!(removed, 1);
        assert!(s
            .blocked_for_as(Asn(1), &ConfidenceFilter::default())
            .is_empty());
    }
}
