//! The server_DB front-end: registration, update ingestion, per-AS
//! downloads, voting, and deployment-study analytics (§4.2, §5,
//! Table 7).
//!
//! Storage lives in [`csaw_store`]: a sharded, internally-synchronized
//! [`StorageBackend`] (in-memory by default, JSONL write-ahead log when
//! the deployment needs restarts, or anything custom). This type is the
//! thin front-end over it — registration gating, the client set, and
//! the legacy `global.*` telemetry — and every method takes `&self`, so
//! one `ServerDb` can be shared across ingestion threads.
//!
//! Construction goes through [`ServerDbBuilder`] (salt, registrar
//! config, backend choice, shard count) — it is the only way to build a
//! server. Ingestion goes through [`ServerDb::ingest`] with a [`Batch`]
//! (build one with `Batch::new` or `Batch::from_wire`); reads go
//! through the fallible [`ServerDb::blocked_for_as`].

use crate::global::record::{GlobalRecord, Uuid};
use crate::global::voting::{ConfidenceFilter, Tally, VoteLedger};
use csaw_censor::blocking::{BlockingType, Stage};
use csaw_obs::metrics::{Counter, Gauge};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_store::{Batch, IngestReceipt, JsonlStore, ShardedStore, StorageBackend, StoreError};
use csaw_webproto::url::Url;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Registration failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistrationError {
    /// The risk-analysis engine flagged the attempt ("No CAPTCHA
    /// reCAPTCHA"'s adaptive gate, §5).
    RiskRejected,
    /// Too many registrations in the current window (automated
    /// fake-identity farming).
    RateLimited,
    /// The server could not be reached (socket transport only; the
    /// in-process server never returns this). Retrying later is
    /// reasonable — the gate never saw the attempt.
    Unavailable,
}

/// Update-posting failures.
///
/// Posting now fails with the store's unified [`StoreError`]; this
/// alias keeps the historical name working. What used to be
/// `PostError::Malformed` is [`StoreError::Wire`].
pub type PostError = StoreError;

/// Registration gate configuration.
#[derive(Debug, Clone, Copy)]
pub struct RegistrarConfig {
    /// Risk scores above this are rejected (0 = reject everyone,
    /// 1 = accept everyone).
    pub max_risk: f64,
    /// Maximum registrations per window.
    pub max_per_window: usize,
    /// Window length.
    pub window: SimDuration,
}

impl Default for RegistrarConfig {
    fn default() -> Self {
        RegistrarConfig {
            max_risk: 0.7,
            max_per_window: 20,
            window: SimDuration::from_secs(60),
        }
    }
}

/// Which storage backend a [`ServerDbBuilder`] should construct.
#[derive(Debug, Clone, Default)]
pub enum BackendChoice {
    /// The in-memory sharded store (default).
    #[default]
    Memory,
    /// The in-memory store behind an append-only JSONL write-ahead log
    /// at this path, replayed on build.
    JsonlLog(PathBuf),
    /// A caller-provided backend (shard count and latency options are
    /// the backend's own business).
    Custom(Arc<dyn StorageBackend>),
}

/// Builder for [`ServerDb`]: salt, registration gate, shard count, and
/// backend choice in one place.
///
/// ```
/// use csaw::global::{ServerDb, RegistrarConfig};
///
/// let server = ServerDb::builder(7)
///     .shards(8)
///     .registrar(RegistrarConfig::default())
///     .build()
///     .unwrap();
/// assert_eq!(server.store().shard_count(), 8);
/// ```
#[derive(Debug)]
pub struct ServerDbBuilder {
    salt: u64,
    registrar: RegistrarConfig,
    shards: usize,
    backend: BackendChoice,
    measure_ingest_latency: bool,
}

impl ServerDbBuilder {
    /// A builder with the default gate, 16 shards, and the in-memory
    /// backend.
    pub fn new(salt: u64) -> ServerDbBuilder {
        ServerDbBuilder {
            salt,
            registrar: RegistrarConfig::default(),
            shards: 16,
            backend: BackendChoice::Memory,
            measure_ingest_latency: false,
        }
    }

    /// Override the registration gate.
    pub fn registrar(mut self, cfg: RegistrarConfig) -> ServerDbBuilder {
        self.registrar = cfg;
        self
    }

    /// Stripe the store `n` ways (ignored for a custom backend).
    pub fn shards(mut self, n: usize) -> ServerDbBuilder {
        self.shards = n;
        self
    }

    /// Persist every mutation to a JSONL write-ahead log at `path`,
    /// replaying any existing log on build.
    pub fn jsonl_log(mut self, path: impl Into<PathBuf>) -> ServerDbBuilder {
        self.backend = BackendChoice::JsonlLog(path.into());
        self
    }

    /// Use a caller-provided backend.
    pub fn backend(mut self, backend: Arc<dyn StorageBackend>) -> ServerDbBuilder {
        self.backend = BackendChoice::Custom(backend);
        self
    }

    /// Record wall-clock per-batch ingest latency (off by default; wall
    /// clock breaks byte-identical metric snapshots, so only the scale
    /// harness turns this on).
    pub fn measure_ingest_latency(mut self, on: bool) -> ServerDbBuilder {
        self.measure_ingest_latency = on;
        self
    }

    /// Build the server. Zero shards or an unreadable/corrupt log are
    /// errors, not panics.
    pub fn build(self) -> Result<ServerDb, StoreError> {
        let backend: Arc<dyn StorageBackend> = match self.backend {
            BackendChoice::Memory => Arc::new(
                ShardedStore::new(self.shards)?.with_ingest_latency(self.measure_ingest_latency),
            ),
            BackendChoice::JsonlLog(path) => Arc::new(
                JsonlStore::open(&path, self.shards)?
                    .with_ingest_latency(self.measure_ingest_latency),
            ),
            BackendChoice::Custom(b) => b,
        };
        Ok(ServerDb::from_parts(self.salt, self.registrar, backend))
    }
}

/// Registration state (UUID counter + rate-limit window), serialized
/// behind one small mutex — registration is the cold path.
#[derive(Debug)]
struct RegState {
    uuid_counter: u64,
    window_start: SimTime,
    window_count: usize,
}

/// Pre-resolved legacy `global.*` metric handles (hot paths must not
/// take the registry mutex per batch).
#[derive(Debug)]
struct ServerMetrics {
    register_accepted: Arc<Counter>,
    register_risk_rejected: Arc<Counter>,
    register_rate_limited: Arc<Counter>,
    clients: Arc<Gauge>,
    post_batches: Arc<Counter>,
    post_accepted: Arc<Counter>,
    post_dropped: Arc<Counter>,
    post_unknown: Arc<Counter>,
    records: Arc<Gauge>,
    downloads: Arc<Counter>,
    downloads_served: Arc<Counter>,
    downloads_failed: Arc<Counter>,
    revocations: Arc<Counter>,
}

impl ServerMetrics {
    fn resolve() -> ServerMetrics {
        let reg = &csaw_obs::current().registry;
        ServerMetrics {
            register_accepted: reg.counter("global.register.accepted"),
            register_risk_rejected: reg.counter("global.register.risk_rejected"),
            register_rate_limited: reg.counter("global.register.rate_limited"),
            clients: reg.gauge("global.clients"),
            post_batches: reg.counter("global.post.batches"),
            post_accepted: reg.counter("global.post.reports_accepted"),
            post_dropped: reg.counter("global.post.reports_dropped"),
            post_unknown: reg.counter("global.post.unknown_client"),
            records: reg.gauge("global.records"),
            downloads: reg.counter("global.downloads"),
            downloads_served: reg.counter("global.downloads.records_served"),
            downloads_failed: reg.counter("global.downloads.failed"),
            revocations: reg.counter("global.revocations"),
        }
    }
}

/// The global measurement server (server_DB front-end + global_DB).
///
/// Shareable across threads: registration is mutex-serialized, the
/// client set is behind an `RwLock`, and everything else is the
/// backend's lock-striped state.
#[derive(Debug)]
pub struct ServerDb {
    salt: u64,
    registrar: RegistrarConfig,
    backend: Arc<dyn StorageBackend>,
    reg: Mutex<RegState>,
    clients: RwLock<HashSet<Uuid>>,
    updates_accepted: AtomicU64,
    m: ServerMetrics,
}

impl ServerDb {
    /// Start building a server with the given salt (determinism).
    pub fn builder(salt: u64) -> ServerDbBuilder {
        ServerDbBuilder::new(salt)
    }

    fn from_parts(
        salt: u64,
        registrar: RegistrarConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> ServerDb {
        ServerDb {
            salt,
            registrar,
            backend,
            reg: Mutex::new(RegState {
                uuid_counter: 0,
                window_start: SimTime::ZERO,
                window_count: 0,
            }),
            clients: RwLock::new(HashSet::new()),
            updates_accepted: AtomicU64::new(0),
            m: ServerMetrics::resolve(),
        }
    }

    /// The storage backend (shard counts, direct scans, flushing).
    pub fn store(&self) -> &dyn StorageBackend {
        self.backend.as_ref()
    }

    /// Register a new client. `risk_score` comes from the CAPTCHA/risk
    /// engine (0 = certainly human, 1 = certainly bot).
    pub fn register(&self, now: SimTime, risk_score: f64) -> Result<Uuid, RegistrationError> {
        let uuid = {
            let mut reg = self.reg.lock().unwrap();
            if now.duration_since(reg.window_start) >= self.registrar.window {
                reg.window_start = now;
                reg.window_count = 0;
            }
            if risk_score > self.registrar.max_risk {
                self.m.register_risk_rejected.inc();
                return Err(RegistrationError::RiskRejected);
            }
            if reg.window_count >= self.registrar.max_per_window {
                self.m.register_rate_limited.inc();
                return Err(RegistrationError::RateLimited);
            }
            reg.window_count += 1;
            reg.uuid_counter += 1;
            Uuid::derive(now, reg.uuid_counter, self.salt)
        };
        let mut clients = self.clients.write().unwrap();
        clients.insert(uuid);
        self.m.register_accepted.inc();
        self.m.clients.set(clients.len() as i64);
        Ok(uuid)
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.clients.read().unwrap().len()
    }

    /// Total updates accepted (Table 7's "No. of unique updates").
    pub fn updates_accepted(&self) -> u64 {
        self.updates_accepted.load(Ordering::Relaxed)
    }

    /// The single ingestion entry point: validate the client, hand the
    /// batch to the backend, account the receipt. Never panics on
    /// garbage — unknown clients and undecodable wire are error values,
    /// unsalvageable reports are counted in the receipt's `rejected`.
    pub fn ingest(&self, batch: Batch) -> Result<IngestReceipt, StoreError> {
        if !self.clients.read().unwrap().contains(&batch.client) {
            self.m.post_unknown.inc();
            return Err(StoreError::UnknownClient);
        }
        let receipt = self.backend.ingest(&batch)?;
        // Lands inside the client's report-post trace when one is active
        // (simulation: ingest runs on the poster's thread).
        csaw_obs::event!(
            "store.ingest",
            accepted = receipt.accepted as u64,
            rejected = receipt.rejected as u64
        );
        self.updates_accepted
            .fetch_add(receipt.accepted as u64, Ordering::Relaxed);
        self.m.post_batches.inc();
        self.m.post_accepted.add(receipt.accepted as u64);
        self.m.post_dropped.add(receipt.rejected as u64);
        self.m.records.set(self.backend.record_count() as i64);
        Ok(receipt)
    }

    /// The blocked-URL list for an AS, filtered by vote confidence —
    /// what clients download at initialization and on every sync.
    /// Served from the backend's per-shard snapshot caches.
    ///
    /// Fallible by design: backend unavailability (fault-injection
    /// windows, a remote store's outage) surfaces as an error instead
    /// of an empty list, so a client's sync can distinguish "nothing
    /// blocked" from "could not ask". The built-in in-memory backend
    /// never fails.
    pub fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError> {
        self.m.downloads.inc();
        match self.backend.blocked_for_as(asn, filter) {
            Ok(out) => {
                self.m.downloads_served.add(out.len() as u64);
                Ok(out)
            }
            Err(e) => {
                self.m.downloads_failed.inc();
                Err(e)
            }
        }
    }

    /// [`ServerDb::blocked_for_as`], unwrapped — a convenience for the
    /// figure binaries, whose in-memory backends cannot fail and whose
    /// plotting loops have no error story. Everything else should
    /// handle the `Result`.
    #[doc(hidden)]
    pub fn blocked_for_as_infallible(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Vec<GlobalRecord> {
        self.blocked_for_as(asn, filter)
            .expect("infallible backend promised by the caller")
    }

    /// Vote tally for a (URL, AS) — exposed for analytics.
    pub fn tally(&self, url: &str, asn: Asn) -> Tally {
        self.backend.tally(url, asn)
    }

    /// Evict a client and its votes (reputation enforcement, §5).
    pub fn revoke(&self, client: Uuid) {
        {
            let mut clients = self.clients.write().unwrap();
            if clients.remove(&client) {
                self.m.revocations.inc();
                self.m.clients.set(clients.len() as i64);
            }
        }
        self.backend.revoke(client);
    }

    /// Read access to the vote ledger (analytics, auditing).
    pub fn ledger(&self) -> &VoteLedger {
        self.backend.ledger()
    }

    /// Run a behavioral reputation audit and revoke every flagged client
    /// along with its records (§5's "revoke UUIDs of malicious users").
    /// The audit walks the ledger stripe by stripe — no global lock.
    pub fn audit_and_revoke(
        &self,
        cfg: &crate::global::reputation::ReputationConfig,
    ) -> Vec<crate::global::reputation::Flag> {
        let flags = crate::global::reputation::audit(self.backend.ledger(), cfg);
        for f in &flags {
            self.revoke(f.client);
            self.backend.remove_reporter_records(f.client);
        }
        if !flags.is_empty() {
            self.m.records.set(self.backend.record_count() as i64);
        }
        flags
    }

    /// Drop global records older than `max_age` (the global DB tracks
    /// *current* censorship; §4.4 churn).
    pub fn expire_records(&self, now: SimTime, max_age: SimDuration) -> usize {
        let removed = self.backend.expire_records(now, max_age);
        if removed > 0 {
            self.m.records.set(self.backend.record_count() as i64);
        }
        removed
    }

    /// Deployment-study analytics (Table 7).
    pub fn stats(&self) -> DeploymentStats {
        let mut domains = HashSet::new();
        let mut ases = HashSet::new();
        let mut types = HashSet::new();
        let mut dns_urls = HashSet::new();
        let mut tcp_urls = HashSet::new();
        let mut blockpage_urls = HashSet::new();
        let mut urls = HashSet::new();
        self.backend.for_each_record(&mut |r| {
            urls.insert(r.url.clone());
            ases.insert(r.asn);
            if let Ok(u) = Url::parse(&r.url) {
                domains.insert(u.host().registrable_domain());
            }
            for s in &r.stages {
                types.insert(*s);
                match s {
                    BlockingType::HttpBlockPageRedirect | BlockingType::HttpBlockPageInline => {
                        blockpage_urls.insert(r.url.clone());
                    }
                    BlockingType::IpDrop => {
                        tcp_urls.insert(r.url.clone());
                    }
                    _ if s.stage() == Stage::Dns => {
                        dns_urls.insert(r.url.clone());
                    }
                    _ => {}
                }
            }
        });
        DeploymentStats {
            clients: self.client_count(),
            unique_blocked_urls: urls.len(),
            unique_blocked_domains: domains.len(),
            unique_ases: ases.len(),
            distinct_blocking_types: types.len(),
            urls_dns_blocked: dns_urls.len(),
            urls_tcp_timeout: tcp_urls.len(),
            urls_block_page: blockpage_urls.len(),
            unique_updates: self.updates_accepted(),
        }
    }
}

/// The Table 7 aggregate view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentStats {
    /// Registered clients ("No. of users").
    pub clients: usize,
    /// Unique blocked URLs accessed.
    pub unique_blocked_urls: usize,
    /// Unique blocked domains accessed.
    pub unique_blocked_domains: usize,
    /// Unique ASes reporting.
    pub unique_ases: usize,
    /// Distinct blocking mechanisms observed.
    pub distinct_blocking_types: usize,
    /// URLs experiencing DNS blocking.
    pub urls_dns_blocked: usize,
    /// URLs experiencing TCP connection timeouts.
    pub urls_tcp_timeout: usize,
    /// URLs for which a block page was returned.
    pub urls_block_page: usize,
    /// Unique updates accepted.
    pub unique_updates: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::record::Report;

    /// A server with the default gate and in-memory backend.
    fn server(salt: u64) -> ServerDb {
        ServerDb::builder(salt)
            .build()
            .expect("default builder config is valid")
    }

    /// Test shorthand over the first-class `ingest`/`blocked_for_as`
    /// API: post parsed reports (returning the accepted count) and read
    /// a blocked list from the never-failing in-memory backend.
    trait ServerTestExt {
        fn post(&self, c: Uuid, reports: &[Report], now: SimTime) -> Result<usize, StoreError>;
        fn blocked(&self, asn: Asn, filter: &ConfidenceFilter) -> Vec<GlobalRecord>;
    }

    impl ServerTestExt for ServerDb {
        fn post(&self, c: Uuid, reports: &[Report], now: SimTime) -> Result<usize, StoreError> {
            self.ingest(Batch::new(c, reports.to_vec(), now))
                .map(|r| r.accepted)
        }
        fn blocked(&self, asn: Asn, filter: &ConfidenceFilter) -> Vec<GlobalRecord> {
            self.blocked_for_as(asn, filter)
                .expect("in-memory backend reads are infallible")
        }
    }

    fn report(url: &str, asn: u32, stage: BlockingType) -> Report {
        Report {
            url: url.into(),
            asn,
            measured_at_us: 123,
            stages: vec![stage],
        }
    }

    #[test]
    fn register_and_post_flow() {
        let s = server(7);
        let c = s.register(SimTime::from_secs(1), 0.1).unwrap();
        let n = s
            .post(
                c,
                &[report("http://x.com/", 17557, BlockingType::DnsHijack)],
                SimTime::from_secs(2),
            )
            .unwrap();
        assert_eq!(n, 1);
        let list = s.blocked(Asn(17557), &ConfidenceFilter::default());
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].url, "http://x.com/");
        assert_eq!(list[0].posted_at, SimTime::from_secs(2));
        assert_eq!(list[0].reporter, c);
        // Other ASes see nothing.
        assert!(s.blocked(Asn(1), &ConfidenceFilter::default()).is_empty());
    }

    #[test]
    fn unknown_client_rejected() {
        let s = server(7);
        let err = s.post(Uuid::from_raw(99), &[], SimTime::ZERO);
        assert_eq!(err, Err(StoreError::UnknownClient));
    }

    #[test]
    fn malformed_wire_rejected_and_garbage_urls_dropped() {
        let s = server(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        assert!(matches!(
            Batch::from_wire(c, "garbage", SimTime::ZERO),
            Err(StoreError::Wire(_))
        ));
        let n = s
            .post(
                c,
                &[
                    report("not a url", 1, BlockingType::HttpDrop),
                    report("http://ok.com/", 1, BlockingType::HttpDrop),
                ],
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn ingest_receipt_reports_both_sides() {
        let s = ServerDb::builder(7).shards(4).build().unwrap();
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        let receipt = s
            .ingest(Batch::new(
                c,
                vec![
                    report("http://ok.com/", 1, BlockingType::HttpDrop),
                    report("garbage", 1, BlockingType::HttpDrop),
                ],
                SimTime::ZERO,
            ))
            .unwrap();
        assert_eq!(
            receipt,
            IngestReceipt {
                accepted: 1,
                rejected: 1,
                rejected_indices: vec![1],
                deferred_indices: vec![],
            }
        );
        assert_eq!(s.updates_accepted(), 1);
    }

    #[test]
    fn risk_gate_and_rate_limit() {
        let s = ServerDb::builder(7)
            .registrar(RegistrarConfig {
                max_risk: 0.5,
                max_per_window: 2,
                window: SimDuration::from_secs(60),
            })
            .build()
            .unwrap();
        assert_eq!(
            s.register(SimTime::ZERO, 0.9),
            Err(RegistrationError::RiskRejected)
        );
        s.register(SimTime::ZERO, 0.1).unwrap();
        s.register(SimTime::ZERO, 0.1).unwrap();
        assert_eq!(
            s.register(SimTime::from_secs(1), 0.1),
            Err(RegistrationError::RateLimited)
        );
        // New window resets the budget.
        assert!(s.register(SimTime::from_secs(61), 0.1).is_ok());
        assert_eq!(s.client_count(), 3);
    }

    #[test]
    fn confidence_filter_hides_lone_spam() {
        let s = server(7);
        let honest1 = s.register(SimTime::ZERO, 0.0).unwrap();
        let honest2 = s.register(SimTime::ZERO, 0.0).unwrap();
        let spammer = s.register(SimTime::ZERO, 0.0).unwrap();
        for c in [honest1, honest2] {
            s.post(
                c,
                &[report("http://real.com/", 1, BlockingType::HttpDrop)],
                SimTime::ZERO,
            )
            .unwrap();
        }
        let fakes: Vec<Report> = (0..200)
            .map(|i| report(&format!("http://fake{i}.com/"), 1, BlockingType::HttpDrop))
            .collect();
        s.post(spammer, &fakes, SimTime::ZERO).unwrap();
        let strict = ConfidenceFilter::strict(2, 0.1);
        let visible = s.blocked(Asn(1), &strict);
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0].url, "http://real.com/");
        // Unfiltered view contains everything (for analytics).
        assert_eq!(s.blocked(Asn(1), &ConfidenceFilter::default()).len(), 201);
    }

    #[test]
    fn revocation_hides_reports() {
        let s = server(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        s.post(
            c,
            &[report("http://x.com/", 1, BlockingType::HttpDrop)],
            SimTime::ZERO,
        )
        .unwrap();
        s.revoke(c);
        let strict = ConfidenceFilter::strict(1, 0.01);
        assert!(s.blocked(Asn(1), &strict).is_empty());
        // And the client can no longer post.
        assert_eq!(
            s.post(c, &[], SimTime::ZERO),
            Err(StoreError::UnknownClient)
        );
    }

    #[test]
    fn stats_cover_table7_dimensions() {
        let s = server(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        s.post(
            c,
            &[
                report("http://a.foo.com/x", 1, BlockingType::DnsHijack),
                report("http://b.foo.com/", 1, BlockingType::IpDrop),
                report("http://bar.com/", 2, BlockingType::HttpBlockPageInline),
            ],
            SimTime::ZERO,
        )
        .unwrap();
        let st = s.stats();
        assert_eq!(st.clients, 1);
        assert_eq!(st.unique_blocked_urls, 3);
        assert_eq!(st.unique_blocked_domains, 2); // foo.com, bar.com
        assert_eq!(st.unique_ases, 2);
        assert_eq!(st.distinct_blocking_types, 3);
        assert_eq!(st.urls_dns_blocked, 1);
        assert_eq!(st.urls_tcp_timeout, 1);
        assert_eq!(st.urls_block_page, 1);
        assert_eq!(st.unique_updates, 3);
    }

    #[test]
    fn repost_after_expiry_restores_visibility() {
        let s = server(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        let r = report("http://x.com/", 1, BlockingType::HttpDrop);
        s.post(c, std::slice::from_ref(&r), SimTime::ZERO).unwrap();
        s.expire_records(SimTime::from_secs(100), SimDuration::from_secs(50));
        assert!(s.blocked(Asn(1), &ConfidenceFilter::default()).is_empty());
        // Fresh censorship re-reported after expiry shows up again.
        s.post(c, &[r], SimTime::from_secs(101)).unwrap();
        let list = s.blocked(Asn(1), &ConfidenceFilter::default());
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].posted_at, SimTime::from_secs(101));
    }

    #[test]
    fn record_expiry() {
        let s = server(7);
        let c = s.register(SimTime::ZERO, 0.0).unwrap();
        s.post(
            c,
            &[report("http://x.com/", 1, BlockingType::HttpDrop)],
            SimTime::ZERO,
        )
        .unwrap();
        let removed = s.expire_records(SimTime::from_secs(100), SimDuration::from_secs(50));
        assert_eq!(removed, 1);
        assert!(s.blocked(Asn(1), &ConfidenceFilter::default()).is_empty());
    }

    #[test]
    fn builder_jsonl_backend_survives_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("csaw-server-wal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let c;
        {
            let s = ServerDb::builder(7).jsonl_log(&path).build().unwrap();
            c = s.register(SimTime::ZERO, 0.0).unwrap();
            s.post(
                c,
                &[report("http://x.com/", 1, BlockingType::HttpDrop)],
                SimTime::from_secs(2),
            )
            .unwrap();
            s.store().flush().unwrap();
        }
        // Reopening replays the log: records and votes are back. (The
        // client set is front-end state; re-registration is separate.)
        let s = ServerDb::builder(7).jsonl_log(&path).build().unwrap();
        assert_eq!(s.store().record_count(), 1);
        assert_eq!(s.tally("http://x.com/", Asn(1)).n, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_across_threads_with_plain_refs() {
        let s = ServerDb::builder(7).shards(4).build().unwrap();
        let mut uuids = Vec::new();
        for i in 0..4u64 {
            uuids.push(s.register(SimTime::from_secs(i), 0.0).unwrap());
        }
        std::thread::scope(|scope| {
            for (t, &c) in uuids.iter().enumerate() {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        s.post(
                            c,
                            &[report(
                                &format!("http://t{t}-{i}.com/"),
                                1,
                                BlockingType::HttpDrop,
                            )],
                            SimTime::from_secs(i),
                        )
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(s.updates_accepted(), 200);
        assert_eq!(s.store().record_count(), 200);
        assert_eq!(s.blocked(Asn(1), &ConfidenceFilter::default()).len(), 200);
    }
}
