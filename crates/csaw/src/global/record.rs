//! Global database records and the report wire format (Tables 3 & 4).
//!
//! The types now live in [`csaw_store`] (the sharded global store needs
//! them without depending on this crate); this module re-exports them
//! under their historical paths. By design **no personally identifiable
//! information is stored** — there is no IP/identity field anywhere in
//! these types, which is the paper's §5 privacy property enforced
//! structurally rather than by policy.

pub use csaw_store::{GlobalRecord, Report, Uuid, WireError};
