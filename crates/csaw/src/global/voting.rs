//! The voting mechanism (§5 "Interfering with C-Saw measurements").
//!
//! The implementation now lives in [`csaw_store`]: the ledger is
//! lock-striped for concurrent ingestion (clients and keys sharded
//! separately, an inverted voter index for `O(voters)` tallies, and a
//! vote epoch that snapshot caches key on). This module re-exports the
//! types under their historical paths; the semantics are unchanged —
//! each client holds one unit of vote spread evenly over the `d`
//! blocked URLs it currently reports, and per (URL, AS) the server
//! keeps the vote sum `s` and distinct-voter count `n`.

pub use csaw_store::{ConfidenceFilter, Tally, VoteLedger};
