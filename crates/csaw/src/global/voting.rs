//! The voting mechanism (§5 "Interfering with C-Saw measurements").
//!
//! Each client holds **one unit of vote**, spread evenly over the `d`
//! blocked URLs it currently reports: `v_{i,j,k} = 1/d` for blocked URL
//! `j` from client AS `k`. The server keeps, per (URL, AS):
//!
//! - `s_{j,k}`: the sum of votes, and
//! - `n_{j,k}`: the number of distinct clients voting,
//!
//! as robustness estimates. Consumers distrust entries with large `n`
//! but small `s` (vote mass diluted over huge report sets — the signature
//! of spamming clients) and entries with small `n` (too few independent
//! witnesses). Inspired by PageRank, per the paper.

use crate::global::record::Uuid;
use csaw_simnet::topology::Asn;
use std::collections::{HashMap, HashSet};

/// Aggregated vote state for one (URL, AS).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Tally {
    /// Sum of votes, `s_{j,k}`.
    pub s: f64,
    /// Distinct voting clients, `n_{j,k}`.
    pub n: usize,
}

impl Tally {
    /// Average vote mass per voter (`s/n`), 0 when nobody voted.
    pub fn avg_vote(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.s / self.n as f64
        }
    }
}

/// Confidence thresholds for consuming crowdsourced measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceFilter {
    /// Minimum distinct voters.
    pub min_clients: usize,
    /// Minimum average vote per voter — guards against vote dilution by
    /// clients spraying thousands of URLs.
    pub min_avg_vote: f64,
}

impl Default for ConfidenceFilter {
    fn default() -> Self {
        ConfidenceFilter {
            min_clients: 1,
            min_avg_vote: 0.0,
        }
    }
}

impl ConfidenceFilter {
    /// A stricter filter for adversarial settings.
    pub fn strict(min_clients: usize, min_avg_vote: f64) -> ConfidenceFilter {
        ConfidenceFilter {
            min_clients,
            min_avg_vote,
        }
    }

    /// Does a tally pass this filter?
    pub fn passes(&self, t: &Tally) -> bool {
        t.n >= self.min_clients && (self.min_avg_vote <= 0.0 || t.avg_vote() >= self.min_avg_vote)
    }
}

/// The server-side vote ledger.
#[derive(Debug, Clone, Default)]
pub struct VoteLedger {
    /// Each client's current vote targets ((URL, AS) pairs).
    client_votes: HashMap<Uuid, HashSet<(String, Asn)>>,
}

impl VoteLedger {
    /// An empty ledger.
    pub fn new() -> VoteLedger {
        VoteLedger::default()
    }

    /// Replace a client's reported blocked set. The client's single unit
    /// of vote is re-spread over the new set.
    pub fn set_client_report(
        &mut self,
        client: Uuid,
        urls: impl IntoIterator<Item = (String, Asn)>,
    ) {
        let set: HashSet<(String, Asn)> = urls.into_iter().collect();
        if set.is_empty() {
            self.client_votes.remove(&client);
        } else {
            self.client_votes.insert(client, set);
        }
    }

    /// Add URLs to a client's reported set (incremental reporting),
    /// re-spreading its vote.
    pub fn add_client_urls(&mut self, client: Uuid, urls: impl IntoIterator<Item = (String, Asn)>) {
        let entry = self.client_votes.entry(client).or_default();
        entry.extend(urls);
    }

    /// Revoke a client entirely (malicious-user eviction, §5).
    pub fn revoke(&mut self, client: Uuid) {
        self.client_votes.remove(&client);
    }

    /// Current tally for a (URL, AS).
    pub fn tally(&self, url: &str, asn: Asn) -> Tally {
        let key = (url.to_string(), asn);
        let mut t = Tally::default();
        for votes in self.client_votes.values() {
            if votes.contains(&key) {
                t.n += 1;
                t.s += 1.0 / votes.len() as f64;
            }
        }
        t
    }

    /// Total vote mass a client currently spends (1.0 if it reports
    /// anything, 0.0 otherwise) — the conservation invariant.
    pub fn client_vote_mass(&self, client: Uuid) -> f64 {
        match self.client_votes.get(&client) {
            None => 0.0,
            Some(set) => set.len() as f64 * (1.0 / set.len() as f64),
        }
    }

    /// Number of clients currently voting.
    pub fn voter_count(&self) -> usize {
        self.client_votes.len()
    }

    /// Per-client report-set sizes (reputation auditing input).
    pub fn client_report_sizes(&self) -> Vec<(Uuid, usize)> {
        let mut out: Vec<(Uuid, usize)> = self
            .client_votes
            .iter()
            .map(|(c, set)| (*c, set.len()))
            .collect();
        out.sort_by_key(|(c, _)| *c);
        out
    }

    /// The (URL, AS) pairs a client currently reports.
    pub fn client_urls(&self, client: Uuid) -> Vec<(String, Asn)> {
        let mut out: Vec<(String, Asn)> = self
            .client_votes
            .get(&client)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uuid(n: u64) -> Uuid {
        Uuid::from_raw(n)
    }

    #[test]
    fn vote_spreads_evenly() {
        let mut l = VoteLedger::new();
        l.set_client_report(
            uuid(1),
            [
                ("http://a.com/".to_string(), Asn(10)),
                ("http://b.com/".to_string(), Asn(10)),
            ],
        );
        let ta = l.tally("http://a.com/", Asn(10));
        assert_eq!(ta.n, 1);
        assert!((ta.s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn vote_mass_conserved() {
        let mut l = VoteLedger::new();
        for d in [1usize, 3, 10, 100] {
            let urls: Vec<(String, Asn)> = (0..d)
                .map(|i| (format!("http://site{i}.com/"), Asn(1)))
                .collect();
            l.set_client_report(uuid(7), urls);
            assert!((l.client_vote_mass(uuid(7)) - 1.0).abs() < 1e-9, "d={d}");
        }
    }

    #[test]
    fn many_honest_clients_beat_one_spammer() {
        let mut l = VoteLedger::new();
        // 10 honest clients each report the same 2 genuinely blocked URLs.
        for c in 0..10 {
            l.set_client_report(
                uuid(c),
                [
                    ("http://blocked-1.com/".to_string(), Asn(1)),
                    ("http://blocked-2.com/".to_string(), Asn(1)),
                ],
            );
        }
        // One spammer reports 1000 fake URLs.
        let fakes: Vec<(String, Asn)> = (0..1000)
            .map(|i| (format!("http://fake{i}.com/"), Asn(1)))
            .collect();
        l.set_client_report(uuid(99), fakes);

        let honest = l.tally("http://blocked-1.com/", Asn(1));
        let fake = l.tally("http://fake1.com/", Asn(1));
        assert_eq!(honest.n, 10);
        assert!((honest.s - 5.0).abs() < 1e-9);
        assert_eq!(fake.n, 1);
        assert!(fake.s < 0.01);
        // The paper's consumption rule separates them cleanly.
        let filter = ConfidenceFilter::strict(2, 0.1);
        assert!(filter.passes(&honest));
        assert!(!filter.passes(&fake));
    }

    #[test]
    fn vote_dilution_signature() {
        // Colluding clients each spraying many URLs have large n but tiny
        // average vote.
        let mut l = VoteLedger::new();
        for c in 0..20 {
            let urls: Vec<(String, Asn)> = (0..500)
                .map(|i| (format!("http://fake{i}.com/"), Asn(1)))
                .collect();
            l.set_client_report(uuid(c), urls);
        }
        let t = l.tally("http://fake0.com/", Asn(1));
        assert_eq!(t.n, 20);
        assert!(t.avg_vote() < 0.01);
        assert!(!ConfidenceFilter::strict(2, 0.1).passes(&t));
    }

    #[test]
    fn revocation_removes_influence() {
        let mut l = VoteLedger::new();
        l.set_client_report(uuid(1), [("http://x.com/".to_string(), Asn(1))]);
        assert_eq!(l.tally("http://x.com/", Asn(1)).n, 1);
        l.revoke(uuid(1));
        assert_eq!(l.tally("http://x.com/", Asn(1)).n, 0);
        assert_eq!(l.voter_count(), 0);
    }

    #[test]
    fn incremental_reports_respread() {
        let mut l = VoteLedger::new();
        l.add_client_urls(uuid(1), [("http://a.com/".to_string(), Asn(1))]);
        assert!((l.tally("http://a.com/", Asn(1)).s - 1.0).abs() < 1e-9);
        l.add_client_urls(uuid(1), [("http://b.com/".to_string(), Asn(1))]);
        assert!((l.tally("http://a.com/", Asn(1)).s - 0.5).abs() < 1e-9);
        assert!((l.tally("http://b.com/", Asn(1)).s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn per_as_tallies_are_separate() {
        let mut l = VoteLedger::new();
        l.set_client_report(uuid(1), [("http://x.com/".to_string(), Asn(1))]);
        assert_eq!(l.tally("http://x.com/", Asn(2)).n, 0);
    }
}
