//! Behavioral reputation enforcement (§5).
//!
//! The paper sketches it: "one can also design schemes, similar to
//! reputation systems, for identifying individual malicious users or
//! groups based on distinctness in behavioral patterns and revoke UUIDs
//! of malicious users." This module implements that scheme over the vote
//! ledger's observable behaviour:
//!
//! - **Volume anomaly**: a client reporting vastly more blocked URLs than
//!   the population's median is either a crawler or a spammer — honest
//!   users report what they browse.
//! - **Corroboration deficit**: honest users browse popular censored
//!   content, so most of their reports are independently confirmed by
//!   other clients. A fabricated URL set is corroborated by nobody
//!   (or only by the same colluding clique, which the volume test
//!   catches member-by-member).
//!
//! Clients flagged on *both* axes are revoked; requiring both keeps
//! eager early reporters (lots of URLs, well corroborated) and niche
//! browsers (few URLs, weak corroboration) safe.

use crate::global::record::Uuid;
use crate::global::voting::VoteLedger;

/// Reputation thresholds.
#[derive(Debug, Clone, Copy)]
pub struct ReputationConfig {
    /// A client is volume-anomalous if it reports more than
    /// `volume_ratio` × the population median URL count.
    pub volume_ratio: f64,
    /// A client is corroboration-deficient if fewer than this fraction of
    /// its URLs have at least `min_witnesses` reporters.
    pub min_corroborated_fraction: f64,
    /// Witnesses required for a URL to count as corroborated.
    pub min_witnesses: usize,
}

impl Default for ReputationConfig {
    fn default() -> Self {
        ReputationConfig {
            volume_ratio: 5.0,
            min_corroborated_fraction: 0.25,
            min_witnesses: 2,
        }
    }
}

/// A flagged client with the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Flag {
    /// The client.
    pub client: Uuid,
    /// How many URLs it reports.
    pub url_count: usize,
    /// Population median URL count at audit time.
    pub median_count: f64,
    /// Fraction of its URLs corroborated by other clients.
    pub corroborated_fraction: f64,
}

/// Audit the ledger and return the clients that should be revoked.
pub fn audit(ledger: &VoteLedger, cfg: &ReputationConfig) -> Vec<Flag> {
    let clients = ledger.client_report_sizes();
    if clients.len() < 3 {
        // Too small a population to define "normal" behaviour.
        return Vec::new();
    }
    let mut counts: Vec<usize> = clients.iter().map(|(_, n)| *n).collect();
    counts.sort_unstable();
    let median = if counts.len() % 2 == 1 {
        counts[counts.len() / 2] as f64
    } else {
        (counts[counts.len() / 2 - 1] + counts[counts.len() / 2]) as f64 / 2.0
    };
    let mut flags = Vec::new();
    for (client, url_count) in clients {
        if (url_count as f64) <= cfg.volume_ratio * median.max(1.0) {
            continue;
        }
        // Volume-anomalous: check corroboration.
        let urls = ledger.client_urls(client);
        if urls.is_empty() {
            continue;
        }
        let corroborated = urls
            .iter()
            .filter(|(u, a)| ledger.tally(u, *a).n >= cfg.min_witnesses)
            .count();
        let frac = corroborated as f64 / urls.len() as f64;
        if frac < cfg.min_corroborated_fraction {
            flags.push(Flag {
                client,
                url_count,
                median_count: median,
                corroborated_fraction: frac,
            });
        }
    }
    flags.sort_by_key(|f| f.client);
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_simnet::topology::Asn;

    fn uuid(n: u64) -> Uuid {
        Uuid::from_raw(n)
    }

    fn honest_population(ledger: &VoteLedger, n_clients: u64, shared_urls: usize) {
        for c in 0..n_clients {
            let urls: Vec<(String, Asn)> = (0..shared_urls)
                .map(|i| (format!("http://popular-{i}.example/"), Asn(1)))
                .collect();
            ledger.set_client_report(uuid(c), urls);
        }
    }

    #[test]
    fn honest_population_unflagged() {
        let l = VoteLedger::new();
        honest_population(&l, 20, 10);
        assert!(audit(&l, &ReputationConfig::default()).is_empty());
    }

    #[test]
    fn spammer_flagged_and_evidence_recorded() {
        let l = VoteLedger::new();
        honest_population(&l, 20, 10);
        let fakes: Vec<(String, Asn)> = (0..500)
            .map(|i| (format!("http://fake-{i}.example/"), Asn(1)))
            .collect();
        l.set_client_report(uuid(999), fakes);
        let flags = audit(&l, &ReputationConfig::default());
        assert_eq!(flags.len(), 1);
        let f = &flags[0];
        assert_eq!(f.client, uuid(999));
        assert_eq!(f.url_count, 500);
        assert!((f.median_count - 10.0).abs() < 1e-9);
        assert!(f.corroborated_fraction < 0.01);
    }

    #[test]
    fn eager_but_corroborated_reporter_safe() {
        let l = VoteLedger::new();
        honest_population(&l, 20, 10);
        // A power user reports 80 URLs — but they're all popular censored
        // URLs that at least one other client also reports.
        let mut urls: Vec<(String, Asn)> = (0..80)
            .map(|i| (format!("http://long-tail-{i}.example/"), Asn(1)))
            .collect();
        // One witness each from scattered second reporters.
        for (i, (u, a)) in urls.iter().enumerate() {
            l.add_client_urls(uuid(100 + (i % 5) as u64), [(u.clone(), *a)]);
        }
        l.set_client_report(uuid(42), urls.drain(..));
        let flags = audit(&l, &ReputationConfig::default());
        assert!(
            flags.iter().all(|f| f.client != uuid(42)),
            "corroborated power user must not be flagged: {flags:?}"
        );
    }

    #[test]
    fn colluding_clique_caught_member_by_member() {
        let l = VoteLedger::new();
        honest_population(&l, 30, 8);
        // Five colluders each spray the same 400 fakes: they corroborate
        // each other (n = 5 per fake), but every member is volume-
        // anomalous AND... corroborated. The volume test alone flags
        // them; corroboration comes from the clique, so tighten
        // min_witnesses above clique size for this audit.
        for c in 0..5 {
            let fakes: Vec<(String, Asn)> = (0..400)
                .map(|i| (format!("http://clique-{i}.example/"), Asn(1)))
                .collect();
            l.set_client_report(uuid(500 + c), fakes);
        }
        let cfg = ReputationConfig {
            min_witnesses: 6, // above the clique size
            ..ReputationConfig::default()
        };
        let flags = audit(&l, &cfg);
        assert_eq!(flags.len(), 5, "{flags:?}");
    }

    #[test]
    fn tiny_population_is_never_audited() {
        let l = VoteLedger::new();
        l.set_client_report(uuid(1), [("http://x.example/".to_string(), Asn(1))]);
        let fakes: Vec<(String, Asn)> = (0..900)
            .map(|i| (format!("http://f{i}.example/"), Asn(1)))
            .collect();
        l.set_client_report(uuid(2), fakes);
        assert!(audit(&l, &ReputationConfig::default()).is_empty());
    }
}
