//! The global database and measurement server (§4.2, §5).
//!
//! Storage (records, voting, sharding, persistence) lives in
//! [`csaw_store`]; this module hosts the server front-end plus the
//! collection tier and reputation auditing, and re-exports the store
//! types under their historical paths.

pub mod collectors;
pub mod record;
pub mod remote;
pub mod reputation;
pub mod server;
pub mod voting;

pub use collectors::{Collector, CollectorSet, SubmitError, SubmitReceipt};
pub use csaw_store::{Batch, IngestReceipt, JsonlStore, ShardedStore, StorageBackend, StoreError};
pub use record::{GlobalRecord, Report, Uuid, WireError};
pub use remote::{GlobalApi, RemoteDb};
pub use reputation::{audit, Flag, ReputationConfig};
pub use server::{
    BackendChoice, DeploymentStats, PostError, RegistrarConfig, RegistrationError, ServerDb,
    ServerDbBuilder,
};
pub use voting::{ConfidenceFilter, Tally, VoteLedger};
