//! The global database and measurement server (§4.2, §5).

pub mod collectors;
pub mod record;
pub mod reputation;
pub mod server;
pub mod voting;

pub use collectors::{Collector, CollectorSet, SubmitError, SubmitReceipt};
pub use record::{GlobalRecord, Report, Uuid};
pub use reputation::{audit, Flag, ReputationConfig};
pub use server::{DeploymentStats, PostError, RegistrarConfig, RegistrationError, ServerDb};
pub use voting::{ConfidenceFilter, Tally, VoteLedger};
