//! Local database records — Table 3 of the paper.

use csaw_censor::blocking::BlockingType;
use csaw_obs::json::JsonValue;
use csaw_simnet::time::SimTime;
use csaw_simnet::topology::Asn;
use csaw_webproto::url::Url;

/// Blocking status of a URL (Table 3's `Status` field). `NotMeasured` is
/// never stored — it is what a lookup reports when no (live) record
/// exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Measured and found blocked.
    Blocked,
    /// Measured and found reachable.
    NotBlocked,
    /// Never measured, or the record expired.
    NotMeasured,
}

impl Status {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Status::Blocked => "Blocked",
            Status::NotBlocked => "NotBlocked",
            Status::NotMeasured => "NotMeasured",
        }
    }

    /// Inverse of [`Status::name`].
    pub fn from_name(s: &str) -> Option<Status> {
        match s {
            "Blocked" => Some(Status::Blocked),
            "NotBlocked" => Some(Status::NotBlocked),
            "NotMeasured" => Some(Status::NotMeasured),
            _ => None,
        }
    }
}

/// One record of the local database (Table 3): the URL (the index), the
/// AS the measurement was made from, the measurement time `T_m`, the
/// status, the blocking mechanism observed at each stage (multi-stage
/// blocking keeps several), and whether this record has been posted to
/// the global DB.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalRecord {
    /// The measured URL.
    pub url: Url,
    /// AS number at measurement time.
    pub asn: Asn,
    /// When the URL was last measured (`T_m`).
    pub measured_at: SimTime,
    /// Blocked or not (never `NotMeasured` inside a stored record).
    pub status: Status,
    /// Stage-1..k blocking mechanisms observed.
    pub stages: Vec<BlockingType>,
    /// Has the latest update been posted to the global DB?
    pub global_posted: bool,
}

impl LocalRecord {
    /// A blocked-URL record.
    pub fn blocked(url: Url, asn: Asn, now: SimTime, stages: Vec<BlockingType>) -> LocalRecord {
        debug_assert!(!stages.is_empty(), "blocked records carry mechanisms");
        LocalRecord {
            url,
            asn,
            measured_at: now,
            status: Status::Blocked,
            stages,
            global_posted: false,
        }
    }

    /// A reachable-URL record.
    pub fn not_blocked(url: Url, asn: Asn, now: SimTime) -> LocalRecord {
        LocalRecord {
            url,
            asn,
            measured_at: now,
            status: Status::NotBlocked,
            stages: Vec::new(),
            // Only blocked URLs are ever posted; mark as posted so this
            // never shows up in the pending queue.
            global_posted: true,
        }
    }

    /// Is the record live at `now`, given the configured TTL?
    pub fn is_live(&self, now: SimTime, ttl: csaw_simnet::time::SimDuration) -> bool {
        now.duration_since(self.measured_at) < ttl
    }

    /// Does any recorded stage operate below HTTP (DNS/IP/TLS)? Those
    /// mechanisms key on the host, so the record aggregates to the base
    /// URL (§4.4 aggregation rule 2).
    pub fn has_host_level_stage(&self) -> bool {
        use csaw_censor::blocking::Stage;
        self.stages
            .iter()
            .any(|s| matches!(s.stage(), Stage::Dns | Stage::Ip | Stage::Tls))
    }

    /// Encode for persistence (the local DB's restart snapshot).
    pub fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::obj();
        v.set("url", self.url.to_string());
        v.set("asn", self.asn.0);
        v.set("measured_at_us", self.measured_at.as_micros());
        v.set("status", self.status.name());
        v.set(
            "stages",
            self.stages
                .iter()
                .map(|s| JsonValue::from(s.name()))
                .collect::<Vec<_>>(),
        );
        v.set("global_posted", self.global_posted);
        v
    }

    /// Decode a persisted record; `None` on any malformed field.
    pub fn from_json(v: &JsonValue) -> Option<LocalRecord> {
        let url = Url::parse(v.get("url")?.as_str()?).ok()?;
        let asn = Asn(v.get("asn")?.as_u64()? as u32);
        let measured_at = SimTime::from_micros(v.get("measured_at_us")?.as_u64()?);
        let status = Status::from_name(v.get("status")?.as_str()?)?;
        let stages = v
            .get("stages")?
            .as_arr()?
            .iter()
            .map(|s| s.as_str().and_then(BlockingType::from_name))
            .collect::<Option<Vec<_>>>()?;
        let global_posted = v.get("global_posted")?.as_bool()?;
        Some(LocalRecord {
            url,
            asn,
            measured_at,
            status,
            stages,
            global_posted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_simnet::time::SimDuration;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn liveness_window() {
        let r = LocalRecord::not_blocked(url("http://a.com/"), Asn(1), SimTime::from_secs(100));
        let ttl = SimDuration::from_secs(50);
        assert!(r.is_live(SimTime::from_secs(100), ttl));
        assert!(r.is_live(SimTime::from_secs(149), ttl));
        assert!(!r.is_live(SimTime::from_secs(150), ttl));
    }

    #[test]
    fn host_level_stage_detection() {
        let r = LocalRecord::blocked(
            url("http://a.com/x"),
            Asn(1),
            SimTime::ZERO,
            vec![BlockingType::HttpBlockPageRedirect],
        );
        assert!(!r.has_host_level_stage());
        let r = LocalRecord::blocked(
            url("http://a.com/x"),
            Asn(1),
            SimTime::ZERO,
            vec![BlockingType::DnsHijack, BlockingType::HttpDrop],
        );
        assert!(r.has_host_level_stage());
    }

    #[test]
    fn not_blocked_records_never_pending() {
        let r = LocalRecord::not_blocked(url("http://a.com/"), Asn(1), SimTime::ZERO);
        assert!(r.global_posted);
        assert_eq!(r.status, Status::NotBlocked);
    }
}
