//! A per-host path trie with longest-prefix matching.
//!
//! §4.4 of the paper: "Considering cases (b) and (c) collectively requires
//! longest prefix matching to find the correct status of a derived URL
//! that is blocked." Records live at path-segment granularity; a lookup
//! returns the most specific record on the query's path.

use crate::local::record::LocalRecord;
use csaw_obs::json::JsonValue;
use std::collections::HashMap;

/// One trie node: an optional record at this path plus children by
/// segment.
#[derive(Debug, Clone, Default)]
pub struct PathTrie {
    record: Option<LocalRecord>,
    children: HashMap<String, PathTrie>,
}

impl PathTrie {
    /// An empty trie.
    pub fn new() -> PathTrie {
        PathTrie::default()
    }

    /// Insert (or replace) a record at the given path segments.
    pub fn insert(&mut self, segments: &[String], record: LocalRecord) {
        let mut node = self;
        for seg in segments {
            node = node.children.entry(seg.clone()).or_default();
        }
        node.record = Some(record);
    }

    /// The record exactly at the given path, if any.
    pub fn get(&self, segments: &[String]) -> Option<&LocalRecord> {
        let mut node = self;
        for seg in segments {
            node = node.children.get(seg)?;
        }
        node.record.as_ref()
    }

    /// Mutable access to the record exactly at the given path.
    pub fn get_mut(&mut self, segments: &[String]) -> Option<&mut LocalRecord> {
        let mut node = self;
        for seg in segments {
            node = node.children.get_mut(seg)?;
        }
        node.record.as_mut()
    }

    /// Longest-prefix match: the most specific record whose path is a
    /// prefix (segment-wise) of the query.
    pub fn lpm(&self, segments: &[String]) -> Option<&LocalRecord> {
        let mut best = self.record.as_ref();
        let mut node = self;
        for seg in segments {
            match node.children.get(seg) {
                Some(child) => {
                    node = child;
                    if node.record.is_some() {
                        best = node.record.as_ref();
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Remove the record exactly at the given path. Returns it if present.
    /// Empty branches are pruned.
    pub fn remove(&mut self, segments: &[String]) -> Option<LocalRecord> {
        fn rec(node: &mut PathTrie, segs: &[String]) -> (Option<LocalRecord>, bool) {
            if segs.is_empty() {
                let r = node.record.take();
                let prune = node.children.is_empty();
                return (r, prune);
            }
            let Some(child) = node.children.get_mut(&segs[0]) else {
                return (None, false);
            };
            let (r, prune_child) = rec(child, &segs[1..]);
            if prune_child {
                node.children.remove(&segs[0]);
            }
            let prune_me = node.record.is_none() && node.children.is_empty();
            (r, prune_me)
        }
        rec(self, segments).0
    }

    /// Remove every record satisfying the predicate (anywhere in the
    /// trie); returns how many were removed. Empty branches are pruned.
    pub fn retain<F>(&mut self, keep: F) -> usize
    where
        F: Fn(&LocalRecord) -> bool,
    {
        fn rec<F: Fn(&LocalRecord) -> bool>(node: &mut PathTrie, keep: &F) -> usize {
            let mut removed = 0;
            if let Some(r) = &node.record {
                if !keep(r) {
                    node.record = None;
                    removed += 1;
                }
            }
            let mut dead = Vec::new();
            for (seg, child) in node.children.iter_mut() {
                removed += rec(child, keep);
                if child.record.is_none() && child.children.is_empty() {
                    dead.push(seg.clone());
                }
            }
            for seg in dead {
                node.children.remove(&seg);
            }
            removed
        }
        rec(self, &keep)
    }

    /// Number of records in the trie.
    pub fn len(&self) -> usize {
        let mut n = usize::from(self.record.is_some());
        for child in self.children.values() {
            n += child.len();
        }
        n
    }

    /// True if no records exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every record.
    pub fn for_each<'a, F>(&'a self, f: &mut F)
    where
        F: FnMut(&'a LocalRecord),
    {
        if let Some(r) = &self.record {
            f(r);
        }
        for child in self.children.values() {
            child.for_each(f);
        }
    }

    /// Visit every record mutably.
    pub fn for_each_mut<F>(&mut self, f: &mut F)
    where
        F: FnMut(&mut LocalRecord),
    {
        if let Some(r) = &mut self.record {
            f(r);
        }
        for child in self.children.values_mut() {
            child.for_each_mut(f);
        }
    }

    /// Encode for persistence: `{"record": ..., "children": {seg: trie}}`.
    /// Children serialize in sorted-segment order, so output is
    /// deterministic regardless of insertion order.
    pub fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::obj();
        match &self.record {
            Some(r) => v.set("record", r.to_json()),
            None => v.set("record", JsonValue::Null),
        }
        let mut children = JsonValue::obj();
        for (seg, child) in &self.children {
            children.set(seg, child.to_json());
        }
        v.set("children", children);
        v
    }

    /// Decode a persisted trie; `None` on any malformed node.
    pub fn from_json(v: &JsonValue) -> Option<PathTrie> {
        let record = match v.get("record")? {
            JsonValue::Null => None,
            r => Some(LocalRecord::from_json(r)?),
        };
        let mut children = HashMap::new();
        for (seg, child) in v.get("children")?.as_obj()? {
            children.insert(seg.clone(), PathTrie::from_json(child)?);
        }
        Some(PathTrie { record, children })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::record::Status;
    use csaw_simnet::time::SimTime;
    use csaw_simnet::topology::Asn;
    use csaw_webproto::url::Url;

    fn rec(path: &str, status: Status) -> LocalRecord {
        let url = Url::parse(&format!("http://host.example{path}")).unwrap();
        match status {
            Status::Blocked => LocalRecord::blocked(
                url,
                Asn(1),
                SimTime::ZERO,
                vec![csaw_censor::BlockingType::HttpDrop],
            ),
            _ => LocalRecord::not_blocked(url, Asn(1), SimTime::ZERO),
        }
    }

    fn segs(path: &str) -> Vec<String> {
        path.split('/')
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect()
    }

    #[test]
    fn exact_and_lpm() {
        let mut t = PathTrie::new();
        t.insert(&segs("/"), rec("/", Status::NotBlocked));
        t.insert(&segs("/banned"), rec("/banned", Status::Blocked));
        // Exact.
        assert_eq!(t.get(&segs("/banned")).unwrap().status, Status::Blocked);
        assert_eq!(t.get(&segs("/")).unwrap().status, Status::NotBlocked);
        assert!(t.get(&segs("/other")).is_none());
        // LPM: deeper paths inherit the most specific ancestor.
        assert_eq!(
            t.lpm(&segs("/banned/page.html")).unwrap().status,
            Status::Blocked
        );
        assert_eq!(
            t.lpm(&segs("/other/page.html")).unwrap().status,
            Status::NotBlocked
        );
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = PathTrie::new();
        t.insert(&segs("/"), rec("/", Status::Blocked));
        t.insert(&segs("/a/b"), rec("/a/b", Status::NotBlocked));
        assert_eq!(t.lpm(&segs("/a/b/c")).unwrap().status, Status::NotBlocked);
        assert_eq!(t.lpm(&segs("/a")).unwrap().status, Status::Blocked);
    }

    #[test]
    fn lpm_none_when_no_ancestor() {
        let mut t = PathTrie::new();
        t.insert(&segs("/deep/only"), rec("/deep/only", Status::Blocked));
        assert!(t.lpm(&segs("/elsewhere")).is_none());
        assert!(t.lpm(&[]).is_none());
    }

    #[test]
    fn remove_prunes_branches() {
        let mut t = PathTrie::new();
        t.insert(&segs("/a/b/c"), rec("/a/b/c", Status::Blocked));
        assert_eq!(t.len(), 1);
        let removed = t.remove(&segs("/a/b/c")).unwrap();
        assert_eq!(removed.status, Status::Blocked);
        assert!(t.is_empty());
        assert!(t.children.is_empty(), "branches pruned");
        assert!(t.remove(&segs("/a/b/c")).is_none());
    }

    #[test]
    fn retain_filters_and_counts() {
        let mut t = PathTrie::new();
        t.insert(&segs("/"), rec("/", Status::NotBlocked));
        t.insert(&segs("/x"), rec("/x", Status::Blocked));
        t.insert(&segs("/y/z"), rec("/y/z", Status::NotBlocked));
        let removed = t.retain(|r| r.status == Status::Blocked);
        assert_eq!(removed, 2);
        assert_eq!(t.len(), 1);
        assert!(t.lpm(&segs("/x")).is_some());
    }

    #[test]
    fn for_each_visits_all() {
        let mut t = PathTrie::new();
        for p in ["/", "/a", "/a/b", "/c"] {
            t.insert(&segs(p), rec(p, Status::Blocked));
        }
        let mut n = 0;
        t.for_each(&mut |_r| n += 1);
        assert_eq!(n, 4);
        assert_eq!(t.len(), 4);
    }
}
