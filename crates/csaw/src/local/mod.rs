//! The client-side local database (Table 3, §4.1, §4.4).

pub mod db;
pub mod record;
pub mod trie;

pub use db::{LocalDb, Lookup};
pub use record::{LocalRecord, Status};
pub use trie::PathTrie;
