//! The local database (§4.1, §4.4).
//!
//! An in-memory structure keyed by URL, with the three behaviours the
//! paper builds on top of plain storage:
//!
//! 1. **Aggregation** (§4.4 "Managing the database size"): host-level
//!    blocking (DNS/IP/SNI) stores one record at the base URL; HTTP
//!    blocking stores at the base if the base itself is blocked, at the
//!    derived URL otherwise; *unblocked* findings collapse to a single
//!    base-URL record. Figure 6b measures the ~55% record saving.
//! 2. **Longest-prefix matching**: the status of a derived URL is decided
//!    by its most specific recorded ancestor.
//! 3. **Expiry**: records older than the TTL read as not-measured, which
//!    re-triggers measurement (churn Scenario A).
//!
//! Status is scheme-insensitive by design: records are keyed on
//! (host, effective port, path), because the censor mechanisms that
//! differ by scheme are captured in the record's `stages`, not in its
//! identity.

use crate::local::record::{LocalRecord, Status};
use crate::local::trie::PathTrie;
use csaw_censor::blocking::BlockingType;
use csaw_obs::json::JsonValue;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_store::StoreError;
use csaw_webproto::url::Url;
use std::collections::HashMap;

/// Host-level key: hostname (or IP literal) plus port. The two web
/// default ports (80/443) collapse to `None` so that the same resource
/// fetched over HTTP and HTTPS shares one identity — scheme is a
/// *transport* question, recorded in `stages`, not an identity question.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct HostKey {
    host: String,
    port: Option<u16>,
}

impl HostKey {
    fn of(url: &Url) -> HostKey {
        let p = url.port();
        HostKey {
            host: url.host().to_string(),
            port: if p == 80 || p == 443 { None } else { Some(p) },
        }
    }
}

/// The client's local measurement database.
///
/// Serializes to a portable form (the host map as a pair list, since
/// JSON map keys must be strings) so a client can persist its
/// measurements across restarts.
#[derive(Debug, Clone)]
pub struct LocalDb {
    hosts: HashMap<HostKey, PathTrie>,
    /// Aggregation on (the paper's design) or off (the Fig. 6b baseline).
    pub aggregate: bool,
    /// Record TTL.
    pub ttl: SimDuration,
}

/// What a lookup reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Lookup {
    /// Status after TTL filtering (NotMeasured when nothing live).
    pub status: Status,
    /// The matched record (most specific live ancestor), if any.
    pub record: Option<LocalRecord>,
}

impl LocalDb {
    /// An aggregating database with the given record TTL.
    pub fn new(ttl: SimDuration) -> LocalDb {
        LocalDb {
            hosts: HashMap::new(),
            aggregate: true,
            ttl,
        }
    }

    /// A non-aggregating database (stores every URL verbatim); the
    /// baseline for Figure 6b.
    pub fn without_aggregation(ttl: SimDuration) -> LocalDb {
        LocalDb {
            hosts: HashMap::new(),
            aggregate: false,
            ttl,
        }
    }

    fn segs(url: &Url) -> Vec<String> {
        url.path_segments().into_iter().map(String::from).collect()
    }

    /// Look up the blocking status of a URL at time `now`.
    ///
    /// Telemetry: `local_db.hits` counts lookups answered by a live
    /// record, `local_db.misses` the rest — the hit rate is the fraction
    /// of page loads that skip the measurement machinery entirely.
    pub fn lookup(&self, url: &Url, now: SimTime) -> Lookup {
        let miss = || {
            csaw_obs::inc("local_db.misses");
            Lookup {
                status: Status::NotMeasured,
                record: None,
            }
        };
        let Some(trie) = self.hosts.get(&HostKey::of(url)) else {
            return miss();
        };
        let segs = Self::segs(url);
        let record = if self.aggregate {
            trie.lpm(&segs)
        } else {
            trie.get(&segs)
        };
        match record {
            Some(r) if r.is_live(now, self.ttl) => {
                csaw_obs::inc("local_db.hits");
                Lookup {
                    status: r.status,
                    record: Some(r.clone()),
                }
            }
            _ => miss(),
        }
    }

    /// Record a measurement, applying the aggregation rules.
    pub fn record_measurement(
        &mut self,
        url: &Url,
        asn: Asn,
        now: SimTime,
        status: Status,
        stages: Vec<BlockingType>,
    ) {
        debug_assert!(
            status != Status::NotMeasured,
            "store real measurements only"
        );
        let key = HostKey::of(url);
        let trie = self.hosts.entry(key).or_default();
        let segs = Self::segs(url);

        if !self.aggregate {
            let rec = match status {
                Status::Blocked => LocalRecord::blocked(url.clone(), asn, now, stages),
                _ => LocalRecord::not_blocked(url.clone(), asn, now),
            };
            trie.insert(&segs, rec);
            return;
        }

        match status {
            Status::Blocked => {
                let rec = LocalRecord::blocked(url.clone(), asn, now, stages);
                if rec.has_host_level_stage() || url.is_base() {
                    // Rule 2 (DNS/IP/SNI) and rule 1a (base blocked):
                    // one record at the base covers the host; everything
                    // else is subsumed.
                    let base_rec = LocalRecord::blocked(url.base(), asn, now, rec.stages);
                    *trie = PathTrie::new();
                    trie.insert(&[], base_rec);
                } else {
                    // Rule 1b: a blocked derived URL gets its own record;
                    // the base's status (if known) stays as-is.
                    trie.insert(&segs, rec);
                }
            }
            Status::NotBlocked | Status::NotMeasured => {
                let governing = trie.lpm(&segs).cloned();
                match governing {
                    // Fresh reachability against a *host-level* block
                    // (DNS/IP/SNI): those mechanisms key on the host, so a
                    // single successful measurement proves the whole host
                    // was whitelisted (churn Scenario A observed early).
                    Some(g) if g.status == Status::Blocked && g.has_host_level_stage() => {
                        *trie = PathTrie::new();
                        trie.insert(&[], LocalRecord::not_blocked(url.base(), asn, now));
                    }
                    // Fresh reachability against an HTTP-level block:
                    // override the exact path; if an ancestor blocked
                    // record still governs, leave a specific not-blocked
                    // record so LPM resolves this subtree correctly.
                    Some(g) if g.status == Status::Blocked => {
                        trie.remove(&segs);
                        let still_blocked = trie
                            .lpm(&segs)
                            .map(|r| r.status == Status::Blocked)
                            .unwrap_or(false);
                        if still_blocked {
                            trie.insert(&segs, LocalRecord::not_blocked(url.clone(), asn, now));
                        } else {
                            trie.retain(|r| r.status == Status::Blocked);
                            if trie.get(&[]).is_none() {
                                trie.insert(&[], LocalRecord::not_blocked(url.base(), asn, now));
                            }
                        }
                    }
                    // Rule 1c: a URL found uncensored collapses to a
                    // single not-blocked record at the base — but more
                    // specific *blocked* records must survive (rules b+c
                    // collectively; that's why lookup uses LPM).
                    _ => {
                        trie.retain(|r| r.status == Status::Blocked);
                        if trie.get(&[]).is_none() {
                            trie.insert(&[], LocalRecord::not_blocked(url.base(), asn, now));
                        }
                    }
                }
            }
        }
    }

    /// Total records stored (Fig. 6b's metric).
    pub fn record_count(&self) -> usize {
        self.hosts.values().map(PathTrie::len).sum()
    }

    /// Drop expired records entirely (periodic housekeeping; lookups
    /// already treat them as not-measured).
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let ttl = self.ttl;
        let mut removed = 0;
        self.hosts.retain(|_, trie| {
            removed += trie.retain(|r| r.is_live(now, ttl));
            !trie.is_empty()
        });
        removed
    }

    /// Blocked records not yet posted to the global DB.
    pub fn pending_reports(&self) -> Vec<LocalRecord> {
        let mut out = Vec::new();
        for trie in self.hosts.values() {
            trie.for_each(&mut |r| {
                if r.status == Status::Blocked && !r.global_posted {
                    out.push(r.clone());
                }
            });
        }
        // Deterministic order for reproducible reports.
        out.sort_by(|a, b| a.url.cmp(&b.url));
        out
    }

    /// Mark a record as posted.
    pub fn mark_posted(&mut self, url: &Url) {
        if let Some(trie) = self.hosts.get_mut(&HostKey::of(url)) {
            if let Some(r) = trie.get_mut(&Self::segs(url)) {
                r.global_posted = true;
            }
        }
    }

    /// All live blocked records (for analytics/tests).
    pub fn blocked_records(&self, now: SimTime) -> Vec<LocalRecord> {
        let mut out = Vec::new();
        for trie in self.hosts.values() {
            trie.for_each(&mut |r| {
                if r.status == Status::Blocked && r.is_live(now, self.ttl) {
                    out.push(r.clone());
                }
            });
        }
        out.sort_by(|a, b| a.url.cmp(&b.url));
        out
    }

    /// Encode the database for persistence across client restarts. The
    /// host map serializes as a pair list sorted by (host, port) — JSON
    /// map keys must be strings, and sorting keeps snapshots
    /// deterministic.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs: Vec<(&HostKey, &PathTrie)> = self.hosts.iter().collect();
        pairs.sort_by(|a, b| (&a.0.host, a.0.port).cmp(&(&b.0.host, b.0.port)));
        let hosts = pairs
            .into_iter()
            .map(|(k, trie)| {
                let mut key = JsonValue::obj();
                key.set("host", k.host.as_str());
                match k.port {
                    Some(p) => key.set("port", u64::from(p)),
                    None => key.set("port", JsonValue::Null),
                }
                JsonValue::Arr(vec![key, trie.to_json()])
            })
            .collect::<Vec<_>>();
        let mut v = JsonValue::obj();
        v.set("aggregate", self.aggregate);
        v.set("ttl_us", self.ttl.as_micros());
        v.set("hosts", hosts);
        v
    }

    /// [`LocalDb::to_json`] as a string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Decode a persisted database.
    pub fn from_json(v: &JsonValue) -> Option<LocalDb> {
        let aggregate = v.get("aggregate")?.as_bool()?;
        let ttl = SimDuration::from_micros(v.get("ttl_us")?.as_u64()?);
        let mut hosts = HashMap::new();
        for pair in v.get("hosts")?.as_arr()? {
            let [key, trie] = pair.as_arr()? else {
                return None;
            };
            let host = key.get("host")?.as_str()?.to_string();
            let port = match key.get("port")? {
                JsonValue::Null => None,
                p => Some(u16::try_from(p.as_u64()?).ok()?),
            };
            hosts.insert(HostKey { host, port }, PathTrie::from_json(trie)?);
        }
        Some(LocalDb {
            hosts,
            aggregate,
            ttl,
        })
    }

    /// Parse and decode a persisted database from JSON text. Garbage is
    /// the store's unified [`StoreError::Corrupt`], never a panic.
    pub fn from_json_str(s: &str) -> Result<LocalDb, StoreError> {
        let v = JsonValue::parse(s)
            .map_err(|e| StoreError::Corrupt(format!("local DB snapshot: {e}")))?;
        LocalDb::from_json(&v)
            .ok_or_else(|| StoreError::Corrupt("malformed local DB snapshot".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn db() -> LocalDb {
        LocalDb::new(SimDuration::from_secs(3600))
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn unknown_is_not_measured() {
        let d = db();
        let l = d.lookup(&url("http://foo.com/x"), T0);
        assert_eq!(l.status, Status::NotMeasured);
        assert!(l.record.is_none());
    }

    #[test]
    fn rule_1a_base_blocked_covers_derived() {
        let mut d = db();
        d.record_measurement(
            &url("http://www.foo.com/"),
            Asn(1),
            T0,
            Status::Blocked,
            vec![BlockingType::HttpBlockPageRedirect],
        );
        assert_eq!(d.record_count(), 1);
        assert_eq!(
            d.lookup(&url("http://www.foo.com/a.html"), T0).status,
            Status::Blocked
        );
        assert_eq!(
            d.lookup(&url("http://www.foo.com/deep/b.html"), T0).status,
            Status::Blocked
        );
    }

    #[test]
    fn rule_1b_derived_blocked_is_specific() {
        let mut d = db();
        d.record_measurement(
            &url("http://foo.com/banned/page"),
            Asn(1),
            T0,
            Status::Blocked,
            vec![BlockingType::HttpDrop],
        );
        assert_eq!(
            d.lookup(&url("http://foo.com/banned/page"), T0).status,
            Status::Blocked
        );
        // Its descendants inherit via LPM...
        assert_eq!(
            d.lookup(&url("http://foo.com/banned/page/sub"), T0).status,
            Status::Blocked
        );
        // ...but the base and siblings are unknown.
        assert_eq!(
            d.lookup(&url("http://foo.com/"), T0).status,
            Status::NotMeasured
        );
        assert_eq!(
            d.lookup(&url("http://foo.com/other"), T0).status,
            Status::NotMeasured
        );
    }

    #[test]
    fn rule_1c_unblocked_collapses_to_base_keeping_blocked() {
        let mut d = db();
        d.record_measurement(
            &url("http://foo.com/banned"),
            Asn(1),
            T0,
            Status::Blocked,
            vec![BlockingType::HttpDrop],
        );
        // Now several pages found fine.
        for p in ["/a", "/b/c", "/d"] {
            d.record_measurement(
                &url(&format!("http://foo.com{p}")),
                Asn(1),
                T0,
                Status::NotBlocked,
                vec![],
            );
        }
        // One base record + one blocked derived record.
        assert_eq!(d.record_count(), 2);
        assert_eq!(
            d.lookup(&url("http://foo.com/a"), T0).status,
            Status::NotBlocked
        );
        assert_eq!(
            d.lookup(&url("http://foo.com/banned"), T0).status,
            Status::Blocked,
            "blocked derived record must survive unblocked collapsing"
        );
        assert_eq!(
            d.lookup(&url("http://foo.com/banned/x"), T0).status,
            Status::Blocked
        );
    }

    #[test]
    fn rule_2_host_level_blocking_single_record() {
        let mut d = db();
        // A derived URL found DNS-blocked aggregates to the base.
        d.record_measurement(
            &url("http://video.foo.com/watch/abc"),
            Asn(1),
            T0,
            Status::Blocked,
            vec![BlockingType::DnsHijack],
        );
        assert_eq!(d.record_count(), 1);
        assert_eq!(
            d.lookup(&url("http://video.foo.com/"), T0).status,
            Status::Blocked
        );
        assert_eq!(
            d.lookup(&url("http://video.foo.com/anything"), T0).status,
            Status::Blocked
        );
    }

    #[test]
    fn scheme_insensitive_keys() {
        let mut d = db();
        d.record_measurement(
            &url("http://foo.com/"),
            Asn(1),
            T0,
            Status::Blocked,
            vec![BlockingType::HttpDrop],
        );
        assert_eq!(
            d.lookup(&url("https://foo.com/"), T0).status,
            Status::Blocked,
            "https lookup hits the same record"
        );
        // But an explicit odd port is a different key.
        assert_eq!(
            d.lookup(&url("http://foo.com:8080/"), T0).status,
            Status::NotMeasured
        );
    }

    #[test]
    fn expiry_reads_as_not_measured_and_purges() {
        let mut d = LocalDb::new(SimDuration::from_secs(100));
        d.record_measurement(
            &url("http://foo.com/"),
            Asn(1),
            T0,
            Status::Blocked,
            vec![BlockingType::HttpDrop],
        );
        let later = SimTime::from_secs(101);
        assert_eq!(
            d.lookup(&url("http://foo.com/"), later).status,
            Status::NotMeasured
        );
        assert_eq!(d.record_count(), 1, "record still stored");
        let purged = d.purge_expired(later);
        assert_eq!(purged, 1);
        assert_eq!(d.record_count(), 0);
    }

    #[test]
    fn pending_reports_and_mark_posted() {
        let mut d = db();
        d.record_measurement(
            &url("http://a.com/"),
            Asn(1),
            T0,
            Status::Blocked,
            vec![BlockingType::HttpDrop],
        );
        d.record_measurement(
            &url("http://b.com/"),
            Asn(1),
            T0,
            Status::NotBlocked,
            vec![],
        );
        let pending = d.pending_reports();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].url, url("http://a.com/"));
        d.mark_posted(&url("http://a.com/"));
        assert!(d.pending_reports().is_empty());
    }

    #[test]
    fn non_aggregating_stores_everything() {
        let mut d = LocalDb::without_aggregation(SimDuration::from_secs(3600));
        for p in ["/", "/a", "/b", "/a/c"] {
            d.record_measurement(
                &url(&format!("http://foo.com{p}")),
                Asn(1),
                T0,
                Status::NotBlocked,
                vec![],
            );
        }
        assert_eq!(d.record_count(), 4);
        // Exact-match lookup: derived URL without its own record is
        // unknown even though the base is recorded.
        assert_eq!(
            d.lookup(&url("http://foo.com/zzz"), T0).status,
            Status::NotMeasured
        );
    }

    #[test]
    fn aggregation_saves_records_vs_baseline() {
        let mut agg = db();
        let mut raw = LocalDb::without_aggregation(SimDuration::from_secs(3600));
        // A browse session: 20 pages on one unblocked site.
        for i in 0..20 {
            let u = url(&format!("http://news.example/story/{i}"));
            agg.record_measurement(&u, Asn(1), T0, Status::NotBlocked, vec![]);
            raw.record_measurement(&u, Asn(1), T0, Status::NotBlocked, vec![]);
        }
        assert_eq!(agg.record_count(), 1);
        assert_eq!(raw.record_count(), 20);
    }

    #[test]
    fn rehit_after_block_update_refreshes_base() {
        let mut d = db();
        // DNS blocking first...
        d.record_measurement(
            &url("http://x.com/p"),
            Asn(1),
            T0,
            Status::Blocked,
            vec![BlockingType::DnsNxdomain],
        );
        // ...then the censor whitelists; after expiry remeasurement says fine.
        d.record_measurement(
            &url("http://x.com/p"),
            Asn(2),
            SimTime::from_secs(10),
            Status::NotBlocked,
            vec![],
        );
        assert_eq!(
            d.lookup(&url("http://x.com/q"), SimTime::from_secs(10))
                .status,
            Status::NotBlocked
        );
        assert_eq!(d.record_count(), 1);
        let rec = d
            .lookup(&url("http://x.com/q"), SimTime::from_secs(10))
            .record
            .unwrap();
        assert_eq!(rec.asn, Asn(2));
    }
}
