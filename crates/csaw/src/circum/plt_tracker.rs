//! Per-(transport, URL) PLT tracking (§4.3.2).
//!
//! "If multiple relay-based approaches can be used for circumvention, we
//! normally choose the one that yields the smallest PLT, by way of
//! maintaining a moving average of PLTs for each circumvention approach
//! and URL."

use csaw_simnet::time::SimDuration;
use std::collections::HashMap;

/// Exponentially-weighted moving averages of PLT, keyed by
/// (transport name, URL key).
#[derive(Debug, Clone)]
pub struct PltTracker {
    alpha: f64,
    ewma: HashMap<(String, String), f64>,
    /// Per-transport overall average (fallback for URLs never fetched via
    /// a given transport).
    transport_avg: HashMap<String, (f64, u64)>,
}

impl PltTracker {
    /// A tracker with EWMA weight `alpha` (weight of the newest sample).
    pub fn new(alpha: f64) -> PltTracker {
        PltTracker {
            alpha: alpha.clamp(0.01, 1.0),
            ewma: HashMap::new(),
            transport_avg: HashMap::new(),
        }
    }

    /// Record an observed PLT.
    pub fn observe(&mut self, transport: &str, url_key: &str, plt: SimDuration) {
        let secs = plt.as_secs_f64();
        // Telemetry: per-transport PLT distributions (the data behind the
        // selector's EWMA ordering) land in the metrics registry too.
        csaw_obs::observe_secs("plt.transport_s", secs);
        csaw_obs::scope::current()
            .registry
            .histogram(&format!("plt.transport_s.{transport}"))
            .observe_secs(secs);
        let key = (transport.to_string(), url_key.to_string());
        match self.ewma.get_mut(&key) {
            Some(v) => *v = (1.0 - self.alpha) * *v + self.alpha * secs,
            None => {
                self.ewma.insert(key, secs);
            }
        }
        let (sum, n) = self
            .transport_avg
            .entry(transport.to_string())
            .or_insert((0.0, 0));
        *sum += secs;
        *n += 1;
    }

    /// Estimated PLT for a (transport, URL), falling back to the
    /// transport-wide average, then `None` for never-used transports.
    pub fn estimate(&self, transport: &str, url_key: &str) -> Option<f64> {
        if let Some(v) = self.ewma.get(&(transport.to_string(), url_key.to_string())) {
            return Some(*v);
        }
        self.transport_avg
            .get(transport)
            .map(|(sum, n)| sum / *n as f64)
    }

    /// Number of (transport, URL) pairs tracked.
    pub fn len(&self) -> usize {
        self.ewma.len()
    }

    /// True if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.ewma.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_toward_new_values() {
        let mut t = PltTracker::new(0.5);
        t.observe("tor", "http://x.com/", SimDuration::from_secs(10));
        t.observe("tor", "http://x.com/", SimDuration::from_secs(2));
        let e = t.estimate("tor", "http://x.com/").unwrap();
        assert!((e - 6.0).abs() < 1e-9, "{e}");
        t.observe("tor", "http://x.com/", SimDuration::from_secs(2));
        let e = t.estimate("tor", "http://x.com/").unwrap();
        assert!(e < 6.0);
    }

    #[test]
    fn fallback_to_transport_average() {
        let mut t = PltTracker::new(0.3);
        t.observe("lantern", "http://a.com/", SimDuration::from_secs(4));
        t.observe("lantern", "http://b.com/", SimDuration::from_secs(6));
        let e = t.estimate("lantern", "http://never-seen.com/").unwrap();
        assert!((e - 5.0).abs() < 1e-9);
        assert_eq!(t.estimate("tor", "http://a.com/"), None);
    }

    #[test]
    fn keys_are_independent() {
        let mut t = PltTracker::new(0.3);
        t.observe("tor", "http://a.com/", SimDuration::from_secs(10));
        t.observe("lantern", "http://a.com/", SimDuration::from_secs(3));
        assert!(t.estimate("tor", "http://a.com/").unwrap() > 9.0);
        assert!(t.estimate("lantern", "http://a.com/").unwrap() < 4.0);
        assert_eq!(t.len(), 2);
    }
}
