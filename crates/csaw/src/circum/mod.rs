//! The circumvention module (§4.3.2): transport registry, PLT tracking,
//! and the local-fix-first selection policy.

pub mod plt_tracker;
pub mod selector;

pub use plt_tracker::PltTracker;
pub use selector::Selector;
