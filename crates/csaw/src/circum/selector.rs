//! The circumvention module's selection policy (§4.3.2, §4.4).
//!
//! Given the blocking mechanisms recorded for a URL, the selector orders
//! candidate transports:
//!
//! 1. **Local fixes first** — they avoid relays and their path inflation:
//!    public DNS for resolver tampering, HTTPS for HTTP-only filtering,
//!    "IP as hostname" for name/keyword matching, domain fronting for
//!    SNI/IP-level blocking.
//! 2. **Relays by expected PLT** — the moving average per (transport,
//!    URL) decides between Lantern, static proxies, VPNs and Tor.
//! 3. **Exploration** — every `n`-th access to a URL uses a randomly
//!    chosen eligible transport, so a transport that *improved* gets
//!    rediscovered (the paper uses n = 5).
//!
//! An anonymity-preferring user restricts the registry to transports
//! that provide anonymity (Tor), per §4.4.

use crate::circum::plt_tracker::PltTracker;
use crate::config::UserPreference;
use crate::measure::detect::failure_to_blocking;
use csaw_censor::blocking::{BlockingType, Stage};
use csaw_circumvent::fetch::FetchReport;
use csaw_circumvent::transports::{FetchCtx, Transport, TransportKind};
use csaw_circumvent::world::World;
use csaw_simnet::rng::DetRng;
use csaw_webproto::url::Url;
use std::collections::HashMap;

/// The outcome of serving a blocked URL through the selector.
#[derive(Debug)]
pub struct BlockedFetch {
    /// The final attempt's report (PLT includes time wasted on failed
    /// attempts).
    pub report: FetchReport,
    /// Name of the transport that produced the final outcome.
    pub transport: String,
    /// Its kind (drives the revalidation policy).
    pub kind: TransportKind,
    /// Blocking stages newly evidenced by failed local-fix attempts
    /// (multi-stage discovery; persist into the local DB).
    pub observed_stages: Vec<BlockingType>,
    /// Time burned on attempts that did *not* produce the final outcome
    /// (the dead-end share of the user-visible PLT — the circumvention
    /// setup leg of the fetch span tree).
    pub wasted: csaw_simnet::SimDuration,
}

/// The circumvention transport registry plus selection state.
pub struct Selector {
    transports: Vec<Box<dyn Transport + Send>>,
    plt: PltTracker,
    access_counts: HashMap<String, u32>,
    explore_every: u32,
    preference: UserPreference,
}

impl std::fmt::Debug for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Selector")
            .field("transports", &self.transport_names())
            .field("explore_every", &self.explore_every)
            .field("preference", &self.preference)
            .finish()
    }
}

impl Selector {
    /// Build a selector over an explicit transport registry.
    pub fn new(
        transports: Vec<Box<dyn Transport + Send>>,
        explore_every: u32,
        ewma_alpha: f64,
        preference: UserPreference,
    ) -> Selector {
        assert!(!transports.is_empty(), "need at least one transport");
        Selector {
            transports,
            plt: PltTracker::new(ewma_alpha),
            access_counts: HashMap::new(),
            explore_every: explore_every.max(1),
            preference,
        }
    }

    /// The standard registry the paper's implementation ships: all local
    /// fixes (fronting through `front` if given) plus Lantern and Tor.
    pub fn standard(
        front: Option<&str>,
        explore_every: u32,
        alpha: f64,
        preference: UserPreference,
    ) -> Selector {
        let mut t: Vec<Box<dyn Transport + Send>> = vec![
            Box::new(csaw_circumvent::transports::PublicDns),
            Box::new(csaw_circumvent::transports::HoldOnDns),
            Box::new(csaw_circumvent::transports::HttpsUpgrade { public_dns: true }),
            Box::new(csaw_circumvent::transports::IpAsHostname::default()),
        ];
        if let Some(front) = front {
            t.push(Box::new(csaw_circumvent::transports::DomainFronting::via(
                front,
            )));
        }
        t.push(Box::new(csaw_circumvent::lantern::LanternClient::new()));
        t.push(Box::new(csaw_circumvent::tor::TorClient::new()));
        Selector::new(t, explore_every, alpha, preference)
    }

    /// Registered transport names, in registry order.
    pub fn transport_names(&self) -> Vec<String> {
        self.transports
            .iter()
            .map(|t| t.name().to_string())
            .collect()
    }

    /// The PLT tracker (read access for experiments).
    pub fn plt_tracker(&self) -> &PltTracker {
        &self.plt
    }

    /// Which local fixes address the given blocking stages, in preference
    /// order. Transport names refer to the standard registry.
    pub fn local_fix_order(stages: &[BlockingType]) -> Vec<&'static str> {
        let has_stage = |st: Stage| stages.iter().any(|b| b.stage() == st);
        let dns = has_stage(Stage::Dns);
        let ip = has_stage(Stage::Ip);
        let http = has_stage(Stage::Http);
        let tls = has_stage(Stage::Tls);
        let mut out = Vec::new();
        // Public DNS cures pure resolver tampering; Hold-On additionally
        // survives on-path injection, at a hold-window cost — so it comes
        // second.
        if dns && !ip && !http && !tls {
            out.push("public-dns");
            out.push("hold-on-dns");
        }
        // HTTPS hides the request from HTTP-only filters (and resolving
        // publicly folds in the DNS cure).
        if http && !tls && !ip {
            out.push("https");
        }
        // IP-as-hostname defeats name/keyword matching wherever names are
        // the filter key — including SNI blocking, since the plain-HTTP
        // IP-addressed fetch never presents a TLS hello. Only IP-level
        // blocking kills it.
        if (dns || http || tls) && !ip {
            out.push("ip-as-hostname");
        }
        // Fronting defeats everything that keys on names or addresses.
        out.push("domain-fronting");
        out
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.transports.iter().position(|t| t.name() == name)
    }

    /// Ordered candidate indices for a URL with the given recorded
    /// blocking stages.
    pub fn candidate_order(&self, url_key: &str, stages: &[BlockingType]) -> Vec<usize> {
        let mut order: Vec<usize> = Vec::new();
        let anonymity_only = self.preference == UserPreference::Anonymity;
        if !anonymity_only {
            for name in Self::local_fix_order(stages) {
                if let Some(i) = self.index_of(name) {
                    if !order.contains(&i) {
                        order.push(i);
                    }
                }
            }
        }
        // Relays, best expected PLT first; unknown transports last in
        // registry order.
        let mut relays: Vec<(usize, Option<f64>)> = self
            .transports
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind() == TransportKind::Relay)
            .filter(|(_, t)| !anonymity_only || t.anonymous())
            .map(|(i, t)| (i, self.plt.estimate(t.name(), url_key)))
            .collect();
        relays.sort_by(|a, b| match (a.1, b.1) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.0.cmp(&b.0),
        });
        for (i, _) in relays {
            if !order.contains(&i) {
                order.push(i);
            }
        }
        order
    }

    /// Fetch a blocked URL via the best transport, with n-th-access
    /// exploration.
    ///
    /// If the preference filter leaves no usable transport at all (an
    /// anonymity-only user whose registry has no anonymous transport),
    /// the fetch fails with `TransportUnavailable` rather than leaking
    /// through a forbidden one.
    pub fn fetch_blocked(
        &mut self,
        world: &World,
        ctx: &FetchCtx,
        url: &Url,
        stages: &[BlockingType],
        rng: &mut DetRng,
    ) -> BlockedFetch {
        let url_key = url.base().to_string();
        let count = self.access_counts.entry(url_key.clone()).or_insert(0);
        *count += 1;
        let explore = (*count).is_multiple_of(self.explore_every);
        let mut order = self.candidate_order(&url_key, stages);
        if order.is_empty() {
            csaw_obs::inc("circum.fetch.failed");
            return BlockedFetch {
                report: FetchReport {
                    outcome: csaw_circumvent::outcome::FetchOutcome::Failed(
                        csaw_circumvent::outcome::FailureKind::TransportUnavailable,
                    ),
                    elapsed: csaw_simnet::SimDuration::ZERO,
                    trace: Vec::new(),
                    resource_failures: Vec::new(),
                },
                transport: "none".to_string(),
                kind: TransportKind::Direct,
                observed_stages: Vec::new(),
                wasted: csaw_simnet::SimDuration::ZERO,
            };
        }
        if explore && order.len() > 1 {
            // Random eligible candidate goes first (§4.3.2's periodic
            // re-exploration).
            let pick = rng.index(order.len());
            let chosen = order.remove(pick);
            order.insert(0, chosen);
            csaw_obs::inc("circum.explorations");
        }
        // Time spent on transports that didn't deliver is user-visible
        // waiting: it accumulates into the final PLT. But every failed
        // local fix is also *measurement*: it reveals a blocking stage
        // the record didn't know about (§4.1's multi-stage fields), so
        // the caller can persist it and the next visit skips the dead
        // end.
        let mut wasted = csaw_simnet::SimDuration::ZERO;
        let mut observed_stages: Vec<BlockingType> = Vec::new();
        let mut last: Option<BlockedFetch> = None;
        // Attempt spans ride the trace cursor: the caller positions it
        // where circumvention starts on the fetch waterfall, and each
        // failed attempt pushes it forward by the time it burned.
        let trace_attempts =
            csaw_obs::trace::in_trace() && csaw_obs::scope::current().sink.enabled();
        for i in order {
            let name = self.transports[i].name().to_string();
            let kind = self.transports[i].kind();
            let mut report = self.transports[i].fetch(world, ctx, url, rng);
            let genuine = report.outcome.is_genuine_page();
            if trace_attempts {
                csaw_obs::event::span_completed_at(
                    "circum.attempt",
                    csaw_obs::trace::cursor_us().unwrap_or(0),
                    report.elapsed.as_micros(),
                    &[
                        ("transport", csaw_obs::json::JsonValue::from(name.as_str())),
                        ("ok", csaw_obs::json::JsonValue::from(genuine)),
                    ],
                );
            }
            if genuine {
                // The moving average tracks the transport's own speed;
                // the user's PLT additionally pays for the dead ends.
                self.plt.observe(&name, &url_key, report.elapsed);
                report.elapsed += wasted;
                let ctx = csaw_obs::scope::current();
                ctx.registry.counter("circum.fetch.success").inc();
                ctx.registry
                    .counter(&format!("circum.selected.{name}"))
                    .inc();
                // User-visible PLT: transport time plus the dead ends.
                ctx.registry
                    .histogram("plt.user_s")
                    .observe_secs(report.elapsed.as_secs_f64());
                return BlockedFetch {
                    report,
                    transport: name,
                    kind,
                    observed_stages,
                    wasted,
                };
            }
            let wasted_before = wasted;
            wasted += report.elapsed;
            csaw_obs::trace::advance_cursor_us(report.elapsed.as_micros());
            // A local fix that died on a censor signature taught us a
            // stage (TransportUnavailable teaches nothing — the fix just
            // doesn't apply to this origin).
            if kind == TransportKind::LocalFix {
                if let Some(bt) = report.outcome.failure().and_then(failure_to_blocking) {
                    if !observed_stages.contains(&bt) {
                        observed_stages.push(bt);
                    }
                }
            }
            last = Some(BlockedFetch {
                report,
                transport: name,
                kind,
                observed_stages: observed_stages.clone(),
                wasted: wasted_before,
            });
        }
        csaw_obs::inc("circum.fetch.failed");
        last.expect("order was non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::profiles;
    use csaw_circumvent::world::SiteSpec;
    use csaw_simnet::time::{SimDuration, SimTime};
    use csaw_simnet::topology::{AccessNetwork, Asn, Provider, Region, Site};

    fn setup(policy: csaw_censor::CensorPolicy, asn: Asn) -> (World, FetchCtx) {
        let provider = Provider::new(asn, "isp");
        let access = AccessNetwork::single(provider.clone());
        let w = World::builder(access)
            .site(
                SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                    .category(csaw_censor::Category::Video)
                    .frontable(true)
                    .serves_by_ip(true)
                    .default_page(360_000, 20),
            )
            .site(SiteSpec::new(
                "cdn-front.example",
                Site::in_region(Region::Singapore),
            ))
            .censor(asn, policy)
            .build();
        (
            w,
            FetchCtx {
                now: SimTime::ZERO,
                provider,
            },
        )
    }

    fn selector() -> Selector {
        Selector::standard(
            Some("cdn-front.example"),
            5,
            0.3,
            UserPreference::Performance,
        )
    }

    #[test]
    fn local_fix_order_matches_mechanisms() {
        use BlockingType::*;
        assert_eq!(
            Selector::local_fix_order(&[DnsHijack]),
            vec![
                "public-dns",
                "hold-on-dns",
                "ip-as-hostname",
                "domain-fronting"
            ]
        );
        assert_eq!(
            Selector::local_fix_order(&[HttpBlockPageRedirect]),
            vec!["https", "ip-as-hostname", "domain-fronting"]
        );
        assert_eq!(
            Selector::local_fix_order(&[SniDrop]),
            vec!["ip-as-hostname", "domain-fronting"]
        );
        assert_eq!(
            Selector::local_fix_order(&[HttpDrop, SniDrop]),
            vec!["ip-as-hostname", "domain-fronting"],
            "SNI blocking never sees a plain-HTTP IP-addressed fetch"
        );
        assert_eq!(
            Selector::local_fix_order(&[IpDrop]),
            vec!["domain-fronting"]
        );
        assert_eq!(
            Selector::local_fix_order(&[DnsHijack, HttpDrop]),
            vec!["https", "ip-as-hostname", "domain-fronting"]
        );
    }

    #[test]
    fn isp_a_gets_https_fix() {
        let (w, ctx) = setup(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut s = selector();
        let mut rng = DetRng::new(1);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let BlockedFetch {
            report,
            transport: name,
            ..
        } = s.fetch_blocked(
            &w,
            &ctx,
            &url,
            &[BlockingType::HttpBlockPageRedirect],
            &mut rng,
        );
        assert!(report.outcome.is_genuine_page());
        assert_eq!(name, "https");
    }

    #[test]
    fn isp_b_youtube_served_by_a_working_local_fix() {
        let (w, ctx) = setup(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut s = selector();
        let mut rng = DetRng::new(2);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let stages = [
            BlockingType::DnsHijack,
            BlockingType::HttpDrop,
            BlockingType::SniDrop,
        ];
        let BlockedFetch {
            report,
            transport: name,
            ..
        } = s.fetch_blocked(&w, &ctx, &url, &stages, &mut rng);
        assert!(report.outcome.is_genuine_page(), "{:?}", report.outcome);
        // This origin serves by IP, so the cheaper IP-as-hostname fix
        // wins; fronting is the fallback.
        assert!(
            name == "ip-as-hostname" || name == "domain-fronting",
            "{name}"
        );
    }

    #[test]
    fn isp_b_needs_fronting_when_origin_rejects_ip_requests() {
        // Same multi-stage blocking, but the origin refuses IP-addressed
        // requests: fronting is the only local fix left.
        let provider = Provider::new(profiles::ISP_B_ASN, "isp");
        let access = AccessNetwork::single(provider.clone());
        let w = World::builder(access)
            .site(
                SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                    .category(csaw_censor::Category::Video)
                    .frontable(true)
                    .serves_by_ip(false)
                    .default_page(360_000, 20),
            )
            .site(SiteSpec::new(
                "cdn-front.example",
                Site::in_region(Region::Singapore),
            ))
            .censor(profiles::ISP_B_ASN, profiles::isp_b())
            .build();
        let ctx = FetchCtx {
            now: SimTime::ZERO,
            provider,
        };
        let mut s = selector();
        let mut rng = DetRng::new(2);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let stages = [
            BlockingType::DnsHijack,
            BlockingType::HttpDrop,
            BlockingType::SniDrop,
        ];
        let BlockedFetch {
            report,
            transport: name,
            ..
        } = s.fetch_blocked(&w, &ctx, &url, &stages, &mut rng);
        assert!(report.outcome.is_genuine_page(), "{:?}", report.outcome);
        assert_eq!(name, "domain-fronting");
    }

    #[test]
    fn local_fix_beats_relays_in_plt() {
        let (w, ctx) = setup(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut s = selector();
        let mut rng = DetRng::new(3);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let BlockedFetch { report: fix, .. } = s.fetch_blocked(
            &w,
            &ctx,
            &url,
            &[BlockingType::HttpBlockPageRedirect],
            &mut rng,
        );
        // Compare to Tor directly.
        let mut tor = csaw_circumvent::tor::TorClient::new();
        let t = tor.fetch(&w, &ctx, &url, &mut rng);
        assert!(
            fix.elapsed < t.elapsed,
            "fix {} vs tor {}",
            fix.elapsed,
            t.elapsed
        );
    }

    #[test]
    fn relay_ordering_follows_ewma() {
        let mut s = selector();
        // Teach the tracker that Tor is slow and Lantern fast for a key.
        let key = "http://x.com/";
        for _ in 0..5 {
            s.plt.observe("tor", key, SimDuration::from_secs(12));
            s.plt.observe("lantern", key, SimDuration::from_secs(3));
        }
        let order = s.candidate_order(key, &[BlockingType::IpDrop]);
        let names: Vec<String> = order
            .iter()
            .map(|i| s.transports[*i].name().to_string())
            .collect();
        let lantern_pos = names.iter().position(|n| n == "lantern").unwrap();
        let tor_pos = names.iter().position(|n| n == "tor").unwrap();
        assert!(lantern_pos < tor_pos, "{names:?}");
        // Fronting still first (local fix).
        assert_eq!(names[0], "domain-fronting");
    }

    #[test]
    fn anonymity_preference_restricts_to_tor() {
        let (w, ctx) = setup(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut s =
            Selector::standard(Some("cdn-front.example"), 5, 0.3, UserPreference::Anonymity);
        let mut rng = DetRng::new(4);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let BlockedFetch {
            report,
            transport: name,
            ..
        } = s.fetch_blocked(
            &w,
            &ctx,
            &url,
            &[BlockingType::HttpBlockPageRedirect],
            &mut rng,
        );
        assert_eq!(name, "tor", "only anonymous transports allowed");
        assert!(report.outcome.is_genuine_page());
    }

    #[test]
    fn anonymity_with_no_anonymous_transport_fails_cleanly() {
        // Regression: this used to panic on `last.expect(...)`.
        let (w, ctx) = setup(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut s = Selector::new(
            vec![Box::new(csaw_circumvent::lantern::LanternClient::new())],
            5,
            0.3,
            UserPreference::Anonymity,
        );
        let mut rng = DetRng::new(99);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let BlockedFetch {
            report,
            transport: name,
            kind,
            ..
        } = s.fetch_blocked(
            &w,
            &ctx,
            &url,
            &[BlockingType::HttpBlockPageRedirect],
            &mut rng,
        );
        assert_eq!(name, "none");
        assert_eq!(kind, csaw_circumvent::TransportKind::Direct);
        assert_eq!(
            report.outcome.failure(),
            Some(csaw_circumvent::FailureKind::TransportUnavailable)
        );
    }

    #[test]
    fn exploration_kicks_in_every_nth_access() {
        let (w, ctx) = setup(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut s = selector();
        let mut rng = DetRng::new(5);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let stages = [BlockingType::HttpBlockPageRedirect];
        let mut names = Vec::new();
        for _ in 0..25 {
            let BlockedFetch {
                transport: name, ..
            } = s.fetch_blocked(&w, &ctx, &url, &stages, &mut rng);
            names.push(name);
        }
        // The incumbent is "https"; exploration must have tried something
        // else at least once across the 5 scheduled exploration slots.
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        assert!(distinct.len() > 1, "exploration never deviated: {names:?}");
        // And the majority should still be the local fix.
        let https_count = names.iter().filter(|n| *n == "https").count();
        assert!(https_count >= 15, "{names:?}");
    }
}
