//! # csaw — the paper's contribution
//!
//! C-Saw (SIGCOMM 2018) combines crowdsourced censorship *measurement*
//! with data-driven, adaptive *circumvention* in one client. This crate
//! implements the complete system:
//!
//! - [`local`]: the local database (Table 3) with URL aggregation,
//!   longest-prefix matching and record expiry (§4.1, §4.4);
//! - [`global`]: the global database and server (Table 4) — UUID
//!   issuance, per-AS blocked-list downloads, the 1/d vote-spreading
//!   defense against false reports, registration risk gating (§4.2, §5);
//! - [`measure`]: the Fig. 4 in-line blocking detector with the GDNS
//!   fallback, the 2-phase block-page detector, and the redundant-request
//!   engine (serial/parallel/staggered, §4.3.1);
//! - [`circum`]: the circumvention module — local-fix-first transport
//!   selection, per-(transport, URL) PLT moving averages, every-n-th
//!   exploration (§4.3.2);
//! - [`multihoming`]: egress-ASN probing and strict-union strategy
//!   resolution (§4.4);
//! - [`client`]: [`CsawClient`], gluing it all together per Algorithm 1,
//!   plus the periodic sync/report/expiry workflow;
//! - [`config`]: user-visible knobs (performance vs. anonymity, the
//!   revalidation probability `p`, redundancy shape).
//!
//! ## Quick taste
//!
//! ```
//! use csaw::prelude::*;
//! use csaw_censor::profiles;
//! use csaw_circumvent::world::{SiteSpec, World};
//! use csaw_simnet::prelude::*;
//!
//! // A censored world: ISP-A HTTP-blocks YouTube (Table 1).
//! let provider = Provider::new(profiles::ISP_A_ASN, "ISP-A");
//! let world = World::builder(AccessNetwork::single(provider))
//!     .site(csaw_circumvent::world::SiteSpec::new(
//!             "www.youtube.com",
//!             Site::in_region(Region::UsEast))
//!         .category(csaw_censor::Category::Video))
//!     .censor(profiles::ISP_A_ASN, profiles::isp_a())
//!     .build();
//!
//! let mut client = CsawClient::new(CsawConfig::default(), None, 42);
//! let url = "http://www.youtube.com/".parse().unwrap();
//! let first = client.request(&world, &url, SimTime::from_secs(1));
//! let second = client.request(&world, &url, SimTime::from_secs(5));
//! assert_eq!(second.status_after, Status::Blocked);
//! assert_eq!(second.transport, "https"); // the adaptive local fix
//! # let _ = first;
//! # let _ = SiteSpec::new("x", Site::in_region(Region::UsEast));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod circum;
pub mod client;
pub mod config;
pub mod encore;
pub mod global;
pub mod local;
pub mod measure;
pub mod multihoming;
pub mod tracing;

pub use circum::{PltTracker, Selector};
pub use client::{ClientStats, CsawClient, RequestOutcome};
pub use config::{CsawConfig, RedundancyMode, UserPreference};
pub use encore::{EncoreConfig, EncoreSource};
pub use global::{
    Batch, ConfidenceFilter, DeploymentStats, GlobalRecord, IngestReceipt, Report, ServerDb,
    ServerDbBuilder, StorageBackend, StoreError, Uuid, VoteLedger,
};
pub use local::{LocalDb, LocalRecord, Status};
pub use measure::{
    fetch_with_redundancy, measure_direct, DetectConfig, DirectMeasurement, MeasuredStatus,
    RedundantOutcome, ServedFrom,
};
pub use multihoming::{MultihomingManager, PerProviderBlocking};
pub use tracing::{emit_fetch_tree, FetchBreakdown};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::client::{ClientStats, CsawClient, RequestOutcome};
    pub use crate::config::{CsawConfig, RedundancyMode, UserPreference};
    pub use crate::global::{ConfidenceFilter, Report, ServerDb, Uuid};
    pub use crate::local::{LocalDb, Status};
    pub use crate::measure::{DetectConfig, MeasuredStatus, ServedFrom};
}
