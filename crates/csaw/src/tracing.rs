//! Per-fetch span-tree emission: the PLT decomposition every C-Saw
//! fetch reports when causal tracing is on.
//!
//! The paper's headline quantities are *decompositions* of user PLT:
//! how much of a blocked fetch went to detecting the blocking, how much
//! to circumvention setup (dead-end transports, relay handshakes), and
//! how much to the transfer that finally served the user (Figs. 5–7,
//! Table 5). [`emit_fetch_tree`] renders exactly that as one span tree:
//!
//! ```text
//! fetch ........................... root (dur = detect + circum + transfer)
//! ├── fetch.detect ................ blocking detection
//! ├── fetch.circum ................ circumvention setup / dead ends
//! └── fetch.transfer .............. the transfer the user saw
//! ```
//!
//! The three children are laid out back-to-back from the fetch's start
//! and the transfer leg is always computed as a remainder, so the
//! children sum to the root duration *exactly* — the invariant the
//! `trace-report` tool checks. All three are always emitted (zero-width
//! legs included): consumers never need to special-case missing legs.
//!
//! Emission is gated on an active trace frame *and* an enabled sink, so
//! untraced runs pay one thread-local read.

use csaw_obs::json::JsonValue;
use csaw_simnet::time::SimDuration;

/// The PLT decomposition of one fetch, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchBreakdown {
    /// Time to detect blocking (zero for known-blocked or clean fetches).
    pub detect: SimDuration,
    /// Circumvention setup: dead-end transports, relay establishment.
    pub circum: SimDuration,
    /// The transfer that served (or failed to serve) the user.
    pub transfer: SimDuration,
    /// Whether the user got a genuine page.
    pub ok: bool,
}

impl FetchBreakdown {
    /// A successful fetch whose legs must sum to `plt`: `transfer` is the
    /// remainder after `detect` and `circum` (each clamped so the sum
    /// never exceeds `plt`).
    pub fn served(plt: SimDuration, detect: SimDuration, circum: SimDuration) -> FetchBreakdown {
        let detect = detect.min(plt);
        let circum = circum.min(plt.saturating_sub(detect));
        FetchBreakdown {
            detect,
            circum,
            transfer: plt.saturating_sub(detect).saturating_sub(circum),
            ok: true,
        }
    }

    /// A fetch that served nothing: the legs are the time burned trying.
    pub fn failed(detect: SimDuration, circum: SimDuration) -> FetchBreakdown {
        FetchBreakdown {
            detect,
            circum,
            transfer: SimDuration::ZERO,
            ok: false,
        }
    }

    /// Total root duration (what the user waited).
    pub fn total(&self) -> SimDuration {
        self.detect + self.circum + self.transfer
    }
}

/// True when fetch trees should be emitted: an active trace frame and an
/// enabled sink.
pub fn tracing_fetch() -> bool {
    csaw_obs::trace::in_trace() && csaw_obs::scope::current().sink.enabled()
}

/// Emit the canonical fetch span tree (see module docs): three children
/// back-to-back from `start_us`, then the root via
/// [`csaw_obs::trace::complete_active`] so it closes the span the caller's
/// root frame opened.
pub fn emit_fetch_tree(
    start_us: u64,
    b: FetchBreakdown,
    url: &csaw_webproto::url::Url,
    transport: &str,
) {
    if !tracing_fetch() {
        return;
    }
    let detect_us = b.detect.as_micros();
    let circum_us = b.circum.as_micros();
    let transfer_us = b.transfer.as_micros();
    csaw_obs::event::span_completed_at("fetch.detect", start_us, detect_us, &[]);
    csaw_obs::event::span_completed_at("fetch.circum", start_us + detect_us, circum_us, &[]);
    csaw_obs::event::span_completed_at(
        "fetch.transfer",
        start_us + detect_us + circum_us,
        transfer_us,
        &[],
    );
    csaw_obs::trace::complete_active(
        "fetch",
        start_us,
        detect_us + circum_us + transfer_us,
        &[
            ("url", JsonValue::from(url.to_string())),
            ("transport", JsonValue::from(transport)),
            ("ok", JsonValue::from(b.ok)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_legs_sum_exactly_to_plt() {
        let plt = SimDuration::from_micros(10_000);
        let b = FetchBreakdown::served(
            plt,
            SimDuration::from_micros(4_000),
            SimDuration::from_micros(2_500),
        );
        assert_eq!(b.total(), plt);
        assert_eq!(b.transfer, SimDuration::from_micros(3_500));
        assert!(b.ok);
    }

    #[test]
    fn served_clamps_oversized_legs() {
        let plt = SimDuration::from_micros(1_000);
        let b = FetchBreakdown::served(
            plt,
            SimDuration::from_micros(5_000),
            SimDuration::from_micros(5_000),
        );
        assert_eq!(b.detect, plt);
        assert_eq!(b.circum, SimDuration::ZERO);
        assert_eq!(b.transfer, SimDuration::ZERO);
        assert_eq!(b.total(), plt);
    }

    #[test]
    fn failed_breakdown_has_no_transfer() {
        let b = FetchBreakdown::failed(SimDuration::from_secs(21), SimDuration::from_secs(5));
        assert!(!b.ok);
        assert_eq!(b.transfer, SimDuration::ZERO);
        assert_eq!(b.total(), SimDuration::from_secs(26));
    }

    #[test]
    fn emission_outside_a_trace_is_inert() {
        assert!(!tracing_fetch());
        // Must not panic or emit.
        emit_fetch_tree(
            0,
            FetchBreakdown::served(
                SimDuration::from_micros(10),
                SimDuration::ZERO,
                SimDuration::ZERO,
            ),
            &csaw_webproto::url::Url::parse("http://x.example/").unwrap(),
            "direct",
        );
    }

    #[test]
    fn emitted_tree_children_sum_to_root() {
        use csaw_obs::scope::{install, ObsCtx};
        use csaw_obs::sink::RingSink;
        use std::sync::Arc;
        let ring = Arc::new(RingSink::new(16));
        let ctx = Arc::new(ObsCtx::new().with_sink(ring.clone()));
        let _g = install(ctx);
        let _root = csaw_obs::trace::fetch_root(7, 0, 1_000);
        emit_fetch_tree(
            1_000,
            FetchBreakdown::served(
                SimDuration::from_micros(900),
                SimDuration::from_micros(300),
                SimDuration::from_micros(200),
            ),
            &csaw_webproto::url::Url::parse("http://x.example/").unwrap(),
            "https",
        );
        let evs = ring.drain();
        assert_eq!(evs.len(), 4);
        let root = evs.iter().find(|e| e.name == "fetch").unwrap();
        let kids: u64 = evs
            .iter()
            .filter(|e| e.name != "fetch")
            .map(|e| e.dur_us.unwrap())
            .sum();
        assert_eq!(root.dur_us, Some(kids));
        assert_eq!(root.trace.unwrap().parent, None);
        for e in evs.iter().filter(|e| e.name != "fetch") {
            assert_eq!(e.trace.unwrap().parent, Some(root.trace.unwrap().span));
        }
    }
}
