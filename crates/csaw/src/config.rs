//! Client configuration (§4.4 "Modular design with user customization").

use csaw_simnet::time::SimDuration;

/// What the user optimizes for. If a user prefers performance, the proxy
/// always picks local fixes when available; if anonymity, only
/// anonymity-providing transports (e.g. Tor) are ever used (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserPreference {
    /// Smallest PLT wins; anonymity not required.
    Performance,
    /// Only anonymous transports may carry user traffic.
    Anonymity,
}

/// How redundant requests are issued for unmeasured URLs (§7.1 evaluates
/// all three shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedundancyMode {
    /// Direct first; only after blocking is detected, go to circumvention
    /// (the paper's "serial" baseline).
    Serial,
    /// Both copies at once; first usable response wins ("parallel").
    Parallel,
    /// Direct at once; the redundant copy only if no direct response
    /// within the delay ("2 copies (with delay)").
    Staggered(SimDuration),
}

/// C-Saw client configuration. Defaults follow the paper's
/// recommendations (p ≤ 0.25, n = 5 exploration, parallel redundancy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsawConfig {
    /// Probability of re-measuring the direct path for a URL that the
    /// global DB reports blocked (§4.3.1 "Low overhead vs. resilience to
    /// false reports"; Table 6 sweeps this).
    pub revalidate_p: f64,
    /// Local record lifetime; expiry flips status to not-measured
    /// (churn Scenario A, §4.4).
    pub record_ttl: SimDuration,
    /// Every n-th access to a blocked URL uses a randomly chosen
    /// transport instead of the incumbent (§4.3.2).
    pub explore_every: u32,
    /// Redundancy shape for unmeasured URLs.
    pub redundancy: RedundancyMode,
    /// Performance vs. anonymity.
    pub preference: UserPreference,
    /// How often the client pulls the per-AS blocked list from the
    /// global DB.
    pub sync_interval: SimDuration,
    /// How often the client pushes its pending reports.
    pub report_interval: SimDuration,
    /// How often the client probes its egress ASN (multihoming
    /// detection, §4.4).
    pub asn_probe_interval: SimDuration,
    /// EWMA weight for per-(transport, URL) PLT tracking.
    pub plt_ewma_alpha: f64,
    /// Pending-report queue bound. When a fresh report would exceed it,
    /// the *oldest* queued report is dropped (and counted in
    /// `ClientStats::reports_dropped`) — bounded memory beats unbounded
    /// growth when the upload path is down for days.
    pub report_queue_cap: usize,
    /// First retry delay after a failed report post. Subsequent
    /// consecutive failures double it (deterministic exponential
    /// backoff) up to [`CsawConfig::report_backoff_max`].
    pub report_backoff_base: SimDuration,
    /// Backoff ceiling.
    pub report_backoff_max: SimDuration,
    /// Jitter fraction applied to each backoff delay (±fraction,
    /// drawn from the client's seeded RNG — deterministic per seed,
    /// decorrelated across clients).
    pub report_backoff_jitter: f64,
}

impl Default for CsawConfig {
    fn default() -> Self {
        CsawConfig {
            revalidate_p: 0.25,
            record_ttl: SimDuration::from_secs(24 * 3600),
            explore_every: 5,
            redundancy: RedundancyMode::Parallel,
            preference: UserPreference::Performance,
            sync_interval: SimDuration::from_secs(15 * 60),
            report_interval: SimDuration::from_secs(5 * 60),
            asn_probe_interval: SimDuration::from_secs(60),
            plt_ewma_alpha: 0.3,
            report_queue_cap: 512,
            report_backoff_base: SimDuration::from_secs(30),
            report_backoff_max: SimDuration::from_secs(3_600),
            report_backoff_jitter: 0.1,
        }
    }
}

impl CsawConfig {
    /// Builder: revalidation probability (clamped to `[0, 1]`).
    pub fn with_revalidate_p(mut self, p: f64) -> Self {
        self.revalidate_p = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: redundancy mode.
    pub fn with_redundancy(mut self, mode: RedundancyMode) -> Self {
        self.redundancy = mode;
        self
    }

    /// Builder: user preference.
    pub fn with_preference(mut self, pref: UserPreference) -> Self {
        self.preference = pref;
        self
    }

    /// Builder: record TTL.
    pub fn with_record_ttl(mut self, ttl: SimDuration) -> Self {
        self.record_ttl = ttl;
        self
    }

    /// Builder: report-queue bound (at least 1 — a zero cap could never
    /// hold the report that triggered the drop).
    pub fn with_report_queue_cap(mut self, cap: usize) -> Self {
        self.report_queue_cap = cap.max(1);
        self
    }

    /// Builder: backoff base, ceiling, and jitter fraction (jitter
    /// clamped to `[0, 1]`).
    pub fn with_report_backoff(mut self, base: SimDuration, max: SimDuration, jitter: f64) -> Self {
        self.report_backoff_base = base;
        self.report_backoff_max = max.max(base);
        self.report_backoff_jitter = jitter.clamp(0.0, 1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendations() {
        let c = CsawConfig::default();
        assert!(c.revalidate_p <= 0.25);
        assert_eq!(c.explore_every, 5);
        assert_eq!(c.redundancy, RedundancyMode::Parallel);
        assert_eq!(c.preference, UserPreference::Performance);
    }

    #[test]
    fn builder_clamps() {
        let c = CsawConfig::default().with_revalidate_p(7.0);
        assert_eq!(c.revalidate_p, 1.0);
        let c = c.with_revalidate_p(-1.0);
        assert_eq!(c.revalidate_p, 0.0);
        let c = c.with_report_queue_cap(0);
        assert_eq!(c.report_queue_cap, 1);
        let c = c.with_report_backoff(SimDuration::from_secs(60), SimDuration::from_secs(10), 3.0);
        assert_eq!(
            c.report_backoff_max,
            SimDuration::from_secs(60),
            "max >= base"
        );
        assert_eq!(c.report_backoff_jitter, 1.0);
    }
}
