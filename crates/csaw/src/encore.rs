//! Encore-style cross-origin probe source — the high-volume second
//! reporting modality.
//!
//! Burnett & Feamster's Encore measured censorship by embedding tiny
//! cross-origin fetches in third-party pages: each visitor's browser
//! reports only "could I reach this URL from here?" — no page-load
//! breakdown, no stage-by-stage diagnosis, just a reachability bit at
//! roughly an order of magnitude more vantage points than an installed
//! client base.
//!
//! [`EncoreSource`] models that population for the replication
//! experiments: a pool of `clients × factor` probe identities, each
//! posting single-report batches through the *same*
//! [`GlobalApi::ingest`] pipeline full C-Saw clients use — the server
//! cannot tell the modalities apart, which is the point: one ingest
//! path, one ledger, one replication stream. Probe reports carry
//! exactly one blocking stage (the probe saw a failure, not a
//! diagnosis) and target URLs drawn from the same list the full
//! clients report, so probes both corroborate existing records
//! (multi-voter ledger entries) and overwrite them (freshness races the
//! merge must resolve deterministically).
//!
//! Everything is derived from a [`DetRng`] forked per probe index, so
//! a source is a pure function of `(seed, config)` — no state, safe to
//! re-derive on any thread of a parallel experiment runner.

use crate::global::remote::GlobalApi;
use crate::global::server::RegistrationError;
use csaw_censor::blocking::BlockingType;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimTime;
use csaw_store::{Batch, IngestReceipt, Report, StoreError, Uuid};

/// Knobs for an Encore-style probe population.
#[derive(Debug, Clone)]
pub struct EncoreConfig {
    /// Probe identities (typically ~10× the full-client count).
    pub probes: usize,
    /// Reports each probe posts over the experiment horizon.
    pub probes_per_client: usize,
    /// Target URLs, shared with the full-client population so probe
    /// votes corroborate (and race) full-client records.
    pub targets: Vec<String>,
    /// The AS every probe in this population observes from.
    pub asn: u32,
}

impl Default for EncoreConfig {
    fn default() -> Self {
        EncoreConfig {
            probes: 40,
            probes_per_client: 2,
            targets: Vec::new(),
            asn: 1,
        }
    }
}

/// A deterministic Encore probe population (see the module docs).
#[derive(Debug, Clone)]
pub struct EncoreSource {
    seed: u64,
    cfg: EncoreConfig,
}

/// The failure mode a probe can actually distinguish: the cross-origin
/// fetch either timed out or errored. No PLT breakdown, no stage
/// diagnosis — a single coarse stage per report.
const PROBE_STAGES: [BlockingType; 2] = [BlockingType::HttpDrop, BlockingType::IpDrop];

impl EncoreSource {
    /// Build a probe population over `cfg`, derived from `seed`.
    pub fn new(seed: u64, cfg: EncoreConfig) -> EncoreSource {
        EncoreSource { seed, cfg }
    }

    /// Probe identities in this population.
    pub fn probe_count(&self) -> usize {
        self.cfg.probes
    }

    /// Total reports this population posts over a full run.
    pub fn total_reports(&self) -> usize {
        self.cfg.probes * self.cfg.probes_per_client
    }

    fn rng_for(&self, probe_idx: usize) -> DetRng {
        DetRng::new(self.seed ^ (probe_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .fork("encore")
    }

    /// Register probe `probe_idx` with the server. Probes are
    /// transient browser visitors, so their sybil-risk score is low
    /// but nonzero.
    pub fn register<G: GlobalApi + ?Sized>(
        &self,
        server: &G,
        probe_idx: usize,
        now: SimTime,
    ) -> Result<Uuid, RegistrationError> {
        let mut rng = self.rng_for(probe_idx);
        server.register(now, rng.range_f64(0.0, 0.2))
    }

    /// The `round`-th report batch for probe `probe_idx`: one tiny
    /// cross-origin reachability report. Pure — same arguments, same
    /// batch, on any thread.
    pub fn probe_batch(&self, probe_idx: usize, round: usize, uuid: Uuid, now: SimTime) -> Batch {
        let mut rng = self.rng_for(probe_idx).fork(&format!("round{round}"));
        let url = if self.cfg.targets.is_empty() {
            format!("http://encore-{probe_idx}.example/")
        } else {
            self.cfg.targets[rng.index(self.cfg.targets.len())].clone()
        };
        let report = Report {
            url,
            asn: self.cfg.asn,
            measured_at_us: now.as_micros().saturating_sub(rng.range_u64(0, 5_000_000)),
            stages: vec![PROBE_STAGES[rng.index(PROBE_STAGES.len())]],
        };
        Batch::new(uuid, vec![report], now)
    }

    /// Post the `round`-th probe of `probe_idx` through the standard
    /// ingest pipeline.
    pub fn post<G: GlobalApi + ?Sized>(
        &self,
        server: &G,
        probe_idx: usize,
        round: usize,
        uuid: Uuid,
        now: SimTime,
    ) -> Result<IngestReceipt, StoreError> {
        server.ingest(self.probe_batch(probe_idx, round, uuid, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::server::{RegistrarConfig, ServerDb};
    use csaw_simnet::time::SimDuration;
    use csaw_simnet::topology::Asn;
    use csaw_store::ConfidenceFilter;

    fn source(targets: &[&str]) -> EncoreSource {
        EncoreSource::new(
            11,
            EncoreConfig {
                probes: 8,
                probes_per_client: 2,
                targets: targets.iter().map(|s| s.to_string()).collect(),
                asn: 77,
            },
        )
    }

    fn permissive_server() -> ServerDb {
        ServerDb::builder(3)
            .shards(4)
            .registrar(RegistrarConfig {
                max_risk: 1.0,
                max_per_window: usize::MAX,
                window: SimDuration::from_secs(3600),
            })
            .build()
            .unwrap()
    }

    #[test]
    fn probe_batches_are_deterministic_and_tiny() {
        let s = source(&["http://x.example/", "http://y.example/"]);
        let uuid = Uuid::from_raw(42);
        let a = s.probe_batch(3, 1, uuid, SimTime::from_secs(9));
        let b = s.probe_batch(3, 1, uuid, SimTime::from_secs(9));
        assert_eq!(a.reports(), b.reports());
        assert_eq!(a.reports().len(), 1, "Encore probes are single-report");
        assert_eq!(a.reports()[0].stages.len(), 1, "no stage breakdown");
        assert!(a.reports()[0].measured_at_us <= 9_000_000);
    }

    #[test]
    fn different_probes_and_rounds_diverge() {
        let s = source(&["http://x.example/", "http://y.example/"]);
        let uuid = Uuid::from_raw(42);
        let base = s.probe_batch(0, 0, uuid, SimTime::from_secs(9));
        let other_probe = s.probe_batch(1, 0, uuid, SimTime::from_secs(9));
        let other_round = s.probe_batch(0, 1, uuid, SimTime::from_secs(9));
        assert!(
            base.reports() != other_probe.reports() || base.reports() != other_round.reports(),
            "rng forks must actually fork"
        );
    }

    #[test]
    fn probes_flow_through_the_standard_ingest_pipeline() {
        let s = source(&["http://blocked.example/"]);
        let server = permissive_server();
        let mut posted = 0usize;
        for p in 0..s.probe_count() {
            let uuid = s.register(&server, p, SimTime::from_secs(p as u64)).unwrap();
            for round in 0..2 {
                let receipt = s
                    .post(&server, p, round, uuid, SimTime::from_secs(10 + p as u64))
                    .unwrap();
                posted += receipt.accepted;
            }
        }
        assert_eq!(posted, s.total_reports());
        // All probes hit the same URL from the same AS: one record,
        // many voters.
        let records = server
            .blocked_for_as(Asn(77), &ConfidenceFilter::default())
            .unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            server.store().tally("http://blocked.example/", Asn(77)).n,
            s.probe_count()
        );
    }
}
