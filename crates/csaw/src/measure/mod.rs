//! The measurement module (§4.3.1): the Fig. 4 detector and the
//! redundant-request machinery that Algorithm 1 drives.

pub mod detect;
pub mod nonweb;
pub mod redundancy;

pub use detect::{
    failure_to_blocking, measure_direct, DetectConfig, DirectMeasurement, MeasuredStatus,
};
pub use nonweb::{measure_udp_service, UdpMeasurement};
pub use redundancy::{fetch_with_redundancy, RedundantOutcome, ServedFrom};
