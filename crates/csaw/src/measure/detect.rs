//! The in-line blocking detector — Figure 4 of the paper.
//!
//! Given a URL, the detector drives the direct path through its protocol
//! stages and classifies what it sees:
//!
//! 1. **Local DNS query.** A clean resolution proceeds; no response,
//!    NXDOMAIN, SERVFAIL, REFUSED, or a resolution into private/reserved
//!    space is DNS-stage evidence, and the detector falls back to a
//!    **global DNS query** (GDNS) — both to confirm the anomaly (an
//!    honest NXDOMAIN from both resolvers is a dead domain, not
//!    censorship) and to obtain a usable address.
//! 2. **TCP connect.** A timeout is IP blocking (`IpDrop`, the 21 s
//!    ladder); an injected reset is `IpRst`.
//! 3. **TLS.** A stalled or reset handshake on a blacklisted SNI.
//! 4. **HTTP.** A dropped GET, an injected RST, or a returned document —
//!    which then passes through the 2-phase block-page detector
//!    (phase 1 on the markup alone; phase 2 against the circumvention
//!    copy's size when one is available).
//!
//! Multi-stage blocking accumulates: DNS evidence followed by an IP-stage
//! timeout yields `[DnsServfail, IpDrop]` — the paper's 32.7 s case.

use csaw_blockpage::{Phase1Config, Phase1Verdict, Phase2Config};
use csaw_censor::blocking::BlockingType;
use csaw_circumvent::fetch::{direct_like_fetch, DirectOpts, FetchReport};
use csaw_circumvent::outcome::{FailureKind, FetchOutcome};
use csaw_circumvent::world::{DnsServer, World};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimDuration;
use csaw_simnet::topology::Provider;
use csaw_webproto::url::Url;

/// Detector configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectConfig {
    /// Phase-1 block-page heuristic thresholds.
    pub phase1: Phase1Config,
    /// Phase-2 size-comparison threshold.
    pub phase2: Phase2Config,
}

/// The measured status of the direct path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasuredStatus {
    /// Censorship observed; mechanisms in `stages`.
    Blocked,
    /// The direct path delivered the genuine page.
    NotBlocked,
    /// The direct path failed, but not in a way attributable to
    /// censorship without corroboration (e.g. the circumvention path
    /// failed too — a network problem), or the name simply doesn't exist.
    Inconclusive,
}

/// The result of measuring the direct path for one URL.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectMeasurement {
    /// Classification.
    pub status: MeasuredStatus,
    /// Stage-1..k mechanisms (empty unless `Blocked`).
    pub stages: Vec<BlockingType>,
    /// Virtual time from request to the blocking *declaration* (Table 5's
    /// metric). For `NotBlocked` this equals the full fetch time.
    pub detection_time: SimDuration,
    /// Total time the measurement consumed (includes the GDNS fallback
    /// and any post-detection work).
    pub elapsed: SimDuration,
    /// The page delivered by the direct path, when one was (possibly via
    /// the GDNS local fix).
    pub page_bytes: Option<u64>,
    /// Did phase 1 flag the returned document?
    pub phase1_flagged: bool,
    /// Was the genuine page obtained via the public-DNS fallback (i.e.
    /// the local fix already worked during measurement)?
    pub served_via_gdns: bool,
}

/// Map an observed failure to the blocking mechanism it evidences.
pub fn failure_to_blocking(kind: FailureKind) -> Option<BlockingType> {
    match kind {
        FailureKind::DnsNoResponse => Some(BlockingType::DnsNoResponse),
        FailureKind::DnsNxdomain => Some(BlockingType::DnsNxdomain),
        FailureKind::DnsServfail => Some(BlockingType::DnsServfail),
        FailureKind::DnsRefused => Some(BlockingType::DnsRefused),
        FailureKind::DnsForgedResolution => Some(BlockingType::DnsHijack),
        FailureKind::ConnectTimeout => Some(BlockingType::IpDrop),
        FailureKind::ConnectReset => Some(BlockingType::IpRst),
        FailureKind::TlsTimeout => Some(BlockingType::SniDrop),
        FailureKind::TlsReset => Some(BlockingType::SniRst),
        FailureKind::HttpGetTimeout => Some(BlockingType::HttpDrop),
        FailureKind::HttpReset => Some(BlockingType::HttpRst),
        FailureKind::TransportUnavailable => None,
    }
}

fn is_dns_stage(kind: FailureKind) -> bool {
    matches!(
        kind,
        FailureKind::DnsNoResponse
            | FailureKind::DnsNxdomain
            | FailureKind::DnsServfail
            | FailureKind::DnsRefused
            | FailureKind::DnsForgedResolution
    )
}

/// Measure the direct path for `url`, with the optional size of the
/// circumvention copy's response (`circ_bytes`) enabling phase-2
/// confirmation of suspected block pages.
pub fn measure_direct(
    world: &World,
    provider: &Provider,
    url: &Url,
    circ_bytes: Option<u64>,
    cfg: &DetectConfig,
    rng: &mut DetRng,
) -> DirectMeasurement {
    let opts = DirectOpts {
        reject_private_resolution: true,
        ..DirectOpts::default()
    };
    let first = direct_like_fetch(world, provider, url, &opts, rng);
    let m = classify_attempt(world, provider, url, first, circ_bytes, cfg, rng);
    observe_measurement(&m);
    m
}

/// Record the Table-5 telemetry for one finished measurement: a verdict
/// counter plus detection-time histograms — one overall, one keyed by
/// the stage signature (stage names joined with `+`, so the paper's
/// 32.7 s `DnsServfail+IpDrop` ladder is separable from the 10.6 s
/// DNS-only one).
fn observe_measurement(m: &DirectMeasurement) {
    let ctx = csaw_obs::scope::current();
    match m.status {
        MeasuredStatus::Blocked => {
            ctx.registry.counter("detect.blocked").inc();
            let us = m.detection_time.as_micros();
            ctx.registry.histogram("detect.time_s").observe_us(us);
            let sig = m
                .stages
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join("+");
            ctx.registry
                .histogram(&format!("detect.time_s.{sig}"))
                .observe_us(us);
        }
        MeasuredStatus::NotBlocked => ctx.registry.counter("detect.not_blocked").inc(),
        MeasuredStatus::Inconclusive => ctx.registry.counter("detect.inconclusive").inc(),
    }
}

fn classify_attempt(
    world: &World,
    provider: &Provider,
    url: &Url,
    first: FetchReport,
    circ_bytes: Option<u64>,
    cfg: &DetectConfig,
    rng: &mut DetRng,
) -> DirectMeasurement {
    match first.outcome {
        FetchOutcome::Page(ref page) => classify_page(
            page.bytes,
            &page.html,
            page.redirected,
            first.elapsed,
            circ_bytes,
            cfg,
            false,
        ),
        FetchOutcome::Failed(kind) if is_dns_stage(kind) => {
            // DNS anomaly: detection of the DNS stage happened now; fall
            // back to the global resolver for confirmation and an
            // address (Fig. 4's GDNS box).
            let dns_detect = first.elapsed;
            let mut stages = Vec::new();
            let gdns_opts = DirectOpts {
                dns: DnsServer::Public,
                reject_private_resolution: true,
                ..DirectOpts::default()
            };
            let second = direct_like_fetch(world, provider, url, &gdns_opts, rng);
            let total = first.elapsed + second.elapsed;
            // Stage spans make the detection ladders visible in traces:
            // the local-DNS anomaly, then the Fig.-4 GDNS fallback.
            let ctx = csaw_obs::scope::current();
            if ctx.sink.enabled() {
                csaw_obs::event::span_completed(
                    "detect.stage.ldns",
                    first.elapsed.as_micros(),
                    &[(
                        "failure",
                        csaw_obs::json::JsonValue::from(format!("{kind:?}")),
                    )],
                );
                csaw_obs::event::span_completed(
                    "detect.stage.gdns",
                    second.elapsed.as_micros(),
                    &[],
                );
            }
            match second.outcome {
                FetchOutcome::Page(page) => {
                    // GDNS produced a document: the local DNS anomaly is
                    // confirmed censorship... unless the document itself
                    // is a block page (then HTTP blocking is also live).
                    stages.push(failure_to_blocking(kind).expect("dns kinds map"));
                    let mut m = classify_page(
                        page.bytes,
                        &page.html,
                        page.redirected,
                        total,
                        circ_bytes,
                        cfg,
                        true,
                    );
                    match m.status {
                        MeasuredStatus::Blocked => {
                            // Multi-stage: DNS + HTTP block page.
                            stages.extend(m.stages);
                            m.stages = stages;
                            m.detection_time = dns_detect;
                        }
                        _ => {
                            // Genuine page via GDNS: DNS-only blocking.
                            m.status = MeasuredStatus::Blocked;
                            m.stages = stages;
                            m.detection_time = dns_detect;
                        }
                    }
                    m
                }
                FetchOutcome::Failed(k2) => {
                    if kind == FailureKind::DnsNxdomain && k2 == FailureKind::DnsNxdomain {
                        // Both resolvers agree the name doesn't exist:
                        // a dead domain, not censorship.
                        return DirectMeasurement {
                            status: MeasuredStatus::Inconclusive,
                            stages: Vec::new(),
                            detection_time: total,
                            elapsed: total,
                            page_bytes: None,
                            phase1_flagged: false,
                            served_via_gdns: false,
                        };
                    }
                    stages.push(failure_to_blocking(kind).expect("dns kinds map"));
                    if let Some(b2) = failure_to_blocking(k2) {
                        if !stages.contains(&b2) {
                            stages.push(b2); // multi-stage (e.g. DNS + IP)
                        }
                    }
                    DirectMeasurement {
                        status: MeasuredStatus::Blocked,
                        stages,
                        detection_time: total,
                        elapsed: total,
                        page_bytes: None,
                        phase1_flagged: false,
                        served_via_gdns: false,
                    }
                }
            }
        }
        FetchOutcome::Failed(kind) => {
            let ctx = csaw_obs::scope::current();
            if ctx.sink.enabled() {
                csaw_obs::event::span_completed(
                    "detect.stage.direct",
                    first.elapsed.as_micros(),
                    &[(
                        "failure",
                        csaw_obs::json::JsonValue::from(format!("{kind:?}")),
                    )],
                );
            }
            let stages: Vec<BlockingType> = failure_to_blocking(kind).into_iter().collect();
            let status = if stages.is_empty() {
                MeasuredStatus::Inconclusive
            } else {
                // Provisionally blocked; the redundancy layer downgrades
                // to Inconclusive when the circumvention copy also failed
                // (a shared network problem).
                MeasuredStatus::Blocked
            };
            DirectMeasurement {
                status,
                stages,
                detection_time: first.elapsed,
                elapsed: first.elapsed,
                page_bytes: None,
                phase1_flagged: false,
                served_via_gdns: false,
            }
        }
    }
}

/// Classify a delivered document with the 2-phase detector. `redirected`
/// is the client-observable fact that the document arrived via an HTTP
/// redirect bounce — it distinguishes ISP-A-style redirect block pages
/// from ISP-B-style in-band ones (Table 1).
fn classify_page(
    bytes: u64,
    html: &str,
    redirected: bool,
    elapsed: SimDuration,
    circ_bytes: Option<u64>,
    cfg: &DetectConfig,
    via_gdns: bool,
) -> DirectMeasurement {
    let flagged = csaw_blockpage::phase1_html(html, &cfg.phase1) == Phase1Verdict::BlockPage;
    if flagged {
        // Phase 2 confirms against the circumvention copy when available;
        // without one, phase-1 evidence stands (the copy will arrive and
        // correct a rare false positive).
        let confirmed = match circ_bytes {
            Some(cb) => csaw_blockpage::phase2(bytes, cb, &cfg.phase2),
            None => true,
        };
        if confirmed {
            let stage = if redirected {
                BlockingType::HttpBlockPageRedirect
            } else {
                BlockingType::HttpBlockPageInline
            };
            return DirectMeasurement {
                status: MeasuredStatus::Blocked,
                stages: vec![stage],
                detection_time: elapsed,
                elapsed,
                page_bytes: Some(bytes),
                phase1_flagged: true,
                served_via_gdns: via_gdns,
            };
        }
        // Phase-1 false positive corrected by phase 2.
        return DirectMeasurement {
            status: MeasuredStatus::NotBlocked,
            stages: Vec::new(),
            detection_time: elapsed,
            elapsed,
            page_bytes: Some(bytes),
            phase1_flagged: true,
            served_via_gdns: via_gdns,
        };
    }
    // Phase 1 cleared it. If a circumvention copy is around, its size can
    // still unmask a portal-style block page (phase-1 false negative).
    if let Some(cb) = circ_bytes {
        if csaw_blockpage::phase2(bytes, cb, &cfg.phase2) {
            return DirectMeasurement {
                status: MeasuredStatus::Blocked,
                stages: vec![BlockingType::HttpBlockPageInline],
                detection_time: elapsed,
                elapsed,
                page_bytes: Some(bytes),
                phase1_flagged: false,
                served_via_gdns: via_gdns,
            };
        }
    }
    DirectMeasurement {
        status: MeasuredStatus::NotBlocked,
        stages: Vec::new(),
        detection_time: elapsed,
        elapsed,
        page_bytes: Some(bytes),
        phase1_flagged: false,
        served_via_gdns: via_gdns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::blocking::{DnsTamper, HttpAction, IpAction, TlsAction};
    use csaw_censor::profiles;
    use csaw_circumvent::world::SiteSpec;
    use csaw_simnet::topology::{AccessNetwork, Asn, Region, Site};

    fn world_with(policy: csaw_censor::CensorPolicy, asn: Asn) -> (World, Provider) {
        let provider = Provider::new(asn, "isp");
        let access = AccessNetwork::single(provider.clone());
        let w = World::builder(access)
            .site(
                SiteSpec::new("victim.example", Site::at_vantage_rtt(Region::UsEast, 186))
                    .default_page(360_000, 12),
            )
            .censor(asn, policy)
            .build();
        (w, provider)
    }

    fn single(
        dns: DnsTamper,
        ip: IpAction,
        http: HttpAction,
        tls: TlsAction,
    ) -> csaw_censor::CensorPolicy {
        profiles::single_mechanism("t", "victim.example", dns, ip, http, tls)
    }

    fn measure(policy: csaw_censor::CensorPolicy, url: &str, seed: u64) -> DirectMeasurement {
        let (w, p) = world_with(policy, Asn(5));
        let mut rng = DetRng::new(seed);
        measure_direct(
            &w,
            &p,
            &Url::parse(url).unwrap(),
            None,
            &DetectConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn clean_path_not_blocked() {
        let m = measure(profiles::clean(), "http://victim.example/", 1);
        assert_eq!(m.status, MeasuredStatus::NotBlocked);
        assert!(m.stages.is_empty());
        assert!(m.page_bytes.unwrap() > 100_000);
    }

    #[test]
    fn tcp_ip_blocking_detected_at_21s() {
        let m = measure(
            single(
                DnsTamper::None,
                IpAction::Drop,
                HttpAction::None,
                TlsAction::None,
            ),
            "http://victim.example/",
            2,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::IpDrop]);
        // 21 s ladder plus the DNS RTT.
        assert!(
            m.detection_time >= SimDuration::from_secs(21)
                && m.detection_time < SimDuration::from_millis(21_300),
            "{}",
            m.detection_time
        );
    }

    #[test]
    fn servfail_detected_around_10_6s_and_page_served_via_gdns() {
        let m = measure(
            single(
                DnsTamper::Servfail,
                IpAction::None,
                HttpAction::None,
                TlsAction::None,
            ),
            "http://victim.example/",
            3,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::DnsServfail]);
        assert!(
            m.detection_time >= SimDuration::from_millis(10_600)
                && m.detection_time <= SimDuration::from_millis(11_200),
            "{}",
            m.detection_time
        );
        assert!(m.served_via_gdns);
        assert!(m.page_bytes.is_some(), "GDNS local fix already delivered");
    }

    #[test]
    fn refused_detected_in_milliseconds() {
        let m = measure(
            single(
                DnsTamper::Refused,
                IpAction::None,
                HttpAction::None,
                TlsAction::None,
            ),
            "http://victim.example/",
            4,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::DnsRefused]);
        assert!(
            m.detection_time < SimDuration::from_millis(80),
            "{}",
            m.detection_time
        );
    }

    #[test]
    fn multi_stage_dns_plus_ip_around_32s() {
        let m = measure(
            single(
                DnsTamper::Servfail,
                IpAction::Drop,
                HttpAction::None,
                TlsAction::None,
            ),
            "http://victim.example/",
            5,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(
            m.stages,
            vec![BlockingType::DnsServfail, BlockingType::IpDrop]
        );
        assert!(
            m.detection_time >= SimDuration::from_millis(31_000)
                && m.detection_time <= SimDuration::from_millis(33_500),
            "{}",
            m.detection_time
        );
    }

    #[test]
    fn block_page_detected_fast() {
        let m = measure(
            single(
                DnsTamper::None,
                IpAction::None,
                HttpAction::BlockPageRedirect,
                TlsAction::None,
            ),
            "http://victim.example/",
            6,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::HttpBlockPageRedirect]);
        assert!(m.phase1_flagged);
        assert!(
            m.detection_time > SimDuration::from_millis(900)
                && m.detection_time < SimDuration::from_millis(3_500),
            "{}",
            m.detection_time
        );
    }

    #[test]
    fn hijack_recognized_instantly_with_gdns_recovery() {
        let m = measure(
            single(
                DnsTamper::HijackTo("10.9.9.9".parse().unwrap()),
                IpAction::None,
                HttpAction::None,
                TlsAction::None,
            ),
            "http://victim.example/",
            7,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::DnsHijack]);
        assert!(m.detection_time < SimDuration::from_millis(100));
        assert!(m.served_via_gdns);
    }

    #[test]
    fn http_drop_burns_get_timeout() {
        let m = measure(
            single(
                DnsTamper::None,
                IpAction::None,
                HttpAction::Drop,
                TlsAction::None,
            ),
            "http://victim.example/",
            8,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::HttpDrop]);
        assert!(m.detection_time >= SimDuration::from_secs(30));
    }

    #[test]
    fn sni_blocking_on_https() {
        let m = measure(
            single(
                DnsTamper::None,
                IpAction::None,
                HttpAction::None,
                TlsAction::Drop,
            ),
            "https://victim.example/",
            9,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::SniDrop]);
    }

    #[test]
    fn https_cannot_be_block_paged() {
        // A censor that only knows how to serve block pages over plaintext
        // HTTP has nothing on an HTTPS fetch — the TLS-wrapped request is
        // invisible to its HTTP stage.
        let m = measure(
            single(
                DnsTamper::None,
                IpAction::None,
                HttpAction::BlockPageInline,
                TlsAction::None,
            ),
            "https://victim.example/",
            21,
        );
        assert_eq!(m.status, MeasuredStatus::NotBlocked);
        assert!(m.page_bytes.is_some());
    }

    #[test]
    fn dead_domain_is_inconclusive_not_censorship() {
        let m = measure(profiles::clean(), "http://no-such-site.example/", 10);
        assert_eq!(m.status, MeasuredStatus::Inconclusive);
        assert!(m.stages.is_empty());
    }

    #[test]
    fn forged_nxdomain_detected_via_gdns_disagreement() {
        let m = measure(
            single(
                DnsTamper::Nxdomain,
                IpAction::None,
                HttpAction::None,
                TlsAction::None,
            ),
            "http://victim.example/",
            11,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::DnsNxdomain]);
        assert!(m.served_via_gdns);
    }

    #[test]
    fn phase2_unmasks_portal_block_page() {
        // Portal-style block page: phase 1 clears it, size comparison
        // against the circumvention copy does not.
        let portal = &csaw_blockpage::corpus_47()[40]; // a PortalStyle entry
        assert!(!portal.phase1_catchable());
        let m = classify_page(
            portal.len() as u64,
            &portal.html,
            false,
            SimDuration::from_millis(500),
            Some(360_000),
            &DetectConfig::default(),
            false,
        );
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::HttpBlockPageInline]);
        assert!(!m.phase1_flagged);
    }

    #[test]
    fn phase1_false_positive_corrected_by_phase2() {
        let html = "<html><body><p>court order archive</p></body></html>";
        let m = classify_page(
            html.len() as u64,
            html,
            false,
            SimDuration::from_millis(300),
            Some(html.len() as u64),
            &DetectConfig::default(),
            false,
        );
        assert_eq!(m.status, MeasuredStatus::NotBlocked);
        assert!(m.phase1_flagged);
    }
}
