//! Redundant requests (§4.3.1) — the mechanism that makes detection fast
//! *and* keeps the user experience intact.
//!
//! For a URL with `not-measured` status, C-Saw issues the request on the
//! direct path and on a circumvention path. The shapes evaluated in §7.1:
//!
//! - **Serial**: direct first; only after blocking is detected does the
//!   circumvention copy go out. Simple, slow on blocked pages (blocking
//!   detection can cost 21–33 s).
//! - **Parallel**: both at once; the user sees the first usable response.
//!   45.8–64.1% PLT reduction on blocked pages (Fig. 5a), at the cost of
//!   extra load on unblocked fetches (Fig. 5b/c).
//! - **Staggered(d)**: direct at once, the copy only if no direct
//!   response within `d`. Recovers the single-copy median at some tail
//!   cost (Fig. 5b/c's "2 copies (with delay)").
//!
//! Redundancy also *disambiguates*: a direct failure with a successful
//! circumvention copy is censorship; both failing is a network problem
//! (the paths share the access link), and the URL is **not** marked
//! blocked.

use crate::config::RedundancyMode;
use crate::measure::detect::{measure_direct, DetectConfig, DirectMeasurement, MeasuredStatus};
use csaw_circumvent::fetch::FetchReport;
use csaw_circumvent::transports::{FetchCtx, Transport};
use csaw_circumvent::world::World;
use csaw_simnet::load::LoadModel;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimDuration;
use csaw_webproto::url::Url;

/// Where the user-visible response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// The direct path delivered the genuine page.
    Direct,
    /// The circumvention path's copy was served.
    Circumvention,
    /// The direct path served a page that was later unmasked as a block
    /// page; the browser was refreshed with the circumvention copy.
    CircumventionAfterRefresh,
    /// Nothing usable arrived.
    Nothing,
}

/// The outcome of a redundant fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct RedundantOutcome {
    /// When the user had usable content (the PLT that counts).
    pub user_plt: Option<SimDuration>,
    /// What the user was served.
    pub served_from: ServedFrom,
    /// The direct-path measurement (status possibly downgraded to
    /// `Inconclusive` when the circumvention copy corroborated a network
    /// problem).
    pub measurement: DirectMeasurement,
    /// The circumvention copy's report, if one was sent.
    pub circumvention: Option<FetchReport>,
}

/// Issue a redundant fetch for a not-measured URL.
///
/// `circ` is the circumvention transport carrying the redundant copy
/// (Tor by default in the paper's experiments). POST requests must not be
/// duplicated — callers enforce that (the paper duplicates GETs only).
///
/// When a trace frame is active (see [`crate::tracing`]), the outcome is
/// also emitted as the canonical fetch span tree, decomposing the user
/// PLT into detection, circumvention setup, and transfer.
#[allow(clippy::too_many_arguments)] // the redundancy engine genuinely spans all these concerns
pub fn fetch_with_redundancy(
    world: &World,
    ctx: &FetchCtx,
    url: &Url,
    mode: RedundancyMode,
    circ: &mut dyn Transport,
    detect_cfg: &DetectConfig,
    load: &LoadModel,
    rng: &mut DetRng,
) -> RedundantOutcome {
    let out = fetch_with_redundancy_inner(world, ctx, url, mode, circ, detect_cfg, load, rng);
    if crate::tracing::tracing_fetch() {
        emit_redundant_tree(ctx, url, circ.name(), &out);
    }
    out
}

/// Map a [`RedundantOutcome`] onto the canonical PLT decomposition and
/// emit it as this fetch's span tree.
///
/// The detection leg is `plt − copy_elapsed`, which unifies the three
/// redundancy shapes: serial pays the full direct measurement before the
/// copy starts, parallel overlaps it entirely (zero-width detection
/// leg), and staggered pays exactly the stagger delay. The setup leg is
/// the copy's connection-establishment step; the transfer leg is the
/// remainder, so the three children always sum to the root PLT exactly.
fn emit_redundant_tree(ctx: &FetchCtx, url: &Url, circ_name: &str, out: &RedundantOutcome) {
    use crate::tracing::FetchBreakdown;
    let start_us = ctx.now.as_micros();
    let copy_connect = |c: &FetchReport| {
        c.trace
            .iter()
            .find_map(|s| match s {
                csaw_circumvent::fetch::Step::Connect { elapsed, .. } => Some(*elapsed),
                _ => None,
            })
            .unwrap_or(SimDuration::ZERO)
    };
    let (b, transport) = match (out.served_from, out.user_plt, &out.circumvention) {
        (ServedFrom::Direct, Some(plt), _) => (
            FetchBreakdown::served(plt, SimDuration::ZERO, SimDuration::ZERO),
            "direct",
        ),
        (ServedFrom::Circumvention | ServedFrom::CircumventionAfterRefresh, Some(plt), c) => {
            let copy = c.as_ref().map(|c| c.elapsed).unwrap_or(SimDuration::ZERO);
            let setup = c.as_ref().map(copy_connect).unwrap_or(SimDuration::ZERO);
            (
                FetchBreakdown::served(plt, plt.saturating_sub(copy), setup),
                circ_name,
            )
        }
        (_, _, c) => (
            FetchBreakdown::failed(
                out.measurement.elapsed,
                c.as_ref().map(|c| c.elapsed).unwrap_or(SimDuration::ZERO),
            ),
            "none",
        ),
    };
    crate::tracing::emit_fetch_tree(start_us, b, url, transport);
}

#[allow(clippy::too_many_arguments)]
fn fetch_with_redundancy_inner(
    world: &World,
    ctx: &FetchCtx,
    url: &Url,
    mode: RedundancyMode,
    circ: &mut dyn Transport,
    detect_cfg: &DetectConfig,
    load: &LoadModel,
    rng: &mut DetRng,
) -> RedundantOutcome {
    match mode {
        RedundancyMode::Serial => {
            let m = measure_direct(world, &ctx.provider, url, None, detect_cfg, rng);
            match m.status {
                MeasuredStatus::NotBlocked => RedundantOutcome {
                    user_plt: Some(m.elapsed),
                    served_from: ServedFrom::Direct,
                    measurement: m,
                    circumvention: None,
                },
                _ => {
                    // Only now does the circumvention copy go out.
                    let c = circ.fetch(world, ctx, url, rng);
                    let total = m.elapsed + c.elapsed;
                    let (plt, from) = if c.outcome.is_genuine_page() {
                        (Some(total), ServedFrom::Circumvention)
                    } else {
                        (None, ServedFrom::Nothing)
                    };
                    let measurement = corroborate(m, &c);
                    RedundantOutcome {
                        user_plt: plt,
                        served_from: from,
                        measurement,
                        circumvention: Some(c),
                    }
                }
            }
        }
        RedundancyMode::Parallel => {
            // Both copies in flight. Each taxes the other in proportion
            // to the data it moves: a direct copy that dies in a black
            // hole moves nothing; a block page is a sliver of a real
            // page; a genuine duplicate is a full extra unit.
            let mut c = circ.fetch(world, ctx, url, rng);
            let circ_bytes = c.outcome.page().map(|p| p.bytes);
            let mut m = measure_direct(world, &ctx.provider, url, circ_bytes, detect_cfg, rng);
            let direct_bytes = m.page_bytes.unwrap_or(0);
            let cb = circ_bytes.unwrap_or(0);
            let weight_on_circ = if cb > 0 {
                (direct_bytes as f64 / cb as f64).min(1.0)
            } else {
                0.0
            };
            let weight_on_direct = if direct_bytes > 0 {
                (cb as f64 / direct_bytes as f64).min(1.0)
            } else {
                0.0
            };
            c.elapsed = load.inflate_weighted(c.elapsed, weight_on_circ, rng);
            m.elapsed = load.inflate_weighted(m.elapsed, weight_on_direct, rng);
            m.detection_time = m.detection_time.min(m.elapsed);
            combine_parallel(m, c, SimDuration::ZERO)
        }
        RedundancyMode::Staggered(delay) => {
            let mut m = measure_direct(world, &ctx.provider, url, None, detect_cfg, rng);
            if m.status == MeasuredStatus::NotBlocked && m.elapsed <= delay {
                // Direct answered before the stagger fired: single copy,
                // no load tax — the whole point of the delay.
                return RedundantOutcome {
                    user_plt: Some(m.elapsed),
                    served_from: ServedFrom::Direct,
                    measurement: m,
                    circumvention: None,
                };
            }
            // The copy goes out at `delay`; the overlap (and hence the
            // load tax) covers only the post-delay portion, scaled by
            // relative data volume like the parallel case.
            let mut c = circ.fetch(world, ctx, url, rng);
            let direct_bytes = m.page_bytes.unwrap_or(0);
            let cb = c.outcome.page().map(|p| p.bytes).unwrap_or(0);
            let overlap =
                1.0 - (delay.as_secs_f64() / m.elapsed.as_secs_f64().max(f64::EPSILON)).min(1.0);
            let weight_on_circ = if cb > 0 {
                (direct_bytes as f64 / cb as f64).min(1.0)
            } else {
                0.0
            };
            let weight_on_direct = if direct_bytes > 0 {
                (cb as f64 / direct_bytes as f64).min(1.0) * overlap
            } else {
                0.0
            };
            c.elapsed = load.inflate_weighted(c.elapsed, weight_on_circ, rng);
            m.elapsed = load.inflate_weighted(m.elapsed, weight_on_direct, rng);
            // Re-run phase-2 opportunity: the copy's size arrives late,
            // but the measurement semantics are unchanged for blocked
            // outcomes; portal-style unmasking needs the copy, which the
            // staggered mode also eventually provides. (Handled by the
            // caller's bookkeeping via `measurement.page_bytes`.)
            combine_parallel(m, c, delay)
        }
    }
}

/// Merge a direct measurement and a circumvention copy under parallel
/// semantics: first usable response wins; the copy starts `offset` after
/// the direct request.
fn combine_parallel(m: DirectMeasurement, c: FetchReport, offset: SimDuration) -> RedundantOutcome {
    let circ_done = offset + c.elapsed;
    let circ_ok = c.outcome.is_genuine_page();
    match m.status {
        MeasuredStatus::NotBlocked => {
            // Phase 1 cleared the direct response: serve it immediately
            // (the paper's fast path) — even if the copy would have been
            // faster, the direct page is shown when it arrives; take the
            // earlier of the two usable responses.
            let plt = if circ_ok {
                m.elapsed.min(circ_done)
            } else {
                m.elapsed
            };
            let from = if circ_ok && circ_done < m.elapsed {
                ServedFrom::Circumvention
            } else {
                ServedFrom::Direct
            };
            RedundantOutcome {
                user_plt: Some(plt),
                served_from: from,
                measurement: m,
                circumvention: Some(c),
            }
        }
        MeasuredStatus::Blocked => {
            if circ_ok {
                // Blocking on the direct path; the copy serves the user.
                // If the block page had been *served* (phase-1 false
                // negative unmasked by phase 2), the refresh lands when
                // the copy arrives.
                let refresh = m.phase1_flagged
                    || m.stages
                        .iter()
                        .any(|s| matches!(s, csaw_censor::BlockingType::HttpBlockPageInline));
                RedundantOutcome {
                    user_plt: Some(circ_done),
                    served_from: if refresh {
                        ServedFrom::CircumventionAfterRefresh
                    } else {
                        ServedFrom::Circumvention
                    },
                    measurement: m,
                    circumvention: Some(c),
                }
            } else {
                // Both paths failed: network trouble, not censorship —
                // the paths share the access link (§4.3.1).
                let mut m = m;
                // Exception: a *served block page* is censorship evidence
                // on its own, no corroboration needed.
                if m.page_bytes.is_none() {
                    m.status = MeasuredStatus::Inconclusive;
                    m.stages.clear();
                }
                RedundantOutcome {
                    user_plt: None,
                    served_from: ServedFrom::Nothing,
                    measurement: m,
                    circumvention: Some(c),
                }
            }
        }
        MeasuredStatus::Inconclusive => RedundantOutcome {
            user_plt: if circ_ok { Some(circ_done) } else { None },
            served_from: if circ_ok {
                ServedFrom::Circumvention
            } else {
                ServedFrom::Nothing
            },
            measurement: m,
            circumvention: Some(c),
        },
    }
}

/// Downgrade a provisional blocked verdict when the circumvention copy
/// also failed (serial mode's corroboration step).
fn corroborate(mut m: DirectMeasurement, c: &FetchReport) -> DirectMeasurement {
    if m.status == MeasuredStatus::Blocked && !c.outcome.is_genuine_page() && m.page_bytes.is_none()
    {
        m.status = MeasuredStatus::Inconclusive;
        m.stages.clear();
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::blocking::{DnsTamper, HttpAction, IpAction, TlsAction};
    use csaw_censor::profiles;
    use csaw_circumvent::tor::TorClient;
    use csaw_circumvent::world::SiteSpec;
    use csaw_simnet::time::SimTime;
    use csaw_simnet::topology::{AccessNetwork, Asn, Provider, Region, Site};

    fn setup(policy: csaw_censor::CensorPolicy) -> (World, FetchCtx) {
        let provider = Provider::new(Asn(5), "isp");
        let access = AccessNetwork::single(provider.clone());
        let w = World::builder(access)
            .site(
                SiteSpec::new("victim.example", Site::at_vantage_rtt(Region::UsEast, 186))
                    .default_page(360_000, 12),
            )
            .censor(Asn(5), policy)
            .build();
        (
            w,
            FetchCtx {
                now: SimTime::ZERO,
                provider,
            },
        )
    }

    fn blocked_policy(http: HttpAction) -> csaw_censor::CensorPolicy {
        profiles::single_mechanism(
            "t",
            "victim.example",
            DnsTamper::None,
            IpAction::None,
            http,
            TlsAction::None,
        )
    }

    fn run(policy: csaw_censor::CensorPolicy, mode: RedundancyMode, seed: u64) -> RedundantOutcome {
        let (w, ctx) = setup(policy);
        let mut tor = TorClient::new();
        let mut rng = DetRng::new(seed);
        fetch_with_redundancy(
            &w,
            &ctx,
            &Url::parse("http://victim.example/").unwrap(),
            mode,
            &mut tor,
            &DetectConfig::default(),
            &LoadModel::default(),
            &mut rng,
        )
    }

    #[test]
    fn unblocked_parallel_serves_direct() {
        let o = run(profiles::clean(), RedundancyMode::Parallel, 1);
        assert_eq!(o.measurement.status, MeasuredStatus::NotBlocked);
        assert!(matches!(o.served_from, ServedFrom::Direct));
        assert!(o.user_plt.is_some());
    }

    #[test]
    fn parallel_beats_serial_on_blocked_pages() {
        // The headline Fig. 5a effect: with HTTP-drop blocking (30 s
        // detection), the parallel copy arrives in seconds.
        let serial = run(blocked_policy(HttpAction::Drop), RedundancyMode::Serial, 2);
        let parallel = run(
            blocked_policy(HttpAction::Drop),
            RedundancyMode::Parallel,
            2,
        );
        let s = serial.user_plt.expect("serial should be served eventually");
        let p = parallel.user_plt.expect("parallel served");
        assert!(
            p.as_secs_f64() < s.as_secs_f64() * 0.6,
            "parallel {p} not ≥40% better than serial {s}"
        );
        assert_eq!(parallel.served_from, ServedFrom::Circumvention);
        assert_eq!(parallel.measurement.status, MeasuredStatus::Blocked);
    }

    #[test]
    fn staggered_avoids_copy_on_fast_direct() {
        let o = run(
            profiles::clean(),
            RedundancyMode::Staggered(SimDuration::from_secs(2)),
            3,
        );
        // 360 KB at these RTTs typically finishes under 2 s; when it does,
        // no copy must have been sent.
        if o.measurement.elapsed <= SimDuration::from_secs(2) {
            assert!(o.circumvention.is_none());
            assert_eq!(o.served_from, ServedFrom::Direct);
        }
    }

    #[test]
    fn staggered_sends_copy_when_direct_stalls() {
        let o = run(
            blocked_policy(HttpAction::Drop),
            RedundancyMode::Staggered(SimDuration::from_secs(2)),
            4,
        );
        assert!(o.circumvention.is_some());
        assert_eq!(o.served_from, ServedFrom::Circumvention);
        let plt = o.user_plt.unwrap();
        assert!(plt >= SimDuration::from_secs(2));
        assert!(plt < SimDuration::from_secs(30), "{plt}");
    }

    #[test]
    fn block_page_stands_even_when_circ_fails() {
        // A served block page is positive evidence; even if Tor failed,
        // the verdict must not downgrade. Use a directory whose exit
        // can't resolve the site (we simulate circ failure with an
        // unreachable URL by blocking the relay fetch via unknown host).
        let (w, ctx) = setup(blocked_policy(HttpAction::BlockPageRedirect));
        let mut rng = DetRng::new(5);
        // Circ transport that always fails:
        struct Dead;
        impl Transport for Dead {
            fn name(&self) -> &str {
                "dead"
            }
            fn kind(&self) -> csaw_circumvent::transports::TransportKind {
                csaw_circumvent::transports::TransportKind::Relay
            }
            fn fetch(
                &mut self,
                _w: &World,
                _c: &FetchCtx,
                _u: &Url,
                _r: &mut DetRng,
            ) -> FetchReport {
                FetchReport {
                    outcome: csaw_circumvent::outcome::FetchOutcome::Failed(
                        csaw_circumvent::outcome::FailureKind::TransportUnavailable,
                    ),
                    elapsed: SimDuration::from_secs(5),
                    trace: Vec::new(),
                    resource_failures: Vec::new(),
                }
            }
        }
        let o = fetch_with_redundancy(
            &w,
            &ctx,
            &Url::parse("http://victim.example/").unwrap(),
            RedundancyMode::Parallel,
            &mut Dead,
            &DetectConfig::default(),
            &LoadModel::default(),
            &mut rng,
        );
        assert_eq!(o.measurement.status, MeasuredStatus::Blocked);
        assert_eq!(o.served_from, ServedFrom::Nothing);
    }

    #[test]
    fn shared_failure_is_network_problem() {
        // Direct path times out *and* the copy fails: inconclusive.
        let (w, ctx) = setup(blocked_policy(HttpAction::Drop));
        let mut rng = DetRng::new(6);
        struct Dead;
        impl Transport for Dead {
            fn name(&self) -> &str {
                "dead"
            }
            fn kind(&self) -> csaw_circumvent::transports::TransportKind {
                csaw_circumvent::transports::TransportKind::Relay
            }
            fn fetch(
                &mut self,
                _w: &World,
                _c: &FetchCtx,
                _u: &Url,
                _r: &mut DetRng,
            ) -> FetchReport {
                FetchReport {
                    outcome: csaw_circumvent::outcome::FetchOutcome::Failed(
                        csaw_circumvent::outcome::FailureKind::HttpGetTimeout,
                    ),
                    elapsed: SimDuration::from_secs(30),
                    trace: Vec::new(),
                    resource_failures: Vec::new(),
                }
            }
        }
        let o = fetch_with_redundancy(
            &w,
            &ctx,
            &Url::parse("http://victim.example/").unwrap(),
            RedundancyMode::Parallel,
            &mut Dead,
            &DetectConfig::default(),
            &LoadModel::default(),
            &mut rng,
        );
        assert_eq!(o.measurement.status, MeasuredStatus::Inconclusive);
        assert!(o.measurement.stages.is_empty());
        assert_eq!(o.served_from, ServedFrom::Nothing);
    }

    #[test]
    fn serial_corroboration_downgrades_timeouts() {
        let (w, ctx) = setup(blocked_policy(HttpAction::Drop));
        let mut rng = DetRng::new(7);
        struct Dead;
        impl Transport for Dead {
            fn name(&self) -> &str {
                "dead"
            }
            fn kind(&self) -> csaw_circumvent::transports::TransportKind {
                csaw_circumvent::transports::TransportKind::Relay
            }
            fn fetch(
                &mut self,
                _w: &World,
                _c: &FetchCtx,
                _u: &Url,
                _r: &mut DetRng,
            ) -> FetchReport {
                FetchReport {
                    outcome: csaw_circumvent::outcome::FetchOutcome::Failed(
                        csaw_circumvent::outcome::FailureKind::HttpGetTimeout,
                    ),
                    elapsed: SimDuration::from_secs(30),
                    trace: Vec::new(),
                    resource_failures: Vec::new(),
                }
            }
        }
        let o = fetch_with_redundancy(
            &w,
            &ctx,
            &Url::parse("http://victim.example/").unwrap(),
            RedundancyMode::Serial,
            &mut Dead,
            &DetectConfig::default(),
            &LoadModel::default(),
            &mut rng,
        );
        assert_eq!(o.measurement.status, MeasuredStatus::Inconclusive);
    }
}
