//! Non-web (UDP application) censorship measurement — the §8 extension.
//!
//! Messaging, voice and video apps don't speak HTTP; their blocking
//! signatures are datagram silence or throttling. This module probes a
//! UDP service on the direct path, classifies the outcome, and — in the
//! C-Saw spirit — pairs the probe with a tunneled probe so network
//! problems can be told apart from filtering, exactly like the web-side
//! redundant requests.

use crate::measure::detect::MeasuredStatus;
use csaw_censor::blocking::BlockingType;
use csaw_circumvent::world::{UdpStep, World};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimDuration;
use csaw_simnet::topology::{Provider, Site};

/// Throttling threshold: a session whose RTT exceeds this many times the
/// tunneled RTT is classified as throttled even if datagrams flow.
pub const THROTTLE_FACTOR: f64 = 4.0;

/// The result of measuring a UDP service.
#[derive(Debug, Clone, PartialEq)]
pub struct UdpMeasurement {
    /// Blocked / not blocked / inconclusive.
    pub status: MeasuredStatus,
    /// Mechanisms observed (UdpDrop / UdpThrottle).
    pub stages: Vec<BlockingType>,
    /// Time to the verdict.
    pub detection_time: SimDuration,
    /// Direct-path application RTT, when the service answered.
    pub direct_rtt: Option<SimDuration>,
    /// Tunneled application RTT (the redundant probe).
    pub tunnel_rtt: Option<SimDuration>,
}

/// Probe `service_host` on the direct path and through a relay tunnel,
/// and classify.
pub fn measure_udp_service(
    world: &World,
    provider: &Provider,
    relay: Site,
    service_host: &str,
    rng: &mut DetRng,
) -> UdpMeasurement {
    let (direct, t_direct) = world.udp_exchange(provider, service_host, rng);
    let (tunnel, t_tunnel) = world.udp_exchange_via(provider, relay, service_host, rng);
    let tunnel_rtt = match tunnel {
        UdpStep::Reply { rtt } => Some(rtt),
        _ => None,
    };
    let detection_time = t_direct.max(t_tunnel);
    match direct {
        UdpStep::NoService => UdpMeasurement {
            status: MeasuredStatus::Inconclusive,
            stages: vec![],
            detection_time,
            direct_rtt: None,
            tunnel_rtt,
        },
        UdpStep::Timeout => {
            // Silence on the direct path: filtering if the tunnel works,
            // a network problem otherwise.
            if tunnel_rtt.is_some() {
                UdpMeasurement {
                    status: MeasuredStatus::Blocked,
                    stages: vec![BlockingType::UdpDrop],
                    detection_time,
                    direct_rtt: None,
                    tunnel_rtt,
                }
            } else {
                UdpMeasurement {
                    status: MeasuredStatus::Inconclusive,
                    stages: vec![],
                    detection_time,
                    direct_rtt: None,
                    tunnel_rtt,
                }
            }
        }
        UdpStep::Throttled { rtt } | UdpStep::Reply { rtt } => {
            // Datagrams flow; compare against the tunnel to spot
            // throttling (the tunnel's RTT includes relay detour, so a
            // direct path that is still several times slower is being
            // shaped).
            let throttled = match tunnel_rtt {
                Some(t) => rtt.as_secs_f64() > t.as_secs_f64() * THROTTLE_FACTOR,
                None => matches!(direct, UdpStep::Throttled { .. }),
            };
            if throttled {
                UdpMeasurement {
                    status: MeasuredStatus::Blocked,
                    stages: vec![BlockingType::UdpThrottle],
                    detection_time,
                    direct_rtt: Some(rtt),
                    tunnel_rtt,
                }
            } else {
                UdpMeasurement {
                    status: MeasuredStatus::NotBlocked,
                    stages: vec![],
                    detection_time,
                    direct_rtt: Some(rtt),
                    tunnel_rtt,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::blocking::UdpAction;
    use csaw_censor::policy::{CensorPolicy, CensorRule, TargetMatcher};
    use csaw_circumvent::world::SiteSpec;
    use csaw_simnet::topology::{AccessNetwork, Asn, Region};

    fn world_with_udp(action: UdpAction) -> (World, Provider) {
        let provider = Provider::new(Asn(31), "isp");
        let access = AccessNetwork::single(provider.clone());
        let mut policy = CensorPolicy::new("udp-censor");
        if action.is_active() {
            policy = policy.with_rule(
                CensorRule::target(TargetMatcher::DomainSuffix("chat.example".into())).udp(action),
            );
        }
        let w = World::builder(access)
            .site(SiteSpec::new("chat.example", Site::in_region(Region::UsEast)).udp_service(3478))
            .censor(Asn(31), policy)
            .build();
        (w, provider)
    }

    fn relay() -> Site {
        Site::in_region(Region::Germany)
    }

    #[test]
    fn clean_service_not_blocked() {
        let (w, p) = world_with_udp(UdpAction::None);
        let mut rng = DetRng::new(1);
        let m = measure_udp_service(&w, &p, relay(), "chat.example", &mut rng);
        assert_eq!(m.status, MeasuredStatus::NotBlocked);
        assert!(
            m.direct_rtt.unwrap() < m.tunnel_rtt.unwrap(),
            "direct beats tunnel"
        );
    }

    #[test]
    fn udp_drop_detected_via_tunnel_corroboration() {
        let (w, p) = world_with_udp(UdpAction::Drop);
        let mut rng = DetRng::new(2);
        let m = measure_udp_service(&w, &p, relay(), "chat.example", &mut rng);
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::UdpDrop]);
        assert!(m.direct_rtt.is_none());
        assert!(m.tunnel_rtt.is_some(), "circumvention works");
    }

    #[test]
    fn throttling_detected_by_comparison() {
        let (w, p) = world_with_udp(UdpAction::Throttle);
        let mut rng = DetRng::new(3);
        let m = measure_udp_service(&w, &p, relay(), "chat.example", &mut rng);
        assert_eq!(m.status, MeasuredStatus::Blocked);
        assert_eq!(m.stages, vec![BlockingType::UdpThrottle]);
        assert!(m.direct_rtt.unwrap() > m.tunnel_rtt.unwrap());
    }

    #[test]
    fn non_udp_host_is_inconclusive() {
        let (w, p) = world_with_udp(UdpAction::None);
        let mut rng = DetRng::new(4);
        let m = measure_udp_service(&w, &p, relay(), "nonexistent.example", &mut rng);
        assert_eq!(m.status, MeasuredStatus::Inconclusive);
    }
}
