//! Multihoming detection and strict-strategy resolution (§4.4).
//!
//! A multihomed network maps flows randomly over several providers, so a
//! URL blocked by one ISP but not another oscillates between blocked and
//! not-blocked, repeatedly paying detection costs and bouncing between
//! transports. C-Saw breaks the oscillation by (a) detecting multihoming
//! from periodic egress-ASN probes, and (b) once detected, treating the
//! URL as subject to the *union* of the blocking mechanisms observed per
//! provider — the strictest interpretation, which every subsequent
//! request can be routed around regardless of which ISP carries it.

use csaw_censor::blocking::BlockingType;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use std::collections::{BTreeSet, HashMap};

/// Multihoming detector state.
#[derive(Debug, Clone)]
pub struct MultihomingManager {
    window: SimDuration,
    observations: Vec<(SimTime, Asn)>,
    /// Latched once more than one ASN is seen within the window.
    pub multihomed: bool,
}

impl MultihomingManager {
    /// A detector with the given observation window ("short timescales"
    /// in the paper's wording).
    pub fn new(window: SimDuration) -> MultihomingManager {
        MultihomingManager {
            window,
            observations: Vec::new(),
            multihomed: false,
        }
    }

    /// Record an egress-ASN observation (from the periodic probe or from
    /// any flow's metadata).
    pub fn probe(&mut self, now: SimTime, asn: Asn) {
        self.observations.push((now, asn));
        let horizon = now - self.window;
        self.observations.retain(|(t, _)| *t >= horizon);
        let distinct: BTreeSet<Asn> = self.observations.iter().map(|(_, a)| *a).collect();
        if distinct.len() > 1 {
            self.multihomed = true;
        }
    }

    /// Distinct ASNs currently in the window.
    pub fn asns_in_window(&self) -> Vec<Asn> {
        let distinct: BTreeSet<Asn> = self.observations.iter().map(|(_, a)| *a).collect();
        distinct.into_iter().collect()
    }
}

/// Per-(URL, ASN) blocking observations; resolves the effective strategy
/// for multihomed networks.
#[derive(Debug, Clone, Default)]
pub struct PerProviderBlocking {
    stages: HashMap<(String, Asn), Vec<BlockingType>>,
}

impl PerProviderBlocking {
    /// Empty table.
    pub fn new() -> PerProviderBlocking {
        PerProviderBlocking::default()
    }

    /// Record the mechanisms observed for a URL through a provider.
    pub fn record(&mut self, url_key: &str, asn: Asn, stages: &[BlockingType]) {
        let entry = self.stages.entry((url_key.to_string(), asn)).or_default();
        for s in stages {
            if !entry.contains(s) {
                entry.push(*s);
            }
        }
    }

    /// Mechanisms observed for a URL through one provider.
    pub fn for_provider(&self, url_key: &str, asn: Asn) -> &[BlockingType] {
        self.stages
            .get(&(url_key.to_string(), asn))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The *strict* mechanism set for a URL: the union across providers.
    /// A circumvention approach chosen against the union works no matter
    /// which ISP the flow lands on.
    pub fn strict_union(&self, url_key: &str) -> Vec<BlockingType> {
        let mut set: BTreeSet<BlockingType> = BTreeSet::new();
        for ((u, _), stages) in &self.stages {
            if u == url_key {
                set.extend(stages.iter().copied());
            }
        }
        set.into_iter().collect()
    }

    /// Number of providers with observations for a URL.
    pub fn provider_count(&self, url_key: &str) -> usize {
        self.stages.keys().filter(|(u, _)| u == url_key).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_asn_never_flags() {
        let mut m = MultihomingManager::new(SimDuration::from_secs(60));
        for t in 0..100 {
            m.probe(SimTime::from_secs(t), Asn(7));
        }
        assert!(!m.multihomed);
        assert_eq!(m.asns_in_window(), vec![Asn(7)]);
    }

    #[test]
    fn two_asns_in_window_flag() {
        let mut m = MultihomingManager::new(SimDuration::from_secs(60));
        m.probe(SimTime::from_secs(0), Asn(1));
        m.probe(SimTime::from_secs(10), Asn(2));
        assert!(m.multihomed);
        assert_eq!(m.asns_in_window(), vec![Asn(1), Asn(2)]);
    }

    #[test]
    fn asn_change_outside_window_latches_nothing_until_seen_together() {
        let mut m = MultihomingManager::new(SimDuration::from_secs(10));
        m.probe(SimTime::from_secs(0), Asn(1));
        // Far outside the window — the old observation is gone.
        m.probe(SimTime::from_secs(100), Asn(2));
        assert!(
            !m.multihomed,
            "a clean provider change (mobility) is not multihoming"
        );
        m.probe(SimTime::from_secs(105), Asn(1));
        assert!(m.multihomed);
    }

    #[test]
    fn multihomed_flag_latches() {
        let mut m = MultihomingManager::new(SimDuration::from_secs(10));
        m.probe(SimTime::from_secs(0), Asn(1));
        m.probe(SimTime::from_secs(1), Asn(2));
        assert!(m.multihomed);
        // Later single-ASN observations don't clear the latch.
        for t in 100..200 {
            m.probe(SimTime::from_secs(t), Asn(1));
        }
        assert!(m.multihomed);
    }

    #[test]
    fn strict_union_merges_mechanisms() {
        let mut p = PerProviderBlocking::new();
        // ISP A blocks HTTPS (SNI), ISP B doesn't block at all — the
        // paper's example: use fronting for all subsequent requests.
        p.record("http://y.com/", Asn(1), &[BlockingType::SniDrop]);
        p.record("http://y.com/", Asn(2), &[]);
        assert_eq!(p.strict_union("http://y.com/"), vec![BlockingType::SniDrop]);
        assert_eq!(p.provider_count("http://y.com/"), 2);
        // Different URL untouched.
        assert!(p.strict_union("http://z.com/").is_empty());
    }

    #[test]
    fn union_across_different_mechanisms() {
        let mut p = PerProviderBlocking::new();
        p.record("http://y.com/", Asn(1), &[BlockingType::DnsHijack]);
        p.record(
            "http://y.com/",
            Asn(2),
            &[BlockingType::HttpDrop, BlockingType::SniDrop],
        );
        let u = p.strict_union("http://y.com/");
        assert_eq!(u.len(), 3);
        assert!(u.contains(&BlockingType::DnsHijack));
        assert!(u.contains(&BlockingType::HttpDrop));
        assert!(u.contains(&BlockingType::SniDrop));
    }

    #[test]
    fn record_dedupes() {
        let mut p = PerProviderBlocking::new();
        p.record("k", Asn(1), &[BlockingType::HttpDrop]);
        p.record("k", Asn(1), &[BlockingType::HttpDrop]);
        assert_eq!(p.for_provider("k", Asn(1)).len(), 1);
    }
}
