//! The C-Saw client: Algorithm 1 plus the periodic workflow (§3, §4).
//!
//! Every user request flows through [`CsawClient::request`]:
//!
//! - **not-measured** URLs get redundant requests (direct + circumvention)
//!   and in-line detection; the result lands in the local DB and, if
//!   blocked, in the pending-report queue;
//! - **blocked** URLs are served through the selector's best transport,
//!   with probability-`p` direct-path revalidation (for relay transports —
//!   local fixes measure the direct path for free) and every-`n`-th-access
//!   exploration;
//! - **not-blocked** URLs go direct with in-line detection — which is how
//!   fresh censorship (churn Scenario B) is caught immediately.
//!
//! [`CsawClient::tick`] runs the background workflow: periodic global-DB
//! sync (per-AS blocked list download), report posting (over Tor; only
//! blocked URLs, no PII), record expiry (churn Scenario A), and
//! egress-ASN probing (multihoming detection).

use crate::circum::Selector;
use crate::config::{CsawConfig, UserPreference};
use crate::global::{ConfidenceFilter, GlobalApi, Report, ServerDb, Uuid};
use crate::local::{LocalDb, Status};
use crate::measure::{
    fetch_with_redundancy, measure_direct, DetectConfig, MeasuredStatus, ServedFrom,
};
use crate::multihoming::{MultihomingManager, PerProviderBlocking};
use csaw_censor::blocking::BlockingType;
use csaw_circumvent::transports::{FetchCtx, Transport, TransportKind};
use csaw_circumvent::world::World;
use csaw_simnet::load::LoadModel;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_webproto::url::{Scheme, Url};
use std::collections::HashMap;
use std::sync::Arc;

/// Counters a deployment study reads off a client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Total user requests.
    pub requests: u64,
    /// Served straight from the direct path.
    pub served_direct: u64,
    /// Served through a circumvention transport.
    pub served_circumvention: u64,
    /// Requests that failed entirely.
    pub failed: u64,
    /// Fresh measurements performed (redundant-request rounds).
    pub measurements: u64,
    /// Probability-p direct-path revalidations.
    pub revalidations: u64,
    /// Reports posted to the global DB.
    pub reports_posted: u64,
    /// Blocked verdicts recorded locally.
    pub blocked_recorded: u64,
    /// Reports ever placed on the pending queue. The accounting
    /// identity `reports_queued == reports_posted + reports_dropped +
    /// reports_quarantined + pending` must hold at every quiescent
    /// point — any gap is silent loss.
    pub reports_queued: u64,
    /// Reports evicted oldest-first by the queue bound.
    pub reports_dropped: u64,
    /// Reports quarantined as poison (fail the wire round-trip) or
    /// permanently rejected by the server.
    pub reports_quarantined: u64,
    /// Reports re-queued after a partial acceptance (deferred by the
    /// server; they remain pending, so they are *not* part of the
    /// identity above).
    pub reports_requeued: u64,
    /// Failed post attempts (transport/server errors; each schedules a
    /// backoff).
    pub post_failures: u64,
    /// Failed global-DB sync pulls (the cached view was kept).
    pub sync_failures: u64,
}

/// Deterministic wire-level corruption for chaos experiments: with
/// probability `corrupt_p` per post attempt the encoded batch is
/// truncated in flight, so the server-side decode fails the way a
/// half-closed Tor stream would make it fail. Draws come from a
/// dedicated labelled fork, so arming this never perturbs any other
/// stream of the same seed.
#[derive(Debug, Clone)]
pub struct WireFault {
    corrupt_p: f64,
    rng: DetRng,
}

impl WireFault {
    /// A wire fault with the given per-attempt corruption probability
    /// (clamped to `[0, 1]`).
    pub fn new(corrupt_p: f64, seed: u64) -> WireFault {
        WireFault {
            corrupt_p: corrupt_p.clamp(0.0, 1.0),
            rng: DetRng::new(seed).fork("wire-fault"),
        }
    }

    /// Maybe corrupt one encoded batch in place. Returns whether it did.
    /// Exactly one RNG draw per call, hit or miss — the stream length
    /// never depends on outcomes, which keeps same-seed runs aligned.
    fn corrupt(&mut self, wire: &mut String) -> bool {
        if !self.rng.chance(self.corrupt_p) {
            return false;
        }
        let mut keep = wire.len() / 2;
        while keep > 0 && !wire.is_char_boundary(keep) {
            keep -= 1;
        }
        wire.truncate(keep);
        true
    }
}

/// What one user request produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// User-perceived PLT (None if nothing usable arrived).
    pub plt: Option<SimDuration>,
    /// Transport that served the content ("direct" for the direct path).
    pub transport: String,
    /// The URL's status in the local DB after this request.
    pub status_after: Status,
    /// Whether this request triggered a fresh measurement.
    pub measured: bool,
}

/// A C-Saw client instance.
pub struct CsawClient {
    /// Configuration.
    pub cfg: CsawConfig,
    /// The local measurement database.
    pub local_db: LocalDb,
    /// Per-provider blocking observations (multihoming strategy input).
    pub per_provider: PerProviderBlocking,
    /// Multihoming detector.
    pub multihoming: MultihomingManager,
    /// Counters.
    pub stats: ClientStats,
    selector: Selector,
    redundant: Box<dyn Transport + Send>,
    detect_cfg: DetectConfig,
    load: LoadModel,
    rng: DetRng,
    uuid: Option<Uuid>,
    global_view: HashMap<String, Vec<BlockingType>>,
    confidence: ConfidenceFilter,
    last_sync: Option<SimTime>,
    last_report: Option<SimTime>,
    /// Reports queued for the next post, keyed on the *accessed* URL
    /// (the deployment study counts accessed URLs, not aggregated
    /// records — aggregation is a memory optimization, not a reporting
    /// one).
    report_queue: Vec<Report>,
    reported: HashMap<(String, u32), Vec<BlockingType>>,
    /// Reports pulled out of the queue because they can never be
    /// delivered: they fail the wire round-trip (poison) or the server
    /// permanently rejected them. Kept for audit rather than dropped.
    quarantined: Vec<Report>,
    /// Consecutive failed post attempts (resets on success).
    post_failstreak: u32,
    /// Earliest time the next post attempt may run (exponential
    /// backoff; `None` = no backoff pending).
    next_report_at: Option<SimTime>,
    /// Backoff jitter draws come from a dedicated fork so arming or
    /// clearing backoff never perturbs the request-path RNG stream.
    backoff_rng: DetRng,
    /// Optional injected wire corruption (chaos experiments).
    wire_fault: Option<WireFault>,
    /// Seed for deriving causal trace ids (the client's RNG seed, so
    /// same-seed runs produce byte-identical traces).
    trace_seed: u64,
    /// Ordinal of the next user fetch (trace-id derivation input).
    fetch_seq: u64,
    /// Ordinal of the next report post (trace-id derivation input).
    report_seq: u64,
    /// The windowed timeline of the context that built the client
    /// (captured once, like the trace seed, so background ticks feed
    /// the right timeline). Inert unless the host configured windows.
    timeline: Arc<csaw_obs::Timeline>,
    /// Low-cardinality per-client label for windowed gauges
    /// (`client=<seed hex>`).
    ts_label: String,
}

impl std::fmt::Debug for CsawClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsawClient")
            .field("uuid", &self.uuid)
            .field("stats", &self.stats)
            .field("records", &self.local_db.record_count())
            .finish()
    }
}

impl CsawClient {
    /// A client with the standard transport registry. `front` is the
    /// domain-fronting front domain available in the deployment, if any.
    pub fn new(cfg: CsawConfig, front: Option<&str>, seed: u64) -> CsawClient {
        let rng = DetRng::new(seed);
        let backoff_rng = rng.fork("report-backoff");
        let selector =
            Selector::standard(front, cfg.explore_every, cfg.plt_ewma_alpha, cfg.preference);
        // Tor carries the redundant copy for unmeasured URLs (and the
        // measurement reports) — except for anonymity-only users, where
        // it is also the only serving transport.
        let redundant: Box<dyn Transport + Send> = Box::new(csaw_circumvent::tor::TorClient::new());
        CsawClient {
            local_db: LocalDb::new(cfg.record_ttl),
            per_provider: PerProviderBlocking::new(),
            multihoming: MultihomingManager::new(cfg.asn_probe_interval * 3),
            stats: ClientStats::default(),
            selector,
            redundant,
            detect_cfg: DetectConfig::default(),
            load: LoadModel::default(),
            rng,
            uuid: None,
            global_view: HashMap::new(),
            confidence: ConfidenceFilter::default(),
            last_sync: None,
            last_report: None,
            report_queue: Vec::new(),
            reported: HashMap::new(),
            quarantined: Vec::new(),
            post_failstreak: 0,
            next_report_at: None,
            backoff_rng,
            wire_fault: None,
            trace_seed: seed,
            fetch_seq: 0,
            report_seq: 0,
            timeline: csaw_obs::current().timeline.clone(),
            ts_label: format!("{seed:x}"),
            cfg,
        }
    }

    /// Use a custom transport for the redundant copy (experiments swap in
    /// Lantern here for Fig. 7c).
    pub fn with_redundant_transport(mut self, t: Box<dyn Transport + Send>) -> CsawClient {
        self.redundant = t;
        self
    }

    /// Replace the whole transport registry (e.g. "C-Saw with Lantern"
    /// vs. "C-Saw with Tor" in Fig. 7c).
    pub fn with_transports(mut self, transports: Vec<Box<dyn Transport + Send>>) -> CsawClient {
        self.selector = Selector::new(
            transports,
            self.cfg.explore_every,
            self.cfg.plt_ewma_alpha,
            self.cfg.preference,
        );
        self
    }

    /// Use a stricter confidence filter when consuming the global DB.
    pub fn with_confidence(mut self, f: ConfidenceFilter) -> CsawClient {
        self.confidence = f;
        self
    }

    /// This client's UUID, if registered.
    pub fn uuid(&self) -> Option<Uuid> {
        self.uuid
    }

    /// Register with the server (initialization; the paper gates this
    /// with "No CAPTCHA reCAPTCHA" — `risk_score` is that engine's
    /// output) and download the blocked list for `asn`.
    ///
    /// Generic over [`GlobalApi`]: `server` may be the in-process
    /// [`ServerDb`] or a [`crate::global::RemoteDb`] socket pool.
    pub fn register<G: GlobalApi + ?Sized>(
        &mut self,
        server: &G,
        asn: Asn,
        now: SimTime,
        risk_score: f64,
    ) -> Result<Uuid, crate::global::RegistrationError> {
        let uuid = server.register(now, risk_score)?;
        self.uuid = Some(uuid);
        // Registration stands even if the first pull fails — the client
        // starts with an empty cached view and retries on the next tick.
        let _ = self.sync_global(server, &[asn], now);
        Ok(uuid)
    }

    /// Normalized global-view key for a URL: base, http scheme.
    fn global_key(url: &Url) -> String {
        url.base().with_scheme(Scheme::Http).to_string()
    }

    /// Blocking stages the global view reports for a URL, if any.
    pub fn global_lookup(&self, url: &Url) -> Option<&Vec<BlockingType>> {
        self.global_view.get(&Self::global_key(url))
    }

    /// Pull the per-AS blocked lists from the server. Builds the fresh
    /// view off to the side and swaps it in only once every pull
    /// succeeded — a transiently unavailable backend must never wipe the
    /// cached view (stale blocked-list data still routes around
    /// censorship; an empty one sends every request down the direct
    /// path). On failure the cached view and `last_sync` are kept, so
    /// the next tick retries. Returns the number of records pulled.
    pub fn sync_global<G: GlobalApi + ?Sized>(
        &mut self,
        server: &G,
        asns: &[Asn],
        now: SimTime,
    ) -> Result<usize, crate::global::StoreError> {
        let mut fresh: HashMap<String, Vec<BlockingType>> = HashMap::new();
        let mut pulled = 0usize;
        for asn in asns {
            let recs = match server.blocked_for_as(*asn, &self.confidence) {
                Ok(r) => r,
                Err(e) => {
                    self.stats.sync_failures += 1;
                    if self.timeline.enabled() {
                        self.timeline.counter("client.sync.failed", &[]).inc();
                    }
                    csaw_obs::event!("client.sync.failed", asn = asn.0 as u64);
                    return Err(e);
                }
            };
            for rec in recs {
                pulled += 1;
                if let Ok(u) = Url::parse(&rec.url) {
                    let entry = fresh.entry(Self::global_key(&u)).or_default();
                    for s in &rec.stages {
                        if !entry.contains(s) {
                            entry.push(*s);
                        }
                    }
                }
            }
        }
        self.global_view = fresh;
        self.last_sync = Some(now);
        if self.timeline.enabled() {
            self.timeline.counter("client.sync.ok", &[]).inc();
        }
        Ok(pulled)
    }

    /// Handle one user request (Algorithm 1). GETs may be duplicated
    /// across paths; see [`CsawClient::request_method`] for POSTs.
    pub fn request(&mut self, world: &World, url: &Url, now: SimTime) -> RequestOutcome {
        self.request_method(world, url, csaw_webproto::Method::Get, now)
    }

    /// Handle one user request with an explicit method. Non-idempotent
    /// requests (POST) are **never duplicated** (§4.3.1's footnote: "To
    /// avoid multiple writes, HTTP POST requests are not duplicated"):
    /// an unmeasured URL is fetched on a single path with in-line
    /// detection instead of the redundant-request round.
    pub fn request_method(
        &mut self,
        world: &World,
        url: &Url,
        method: csaw_webproto::Method,
        now: SimTime,
    ) -> RequestOutcome {
        // One trace per user fetch: the root frame stays open for the
        // whole request, so every span the pipeline emits (detection,
        // circumvention attempts, simnet flows, store lookups) lands in
        // this fetch's tree. Derivation is (seed, FETCH stream, ordinal)
        // — never wall clock — so same-seed runs trace identically.
        let _root = csaw_obs::scope::current().sink.enabled().then(|| {
            let r = csaw_obs::trace::fetch_root(self.trace_seed, self.fetch_seq, now.as_micros());
            self.fetch_seq += 1;
            r
        });
        if self.timeline.enabled() {
            self.timeline
                .counter("client.fetch.method", &[("method", method.as_str())])
                .inc();
        }
        if !method.safe_to_duplicate() {
            return self.request_unduplicated(world, url, now);
        }
        self.request_inner(world, url, now)
    }

    /// Windowed per-AS fetch coverage: one count per user request, in
    /// the AS the request actually egressed through.
    fn ts_count_fetch(&self, asn: Asn) {
        if self.timeline.enabled() {
            self.timeline
                .counter("client.fetches", &[("asn", &asn.0.to_string())])
                .inc();
        }
    }

    /// Single-path handling for non-duplicable methods.
    fn request_unduplicated(&mut self, world: &World, url: &Url, now: SimTime) -> RequestOutcome {
        self.stats.requests += 1;
        let provider = world.access.pick_provider(&mut self.rng).clone();
        self.ts_count_fetch(provider.asn);
        self.multihoming.probe(now, provider.asn);
        let ctx = FetchCtx { now, provider };
        let lookup = self.local_db.lookup(url, now);
        if lookup.status == Status::Blocked {
            // Known blocked: the write goes through circumvention — one
            // path, no duplication.
            let stages = lookup.record.map(|r| r.stages).unwrap_or_default();
            return self.serve_blocked(world, &ctx, url, stages, now, false);
        }
        // Unknown or reachable: single direct attempt with in-line
        // detection, but no redundant copy (the copy is what §4.3.1
        // forbids for writes).
        let m = measure_direct(
            world,
            &ctx.provider,
            url,
            None,
            &self.detect_cfg,
            &mut self.rng,
        );
        match m.status {
            MeasuredStatus::NotBlocked => {
                self.local_db.record_measurement(
                    url,
                    ctx.provider.asn,
                    now,
                    Status::NotBlocked,
                    vec![],
                );
                self.stats.served_direct += 1;
                Self::emit_direct_tree(url, now, &m);
                RequestOutcome {
                    plt: Some(m.elapsed),
                    transport: "direct".into(),
                    status_after: Status::NotBlocked,
                    measured: lookup.status == Status::NotMeasured,
                }
            }
            MeasuredStatus::Blocked => self.circumvent_after_detection(world, &ctx, url, &m, now),
            MeasuredStatus::Inconclusive => {
                self.stats.failed += 1;
                Self::emit_direct_tree(url, now, &m);
                RequestOutcome {
                    plt: None,
                    transport: "direct".into(),
                    status_after: lookup.status,
                    measured: false,
                }
            }
        }
    }

    /// Emit the fetch span tree for a direct-path-only request: all the
    /// user's wait is the transfer leg when the page arrived, or the
    /// detection leg when the measurement ended without a page.
    fn emit_direct_tree(url: &Url, now: SimTime, m: &crate::measure::DirectMeasurement) {
        if !crate::tracing::tracing_fetch() {
            return;
        }
        let b = match m.status {
            MeasuredStatus::NotBlocked => crate::tracing::FetchBreakdown::served(
                m.elapsed,
                SimDuration::ZERO,
                SimDuration::ZERO,
            ),
            _ => crate::tracing::FetchBreakdown::failed(m.elapsed, SimDuration::ZERO),
        };
        crate::tracing::emit_fetch_tree(now.as_micros(), b, url, "direct");
    }

    /// Serve a URL whose blocking was just detected in-line: record the
    /// verdict, circumvent, and emit the fetch tree (detection leg = the
    /// in-line detection time, setup leg = the selector's dead ends).
    fn circumvent_after_detection(
        &mut self,
        world: &World,
        ctx: &FetchCtx,
        url: &Url,
        m: &crate::measure::DirectMeasurement,
        now: SimTime,
    ) -> RequestOutcome {
        self.record_blocked(url, ctx.provider.asn, now, m.stages.clone());
        // In-line detection latency: user-request to blocked-verdict,
        // the windowed counterpart of Table 5's detection ladder.
        if self.timeline.enabled() {
            self.timeline
                .hist("client.detect_latency_us", &[])
                .observe_us(m.detection_time.as_micros());
        }
        // Circumvention starts on the waterfall after detection.
        csaw_obs::trace::set_cursor_us(now.as_micros() + m.detection_time.as_micros());
        let fetched = self
            .selector
            .fetch_blocked(world, ctx, url, &m.stages, &mut self.rng);
        let plt = fetched
            .report
            .outcome
            .is_genuine_page()
            .then(|| m.detection_time + fetched.report.elapsed);
        if crate::tracing::tracing_fetch() {
            let b = match plt {
                Some(p) => {
                    crate::tracing::FetchBreakdown::served(p, m.detection_time, fetched.wasted)
                }
                None => crate::tracing::FetchBreakdown::failed(
                    m.elapsed,
                    fetched.wasted + fetched.report.elapsed,
                ),
            };
            crate::tracing::emit_fetch_tree(now.as_micros(), b, url, &fetched.transport);
        }
        if plt.is_some() {
            self.stats.served_circumvention += 1;
        } else {
            self.stats.failed += 1;
        }
        RequestOutcome {
            plt,
            transport: fetched.transport,
            status_after: Status::Blocked,
            measured: true,
        }
    }

    fn request_inner(&mut self, world: &World, url: &Url, now: SimTime) -> RequestOutcome {
        self.stats.requests += 1;
        let provider = world.access.pick_provider(&mut self.rng).clone();
        self.ts_count_fetch(provider.asn);
        self.multihoming.probe(now, provider.asn);
        let ctx = FetchCtx { now, provider };
        let lookup = self.local_db.lookup(url, now);
        match lookup.status {
            Status::NotMeasured => {
                // Consult the local copy of the global DB first.
                if let Some(stages) = self.global_lookup(url).cloned() {
                    return self.serve_blocked(world, &ctx, url, stages, now, true);
                }
                self.measure_and_serve(world, &ctx, url, now)
            }
            Status::Blocked => {
                let key = url.base().to_string();
                let stages = if self.multihoming.multihomed {
                    let union = self.per_provider.strict_union(&key);
                    if union.is_empty() {
                        lookup.record.map(|r| r.stages).unwrap_or_default()
                    } else {
                        union
                    }
                } else {
                    lookup.record.map(|r| r.stages).unwrap_or_default()
                };
                self.serve_blocked(world, &ctx, url, stages, now, false)
            }
            Status::NotBlocked => {
                // Direct path with in-line detection (Scenario B safety
                // net: "the proxy always measures the direct path").
                let m = measure_direct(
                    world,
                    &ctx.provider,
                    url,
                    None,
                    &self.detect_cfg,
                    &mut self.rng,
                );
                match m.status {
                    MeasuredStatus::NotBlocked => {
                        self.local_db.record_measurement(
                            url,
                            ctx.provider.asn,
                            now,
                            Status::NotBlocked,
                            vec![],
                        );
                        self.stats.served_direct += 1;
                        Self::emit_direct_tree(url, now, &m);
                        RequestOutcome {
                            plt: Some(m.elapsed),
                            transport: "direct".into(),
                            status_after: Status::NotBlocked,
                            measured: false,
                        }
                    }
                    MeasuredStatus::Blocked => {
                        // Fresh censorship discovered mid-browsing.
                        self.circumvent_after_detection(world, &ctx, url, &m, now)
                    }
                    MeasuredStatus::Inconclusive => {
                        self.stats.failed += 1;
                        Self::emit_direct_tree(url, now, &m);
                        RequestOutcome {
                            plt: None,
                            transport: "direct".into(),
                            status_after: Status::NotBlocked,
                            measured: false,
                        }
                    }
                }
            }
        }
    }

    /// Serve a URL known (locally or globally) to be blocked.
    fn serve_blocked(
        &mut self,
        world: &World,
        ctx: &FetchCtx,
        url: &Url,
        stages: Vec<BlockingType>,
        now: SimTime,
        from_global: bool,
    ) -> RequestOutcome {
        // Known-blocked: no detection leg — circumvention starts at the
        // request's start on the waterfall.
        csaw_obs::trace::set_cursor_us(now.as_micros());
        let fetched = self
            .selector
            .fetch_blocked(world, ctx, url, &stages, &mut self.rng);
        let wasted = fetched.wasted;
        let (report, name, transport_kind) = (fetched.report, fetched.transport, fetched.kind);
        // Failed local fixes evidenced additional blocking stages
        // (multi-stage discovery): fold them into what we record and
        // report, so the next visit — here or at any synced peer —
        // skips the dead ends.
        let mut stages = stages;
        for bt in fetched.observed_stages {
            if !stages.contains(&bt) {
                stages.push(bt);
            }
        }
        let genuine = report.outcome.is_genuine_page();
        let mut plt = genuine.then_some(report.elapsed);

        // Probability-p direct-path revalidation. Local fixes already
        // exercise the direct path ("measured by default without
        // generating any extra traffic" — §7.1); relays need a probe,
        // which costs client load and can bump the PLT (Table 6).
        let mut measured = false;
        if transport_kind == TransportKind::Relay && self.rng.chance(self.cfg.revalidate_p) {
            measured = true;
            self.stats.revalidations += 1;
            let circ_bytes = report.outcome.page().map(|p| p.bytes);
            let m = measure_direct(
                world,
                &ctx.provider,
                url,
                circ_bytes,
                &self.detect_cfg,
                &mut self.rng,
            );
            // The concurrent probe taxes the user fetch.
            if let Some(p) = plt {
                plt = Some(self.load.inflate(p, 2, &mut self.rng));
            }
            match m.status {
                MeasuredStatus::Blocked => {
                    self.record_blocked(url, ctx.provider.asn, now, m.stages);
                }
                MeasuredStatus::NotBlocked => {
                    // Whitelisted (or the global report was false): flip.
                    self.local_db.record_measurement(
                        url,
                        ctx.provider.asn,
                        now,
                        Status::NotBlocked,
                        vec![],
                    );
                }
                MeasuredStatus::Inconclusive => {}
            }
        } else if !from_global {
            // Keep the local record fresh on the served mechanisms.
            self.record_blocked(url, ctx.provider.asn, now, stages.clone());
        } else {
            // First sight of a global-DB entry through this client: seed
            // the local DB so subsequent lookups hit locally.
            self.record_blocked(url, ctx.provider.asn, now, stages.clone());
        }

        if genuine {
            self.stats.served_circumvention += 1;
        } else {
            self.stats.failed += 1;
        }
        if crate::tracing::tracing_fetch() {
            // No detection leg (the URL was already known blocked); the
            // setup leg is the selector's dead ends, and the transfer
            // remainder absorbs any revalidation load inflation.
            let b = match plt {
                Some(p) => crate::tracing::FetchBreakdown::served(p, SimDuration::ZERO, wasted),
                None => crate::tracing::FetchBreakdown::failed(
                    SimDuration::ZERO,
                    wasted + report.elapsed,
                ),
            };
            crate::tracing::emit_fetch_tree(now.as_micros(), b, url, &name);
        }
        RequestOutcome {
            plt,
            transport: name,
            status_after: self.local_db.lookup(url, now).status,
            measured,
        }
    }

    /// First-contact measurement with redundant requests (Algorithm 1
    /// lines 3–5).
    fn measure_and_serve(
        &mut self,
        world: &World,
        ctx: &FetchCtx,
        url: &Url,
        now: SimTime,
    ) -> RequestOutcome {
        self.stats.measurements += 1;
        let out = fetch_with_redundancy(
            world,
            ctx,
            url,
            self.cfg.redundancy,
            self.redundant.as_mut(),
            &self.detect_cfg,
            &self.load,
            &mut self.rng,
        );
        let status_after = match out.measurement.status {
            MeasuredStatus::Blocked => {
                self.record_blocked(url, ctx.provider.asn, now, out.measurement.stages.clone());
                // First-contact detection latency (the redundant-round
                // counterpart of the in-line detection ladder).
                if self.timeline.enabled() {
                    self.timeline
                        .hist("client.detect_latency_us", &[])
                        .observe_us(out.measurement.detection_time.as_micros());
                }
                Status::Blocked
            }
            MeasuredStatus::NotBlocked => {
                self.local_db.record_measurement(
                    url,
                    ctx.provider.asn,
                    now,
                    Status::NotBlocked,
                    vec![],
                );
                Status::NotBlocked
            }
            MeasuredStatus::Inconclusive => Status::NotMeasured,
        };
        let transport = match out.served_from {
            ServedFrom::Direct => "direct".to_string(),
            ServedFrom::Circumvention | ServedFrom::CircumventionAfterRefresh => {
                self.redundant.name().to_string()
            }
            ServedFrom::Nothing => "none".to_string(),
        };
        match out.served_from {
            ServedFrom::Direct => self.stats.served_direct += 1,
            ServedFrom::Circumvention | ServedFrom::CircumventionAfterRefresh => {
                self.stats.served_circumvention += 1
            }
            ServedFrom::Nothing => self.stats.failed += 1,
        }
        RequestOutcome {
            plt: out.user_plt,
            transport,
            status_after,
            measured: true,
        }
    }

    fn record_blocked(&mut self, url: &Url, asn: Asn, now: SimTime, stages: Vec<BlockingType>) {
        if stages.is_empty() {
            return;
        }
        self.per_provider
            .record(&url.base().to_string(), asn, &stages);
        // Queue a report for the accessed URL (re-queued whenever the
        // observed mechanism set changes — multi-stage discovery flows
        // to the crowd).
        let mut sorted = stages.clone();
        sorted.sort();
        sorted.dedup();
        let key = (url.to_string(), asn.0);
        if self.reported.get(&key) != Some(&sorted) {
            if self.report_queue.len() >= self.cfg.report_queue_cap {
                // Bounded queue: evict oldest-first and *account* for it.
                // Forgetting its `reported` entry lets the observation
                // re-queue the next time the URL is seen blocked.
                let victim = self.report_queue.remove(0);
                self.reported.remove(&(victim.url.clone(), victim.asn));
                self.stats.reports_dropped += 1;
                csaw_obs::event!(
                    "report.drop_oldest",
                    queue_cap = self.cfg.report_queue_cap as u64
                );
            }
            self.reported.insert(key, sorted.clone());
            self.report_queue.push(Report {
                url: url.to_string(),
                asn: asn.0,
                measured_at_us: now.as_micros(),
                stages: sorted,
            });
            self.stats.reports_queued += 1;
            if self.timeline.enabled() {
                self.timeline.counter("client.reports.queued", &[]).inc();
                self.ts_set_queue_depth();
            }
        }
        self.local_db
            .record_measurement(url, asn, now, Status::Blocked, stages);
        self.stats.blocked_recorded += 1;
    }

    /// Periodic background work: global sync, report posting, expiry.
    /// Call on whatever cadence the host loop uses; internal intervals
    /// gate the actual work.
    pub fn tick<G: GlobalApi + ?Sized>(&mut self, world: &World, server: &G, now: SimTime) {
        let due = |last: Option<SimTime>, every: SimDuration| match last {
            None => true,
            Some(t) => now.duration_since(t) >= every,
        };
        if due(self.last_sync, self.cfg.sync_interval) {
            let asns: Vec<Asn> = world.access.providers().iter().map(|p| p.asn).collect();
            // A failed pull keeps the cached view; `last_sync` is not
            // advanced, so the next tick retries.
            let _ = self.sync_global(server, &asns, now);
        }
        if due(self.last_report, self.cfg.report_interval) && self.backoff_clear(now) {
            self.post_reports(server, now);
            self.last_report = Some(now);
        }
        self.local_db.purge_expired(now);
    }

    /// Whether the post path is out of backoff at `now`.
    fn backoff_clear(&self, now: SimTime) -> bool {
        self.next_report_at.is_none_or(|at| now >= at)
    }

    /// Windowed per-client queue-depth gauge (call only when the
    /// timeline is enabled).
    fn ts_set_queue_depth(&self) {
        self.timeline
            .gauge("client.report_queue_depth", &[("client", &self.ts_label)])
            .set(self.report_queue.len() as i64);
    }

    /// Register a failed post attempt: deterministic exponential backoff
    /// with ±jitter. Delay doubles per consecutive failure from
    /// `report_backoff_base` up to `report_backoff_max`; the jitter draw
    /// comes from the dedicated backoff fork, so same-seed runs schedule
    /// identical retries while distinct clients decorrelate.
    fn bump_backoff(&mut self, now: SimTime) {
        self.stats.post_failures += 1;
        let exp = self.post_failstreak.min(20);
        self.post_failstreak = self.post_failstreak.saturating_add(1);
        let base = self.cfg.report_backoff_base.as_micros().max(1);
        let max = self.cfg.report_backoff_max.as_micros().max(base);
        let raw = base.saturating_mul(1u64 << exp).min(max);
        let swing = 2.0 * self.backoff_rng.f64() - 1.0;
        let factor = 1.0 + self.cfg.report_backoff_jitter * swing;
        let delay = ((raw as f64 * factor) as u64).max(1);
        self.next_report_at = Some(now + SimDuration::from_micros(delay));
        if self.timeline.enabled() {
            self.timeline.counter("client.reports.failed", &[]).inc();
            self.timeline
                .gauge("client.backoff_streak", &[("client", &self.ts_label)])
                .set(self.post_failstreak as i64);
        }
        csaw_obs::event!(
            "report.backoff",
            failstreak = self.post_failstreak as u64,
            delay_us = delay
        );
    }

    /// A post attempt succeeded: clear any pending backoff.
    fn reset_backoff(&mut self) {
        self.post_failstreak = 0;
        self.next_report_at = None;
        if self.timeline.enabled() {
            self.timeline
                .gauge("client.backoff_streak", &[("client", &self.ts_label)])
                .set(0);
        }
    }

    /// Move every report that cannot survive its own wire round-trip
    /// out of the queue before a post is attempted. One poison report
    /// would otherwise fail `Batch::from_wire` for the *whole* batch on
    /// every retry, pinning the queue forever — the original silent-loss
    /// bug this module is hardened against.
    fn quarantine_poison(&mut self) {
        // The whole queue round-trips as *one* batch: when the decode
        // fails, `Batch::from_wire` names the exact poison index, so
        // each sweep pass removes one report at the cost of a single
        // encode+parse — the clean (common) case is one pass, not one
        // wire round-trip per queued report.
        while !self.report_queue.is_empty() {
            let wire = Report::encode_batch(&self.report_queue);
            let bad = match crate::global::Batch::from_wire(Uuid::from_raw(0), &wire, SimTime::ZERO)
            {
                Err(crate::global::PostError::Malformed { index, .. }) => index,
                Ok(batch) if batch.reports() == &self.report_queue[..] => return,
                // A batch that decodes to *different* reports (lossy
                // encoding) or breaks the envelope outright can't be
                // attributed to an index; fall back to a per-report
                // round-trip to find the first non-survivor.
                // If every report survives alone but the batch misbehaves
                // as a whole, quarantine the head rather than loop forever.
                _ => self
                    .report_queue
                    .iter()
                    .position(|r| {
                        let one = Report::encode_batch(std::slice::from_ref(r));
                        !Report::decode_batch(&one)
                            .map(|d| d.len() == 1 && d[0] == *r)
                            .unwrap_or(false)
                    })
                    .unwrap_or(0),
            };
            let r = self.report_queue.remove(bad);
            self.stats.reports_quarantined += 1;
            csaw_obs::event!("report.quarantine", asn = r.asn as u64);
            self.quarantined.push(r);
        }
    }

    /// Split the drained batch according to the server's per-report
    /// verdicts: permanently rejected indices are quarantined (futile to
    /// resend), deferred indices go back on the queue (the store never
    /// attempted them), everything else is marked posted. Exactly the
    /// accepted reports count toward `reports_posted` — nothing is
    /// marked posted that the server did not take.
    fn reconcile_receipt(
        &mut self,
        drained: Vec<Report>,
        rejected_indices: &[usize],
        deferred_indices: &[usize],
    ) {
        let mut posted_now = 0u64;
        for (i, r) in drained.into_iter().enumerate() {
            if rejected_indices.contains(&i) {
                self.stats.reports_quarantined += 1;
                csaw_obs::event!("report.quarantine", asn = r.asn as u64);
                self.quarantined.push(r);
            } else if deferred_indices.contains(&i) {
                self.stats.reports_requeued += 1;
                self.report_queue.push(r);
            } else {
                if let Ok(u) = Url::parse(&r.url) {
                    self.local_db.mark_posted(&u);
                }
                self.stats.reports_posted += 1;
                posted_now += 1;
            }
        }
        if self.timeline.enabled() {
            self.timeline
                .counter("client.reports.posted", &[])
                .add(posted_now);
            self.ts_set_queue_depth();
        }
    }

    /// Close the active report-post trace. Called on **every** exit path
    /// of a post attempt — a root left dangling turns into a truncated
    /// causal tree that the trace-report gate flags as a lost report.
    fn complete_post_trace(&self, now: SimTime, queued: usize, accepted: usize, ok: bool) {
        csaw_obs::trace::complete_active(
            "report.post",
            now.as_micros(),
            0,
            &[
                ("queued", csaw_obs::json::JsonValue::from(queued as u64)),
                ("accepted", csaw_obs::json::JsonValue::from(accepted as u64)),
                ("ok", csaw_obs::json::JsonValue::from(ok)),
            ],
        );
    }

    /// Push pending blocked-URL reports to the server (carried over Tor
    /// in the paper; content is identical either way — no PII on the
    /// wire by construction).
    pub fn post_reports<G: GlobalApi + ?Sized>(&mut self, server: &G, now: SimTime) -> usize {
        let Some(uuid) = self.uuid else { return 0 };
        if self.report_queue.is_empty() || !self.backoff_clear(now) {
            return 0;
        }
        // A report post is its own causal tree (REPORT stream, so ids
        // never collide with fetch traces from the same seed): the
        // server's ingest events land under this root. The ordinal
        // advances on every attempt whether or not a sink is listening —
        // instrumented and bare runs of the same seed must derive the
        // same ids for the same attempts.
        let queued = self.report_queue.len();
        let ordinal = self.report_seq;
        self.report_seq += 1;
        let _root = csaw_obs::scope::current().sink.enabled().then(|| {
            csaw_obs::trace::root(
                csaw_obs::trace::derive(self.trace_seed, csaw_obs::trace::stream::REPORT, ordinal),
                now.as_micros(),
            )
        });
        // Poison sweep before the batch is cut: a single unencodable
        // report must not pin the whole queue.
        self.quarantine_poison();
        if self.report_queue.is_empty() {
            self.complete_post_trace(now, queued, 0, false);
            return 0;
        }
        // Wire round trip: encode, (Tor carries it), the batch owns the
        // server-side decode. Chaos runs corrupt the wire here.
        let mut wire = Report::encode_batch(&self.report_queue);
        if let Some(f) = self.wire_fault.as_mut() {
            if f.corrupt(&mut wire) {
                csaw_obs::event!("fault.wire.corrupt", queued = queued as u64);
            }
        }
        let batch = match crate::global::Batch::from_wire(uuid, &wire, now) {
            Ok(b) => b,
            Err(_) => {
                // The *wire* failed, not the reports (they survived the
                // round-trip sweep above): transient, so the queue stays
                // for the retry and backoff arms.
                self.bump_backoff(now);
                self.complete_post_trace(now, queued, 0, false);
                return 0;
            }
        };
        match server.ingest(batch) {
            Ok(receipt) => {
                let drained: Vec<Report> = self.report_queue.drain(..).collect();
                self.reconcile_receipt(
                    drained,
                    &receipt.rejected_indices,
                    &receipt.deferred_indices,
                );
                self.reset_backoff();
                self.complete_post_trace(now, queued, receipt.accepted, true);
                receipt.accepted
            }
            Err(_) => {
                // Server unavailable: every report stays queued; the
                // trace still closes (a dangling root reads as loss).
                self.bump_backoff(now);
                self.complete_post_trace(now, queued, 0, false);
                0
            }
        }
    }

    /// Post pending reports through the distributed collector tier (§5's
    /// OONI-style hidden-service collectors) instead of a direct server
    /// connection. On total collector blockage the batch stays queued for
    /// the next attempt.
    pub fn post_reports_via(
        &mut self,
        collectors: &crate::global::CollectorSet,
        server: &ServerDb,
        now: SimTime,
    ) -> Result<crate::global::SubmitReceipt, crate::global::SubmitError> {
        let Some(uuid) = self.uuid else {
            return Err(crate::global::SubmitError::Rejected(
                crate::global::PostError::UnknownClient,
            ));
        };
        self.quarantine_poison();
        if self.report_queue.is_empty() {
            return Ok(crate::global::SubmitReceipt::empty());
        }
        match collectors.submit(server, uuid, &self.report_queue, now, &mut self.rng) {
            Ok(receipt) => {
                let drained: Vec<Report> = self.report_queue.drain(..).collect();
                self.reconcile_receipt(
                    drained,
                    &receipt.rejected_indices,
                    &receipt.deferred_indices,
                );
                self.reset_backoff();
                Ok(receipt)
            }
            Err(e) => {
                // Total collector blockage or a server-side refusal: the
                // batch stays queued for the next attempt, with backoff.
                self.bump_backoff(now);
                Err(e)
            }
        }
    }

    /// Anonymity-preferring clients must never leak through non-anonymous
    /// transports — surfaced for tests/audits.
    pub fn preference(&self) -> UserPreference {
        self.cfg.preference
    }

    /// Reports still waiting for a successful post.
    pub fn pending_reports(&self) -> usize {
        self.report_queue.len()
    }

    /// Reports pulled aside as undeliverable — kept for audit, counted
    /// in [`ClientStats::reports_quarantined`].
    pub fn quarantined_reports(&self) -> &[Report] {
        &self.quarantined
    }

    /// When the next post attempt may run, if backoff is armed.
    pub fn next_report_at(&self) -> Option<SimTime> {
        self.next_report_at
    }

    /// Arm deterministic wire corruption on the report post path (chaos
    /// experiments only).
    pub fn arm_wire_fault(&mut self, fault: WireFault) {
        self.wire_fault = Some(fault);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::profiles;
    use csaw_circumvent::world::SiteSpec;
    use csaw_simnet::topology::{AccessNetwork, Provider, Region, Site};

    fn build_world(policy: csaw_censor::CensorPolicy, asn: Asn) -> World {
        let provider = Provider::new(asn, "isp");
        let access = AccessNetwork::single(provider);
        World::builder(access)
            .site(
                SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                    .category(csaw_censor::Category::Video)
                    .frontable(true)
                    .serves_by_ip(true)
                    .default_page(360_000, 20),
            )
            .site(SiteSpec::new(
                "cdn-front.example",
                Site::in_region(Region::Singapore),
            ))
            .site(
                SiteSpec::new("news.example", Site::in_region(Region::UsEast))
                    .default_page(95_000, 6),
            )
            .censor(asn, policy)
            .build()
    }

    fn client(seed: u64) -> CsawClient {
        CsawClient::new(CsawConfig::default(), Some("cdn-front.example"), seed)
    }

    #[test]
    fn unblocked_urls_served_direct_and_recorded() {
        let w = build_world(profiles::clean(), Asn(1));
        let mut c = client(1);
        let url = Url::parse("http://news.example/").unwrap();
        let r1 = c.request(&w, &url, SimTime::from_secs(1));
        assert!(r1.measured, "first contact measures");
        assert_eq!(r1.status_after, Status::NotBlocked);
        assert!(r1.plt.is_some());
        // Second request: straight direct path, no fresh measurement round.
        let r2 = c.request(&w, &url, SimTime::from_secs(2));
        assert!(!r2.measured);
        assert_eq!(r2.transport, "direct");
        assert_eq!(c.stats.measurements, 1);
    }

    #[test]
    fn blocked_url_measured_then_local_fixed() {
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut c = client(2);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let r1 = c.request(&w, &url, SimTime::from_secs(1));
        assert_eq!(r1.status_after, Status::Blocked);
        assert!(r1.plt.is_some(), "redundant copy served the user");
        // Subsequent requests ride the HTTPS local fix and get fast PLTs.
        let r2 = c.request(&w, &url, SimTime::from_secs(10));
        assert_eq!(r2.transport, "https");
        assert!(
            r2.plt.unwrap() < r1.plt.unwrap(),
            "{:?} vs {:?}",
            r2.plt,
            r1.plt
        );
        assert!(c.stats.blocked_recorded >= 1);
    }

    #[test]
    fn global_db_roundtrip_seeds_other_clients() {
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let server = ServerDb::builder(99).build().unwrap();
        // Client 1 discovers the blocking and reports it.
        let mut c1 = client(3);
        c1.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
            .unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c1.request(&w, &url, SimTime::from_secs(1));
        let posted = c1.post_reports(&server, SimTime::from_secs(2));
        assert!(posted >= 1, "posted {posted}");
        // Client 2 syncs and skips the expensive first-measurement round.
        let mut c2 = client(4);
        c2.register(&server, profiles::ISP_A_ASN, SimTime::from_secs(3), 0.0)
            .unwrap();
        assert!(c2.global_lookup(&url).is_some(), "global view has the URL");
        let r = c2.request(&w, &url, SimTime::from_secs(4));
        assert_eq!(r.transport, "https", "straight to the local fix");
        assert_eq!(c2.stats.measurements, 0, "no redundant round needed");
        assert!(r.plt.is_some());
    }

    #[test]
    fn scenario_b_fresh_censorship_caught_inline() {
        let mut w = build_world(profiles::clean(), Asn(42));
        let mut c = client(5);
        let url = Url::parse("http://news.example/").unwrap();
        let r = c.request(&w, &url, SimTime::from_secs(1));
        assert_eq!(r.status_after, Status::NotBlocked);
        // The censor switches on mid-run (the §7.5 situation).
        w.install_censor(
            Asn(42),
            profiles::single_mechanism(
                "event",
                "news.example",
                csaw_censor::DnsTamper::None,
                csaw_censor::IpAction::None,
                csaw_censor::HttpAction::BlockPageInline,
                csaw_censor::TlsAction::None,
            ),
        );
        let r = c.request(&w, &url, SimTime::from_secs(10));
        assert_eq!(
            r.status_after,
            Status::Blocked,
            "in-line detection caught it"
        );
        assert!(r.plt.is_some(), "user still served via circumvention");
        assert_ne!(r.transport, "direct");
    }

    #[test]
    fn anonymity_preference_only_uses_tor() {
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let cfg = CsawConfig::default().with_preference(UserPreference::Anonymity);
        let mut c = CsawClient::new(cfg, Some("cdn-front.example"), 6);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c.request(&w, &url, SimTime::from_secs(1));
        for t in 2..8 {
            let r = c.request(&w, &url, SimTime::from_secs(t));
            assert_eq!(r.transport, "tor", "anonymous transport only");
        }
    }

    #[test]
    fn revalidation_discovers_whitelisting() {
        // Start blocked (IP drop -> relay needed so revalidation fires),
        // then unblock; with p=1 revalidation flips the record quickly.
        let mut w = build_world(
            profiles::single_mechanism(
                "ipblock",
                "www.youtube.com",
                csaw_censor::DnsTamper::None,
                csaw_censor::IpAction::Drop,
                csaw_censor::HttpAction::None,
                csaw_censor::TlsAction::None,
            ),
            Asn(9),
        );
        let cfg = CsawConfig::default().with_revalidate_p(1.0);
        // No fronting available => relays carry the blocked URL.
        let mut c = CsawClient::new(cfg, None, 7);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let r = c.request(&w, &url, SimTime::from_secs(1));
        assert_eq!(r.status_after, Status::Blocked);
        // Unblock and request again: the p=1 probe sees the clean path.
        w.remove_censor(Asn(9));
        let r = c.request(&w, &url, SimTime::from_secs(100));
        assert_eq!(
            r.status_after,
            Status::NotBlocked,
            "revalidation flipped it"
        );
        assert!(c.stats.revalidations >= 1);
        // Next request goes direct.
        let r = c.request(&w, &url, SimTime::from_secs(200));
        assert_eq!(r.transport, "direct");
    }

    #[test]
    fn expiry_retriggers_measurement() {
        let w = build_world(profiles::clean(), Asn(1));
        let cfg = CsawConfig::default().with_record_ttl(SimDuration::from_secs(100));
        let mut c = CsawClient::new(cfg, None, 8);
        let url = Url::parse("http://news.example/").unwrap();
        c.request(&w, &url, SimTime::from_secs(1));
        assert_eq!(c.stats.measurements, 1);
        c.request(&w, &url, SimTime::from_secs(50));
        assert_eq!(c.stats.measurements, 1, "fresh record, no remeasure");
        c.request(&w, &url, SimTime::from_secs(200));
        assert_eq!(c.stats.measurements, 2, "expired record remeasured");
    }

    #[test]
    fn posts_are_never_duplicated() {
        let w = build_world(profiles::clean(), Asn(1));
        let mut c = client(31);
        let url = Url::parse("http://news.example/submit").unwrap();
        // A POST to an unmeasured URL: served directly, no redundant
        // round (stats.measurements stays zero).
        let r = c.request_method(&w, &url, csaw_webproto::Method::Post, SimTime::from_secs(1));
        assert_eq!(r.transport, "direct");
        assert!(r.plt.is_some());
        assert_eq!(c.stats.measurements, 0, "no redundant copy for writes");
        // A POST to a known-blocked URL still goes through circumvention
        // (one path).
        let w2 = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut c2 = client(32);
        let yt = Url::parse("http://www.youtube.com/comment").unwrap();
        c2.request(&w2, &yt, SimTime::from_secs(1)); // GET measures
        let r = c2.request_method(
            &w2,
            &yt,
            csaw_webproto::Method::Post,
            SimTime::from_secs(10),
        );
        assert_ne!(r.transport, "direct");
        assert!(r.plt.is_some());
    }

    #[test]
    fn tick_syncs_and_reports() {
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let server = ServerDb::builder(11).build().unwrap();
        let mut c = client(9);
        c.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
            .unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c.request(&w, &url, SimTime::from_secs(1));
        assert!(server.stats().unique_blocked_urls == 0);
        c.tick(&w, &server, SimTime::from_secs(1_000));
        assert!(
            server.stats().unique_blocked_urls >= 1,
            "tick posted reports"
        );
        assert!(c.stats.reports_posted >= 1);
    }

    // ---- upload-pipeline failure semantics -------------------------------

    use csaw_faults::{FaultProfile, FaultyBackend, OutageSchedule};
    use csaw_store::ShardedStore;
    use std::sync::Arc;

    /// A server whose backend fails every ingest.
    fn broken_server(salt: u64) -> (ServerDb, Arc<FaultyBackend>) {
        let inner = Arc::new(ShardedStore::new(8).unwrap());
        let faulty = Arc::new(FaultyBackend::new(
            inner,
            FaultProfile::none().with_write_fail_p(1.0),
            salt,
        ));
        let server = ServerDb::builder(salt)
            .backend(faulty.clone())
            .build()
            .unwrap();
        (server, faulty)
    }

    fn accounting_holds(c: &CsawClient) {
        assert_eq!(
            c.stats.reports_queued,
            c.stats.reports_posted
                + c.stats.reports_dropped
                + c.stats.reports_quarantined
                + c.pending_reports() as u64,
            "accounting identity violated: {:?} pending={}",
            c.stats,
            c.pending_reports()
        );
    }

    #[test]
    fn failed_ingest_keeps_queue_closes_trace_and_arms_backoff() {
        let sink = Arc::new(csaw_obs::sink::RingSink::new(256));
        let _g = csaw_obs::scope::install(Arc::new(
            csaw_obs::scope::ObsCtx::new().with_sink(sink.clone()),
        ));
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let (server, _faulty) = broken_server(7);
        let mut c = client(40);
        c.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
            .unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c.request(&w, &url, SimTime::from_secs(1));
        let pending = c.pending_reports();
        assert!(pending >= 1);
        let posted = c.post_reports(&server, SimTime::from_secs(2));
        assert_eq!(posted, 0);
        assert_eq!(c.pending_reports(), pending, "queue survives the failure");
        assert_eq!(c.stats.post_failures, 1);
        assert!(
            c.next_report_at() > Some(SimTime::from_secs(2)),
            "backoff armed"
        );
        // The REPORT trace root closed with ok=false — no dangling root.
        let events = sink.drain();
        let post = events
            .iter()
            .find(|e| e.name == "report.post")
            .expect("report.post completion emitted on the failure path");
        let ok = post
            .fields
            .iter()
            .find(|(k, _)| *k == "ok")
            .map(|(_, v)| v.clone());
        assert_eq!(ok, Some(csaw_obs::json::JsonValue::from(false)));
        accounting_holds(&c);
    }

    #[test]
    fn backoff_gates_retries_then_delivers() {
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let inner = Arc::new(ShardedStore::new(8).unwrap());
        // Ingest is down for the first 1000 simulated seconds.
        let faulty = Arc::new(FaultyBackend::new(
            inner,
            FaultProfile::none().with_ingest_outages(OutageSchedule::from_windows(vec![(
                SimTime::ZERO,
                SimTime::from_secs(1_000),
            )])),
            5,
        ));
        let server = ServerDb::builder(5)
            .backend(faulty.clone())
            .build()
            .unwrap();
        let mut c = client(41);
        c.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
            .unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c.request(&w, &url, SimTime::from_secs(1));
        assert_eq!(c.post_reports(&server, SimTime::from_secs(2)), 0);
        let next = c.next_report_at().expect("backoff armed");
        // Attempts inside the backoff window are no-ops: no RNG draws,
        // no failure counter movement.
        assert_eq!(c.post_reports(&server, SimTime::from_secs(3)), 0);
        assert_eq!(c.stats.post_failures, 1, "gated attempt is free");
        // Consecutive failures stretch the delay (exponential).
        let failed_at = next;
        assert_eq!(c.post_reports(&server, failed_at), 0);
        let next2 = c.next_report_at().unwrap();
        assert!(
            next2.duration_since(failed_at) > next.duration_since(SimTime::from_secs(2)),
            "second delay longer than first"
        );
        // After the outage the queued report lands and backoff resets.
        let after = SimTime::from_secs(2_000);
        let posted = c.post_reports(&server, after);
        assert!(posted >= 1);
        assert_eq!(c.next_report_at(), None, "backoff cleared on success");
        assert_eq!(c.pending_reports(), 0);
        accounting_holds(&c);
    }

    #[test]
    fn poison_report_quarantined_not_retried_forever() {
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let server = ServerDb::builder(13).build().unwrap();
        let mut c = client(42);
        c.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
            .unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c.request(&w, &url, SimTime::from_secs(1));
        let healthy = c.pending_reports();
        assert!(healthy >= 1);
        // Inject a poison report: its timestamp exceeds the f64-exact
        // integer range, so it cannot survive the JSON wire round-trip.
        c.report_queue.push(Report {
            url: "http://poison.example/".into(),
            asn: profiles::ISP_A_ASN.0,
            measured_at_us: (1 << 53) + 1,
            stages: vec![BlockingType::HttpDrop],
        });
        c.stats.reports_queued += 1;
        let posted = c.post_reports(&server, SimTime::from_secs(2));
        assert_eq!(posted, healthy, "healthy reports still delivered");
        assert_eq!(c.stats.reports_quarantined, 1);
        assert_eq!(c.quarantined_reports().len(), 1);
        assert_eq!(c.quarantined_reports()[0].url, "http://poison.example/");
        assert_eq!(c.pending_reports(), 0, "poison does not pin the queue");
        accounting_holds(&c);
    }

    #[test]
    fn partial_receipt_requeues_deferred_and_quarantines_rejected() {
        let mut c = client(43);
        let mk = |u: &str| Report {
            url: u.into(),
            asn: 1,
            measured_at_us: 1,
            stages: vec![BlockingType::HttpDrop],
        };
        let drained = vec![
            mk("http://a.example/"),
            mk("http://b.example/"),
            mk("http://c.example/"),
        ];
        c.stats.reports_queued = 3;
        // Server verdict: index 0 accepted, 1 permanently rejected,
        // 2 never attempted (torn write).
        c.reconcile_receipt(drained, &[1], &[2]);
        assert_eq!(c.stats.reports_posted, 1);
        assert_eq!(c.stats.reports_quarantined, 1);
        assert_eq!(c.stats.reports_requeued, 1);
        assert_eq!(c.pending_reports(), 1, "only the deferred report re-queued");
        assert_eq!(c.report_queue[0].url, "http://c.example/");
        assert_eq!(c.quarantined_reports()[0].url, "http://b.example/");
        accounting_holds(&c);
    }

    #[test]
    fn report_seq_advances_without_sink() {
        // No sink installed: trace ids must still advance identically,
        // or instrumented and bare runs of the same seed diverge.
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let (broken, _) = broken_server(17);
        let good = ServerDb::builder(17).build().unwrap();
        let mut c = client(44);
        c.register(&broken, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
            .unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c.request(&w, &url, SimTime::from_secs(1));
        assert_eq!(c.report_seq, 0);
        c.post_reports(&broken, SimTime::from_secs(2)); // fails
        assert_eq!(c.report_seq, 1, "failed attempt advances the ordinal");
        c.uuid = good.register(SimTime::from_secs(3), 0.0).ok();
        // Wait out the backoff the failure armed, then succeed.
        c.post_reports(&good, SimTime::from_secs(10_000));
        assert_eq!(c.report_seq, 2, "ordinal advances with no sink installed");
    }

    #[test]
    fn queue_cap_drops_oldest_and_accounts() {
        let cfg = CsawConfig::default().with_report_queue_cap(2);
        let mut c = CsawClient::new(cfg, None, 45);
        let asn = Asn(1);
        for (i, u) in [
            "http://a.example/",
            "http://b.example/",
            "http://c.example/",
        ]
        .iter()
        .enumerate()
        {
            let url = Url::parse(u).unwrap();
            c.record_blocked(
                &url,
                asn,
                SimTime::from_secs(i as u64 + 1),
                vec![BlockingType::HttpDrop],
            );
        }
        assert_eq!(c.pending_reports(), 2, "bounded at the cap");
        assert_eq!(c.stats.reports_queued, 3);
        assert_eq!(c.stats.reports_dropped, 1);
        assert_eq!(c.report_queue[0].url, "http://b.example/", "oldest evicted");
        accounting_holds(&c);
        // The dropped observation may re-queue: its `reported` entry is
        // forgotten along with the report.
        let a = Url::parse("http://a.example/").unwrap();
        c.record_blocked(
            &a,
            asn,
            SimTime::from_secs(10),
            vec![BlockingType::HttpDrop],
        );
        assert_eq!(c.stats.reports_queued, 4, "dropped report re-queued");
        accounting_holds(&c);
    }

    #[test]
    fn sync_failure_preserves_cached_view() {
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let inner = Arc::new(ShardedStore::new(8).unwrap());
        // Downloads fail between t=100s and t=200s.
        let faulty = Arc::new(FaultyBackend::new(
            inner,
            FaultProfile::none().with_download_outages(OutageSchedule::from_windows(vec![(
                SimTime::from_secs(100),
                SimTime::from_secs(200),
            )])),
            23,
        ));
        let server = ServerDb::builder(23)
            .backend(faulty.clone())
            .build()
            .unwrap();
        // Seed the global DB through a reporting client.
        let mut c1 = client(46);
        c1.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
            .unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c1.request(&w, &url, SimTime::from_secs(1));
        assert!(c1.post_reports(&server, SimTime::from_secs(2)) >= 1);
        // A second client syncs while the backend is healthy...
        let mut c2 = client(47);
        c2.register(&server, profiles::ISP_A_ASN, SimTime::from_secs(3), 0.0)
            .unwrap();
        assert!(c2.global_lookup(&url).is_some());
        // ...then the backend goes down; the pull fails but the cached
        // view survives.
        faulty.set_now(SimTime::from_secs(150));
        let err = c2.sync_global(&server, &[profiles::ISP_A_ASN], SimTime::from_secs(150));
        assert!(err.is_err());
        assert_eq!(c2.stats.sync_failures, 1);
        assert!(
            c2.global_lookup(&url).is_some(),
            "failed pull must not wipe the cached view"
        );
        // Back up: the next pull refreshes normally.
        faulty.set_now(SimTime::from_secs(300));
        assert!(c2
            .sync_global(&server, &[profiles::ISP_A_ASN], SimTime::from_secs(300))
            .is_ok());
        assert!(c2.global_lookup(&url).is_some());
    }

    #[test]
    fn request_and_post_feed_windowed_health_series() {
        use csaw_obs::{SloSet, WindowCfg};
        let ctx = Arc::new(csaw_obs::ObsCtx::new());
        ctx.timeline.configure(WindowCfg {
            window_us: 3_600_000_000, // 1 h windows
            retain: 8,
            slos: Arc::new(SloSet::empty()),
        });
        let _g = csaw_obs::scope::install(ctx.clone());
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let server = ServerDb::builder(55).build().unwrap();
        let mut c = client(55);
        c.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
            .unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c.request(&w, &url, SimTime::from_secs(1));
        let posted = c.post_reports(&server, SimTime::from_secs(2));
        assert!(posted >= 1);
        ctx.flush_timeline();
        let f = &ctx.timeline.recent_frames()[0];
        let asn = profiles::ISP_A_ASN.0.to_string();
        assert_eq!(
            f.series[&format!("client.fetches{{asn={asn}}}")].count(),
            Some(1)
        );
        assert_eq!(f.series["client.fetch.method{method=GET}"].count(), Some(1));
        assert_eq!(f.family_count("client.reports.queued"), posted as u64);
        assert_eq!(f.family_count("client.reports.posted"), posted as u64);
        assert!(
            f.series["client.detect_latency_us"].p99_us().is_some(),
            "in-line detection recorded a latency digest"
        );
        // The queue drained: the per-client depth gauge closed at zero.
        let depth = f
            .series
            .iter()
            .find(|(k, _)| k.starts_with("client.report_queue_depth{"))
            .map(|(_, s)| s.gauge_last().unwrap())
            .expect("queue depth gauge present");
        assert_eq!(depth, 0);
        assert_eq!(f.family_count("client.sync.ok"), 1, "registration synced");
    }

    #[test]
    fn post_reports_via_marks_only_accepted() {
        let w = build_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let server = ServerDb::builder(29).build().unwrap();
        let collectors = crate::global::CollectorSet::default_set();
        let mut c = client(48);
        c.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
            .unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        c.request(&w, &url, SimTime::from_secs(1));
        let pending = c.pending_reports() as u64;
        let receipt = c
            .post_reports_via(&collectors, &server, SimTime::from_secs(2))
            .unwrap();
        assert_eq!(receipt.accepted as u64, pending);
        assert_eq!(c.stats.reports_posted, pending);
        assert_eq!(c.pending_reports(), 0);
        accounting_holds(&c);
        // All collectors blocked: the queue survives and backoff arms.
        let mut blocked = crate::global::CollectorSet::default_set();
        for id in [
            "collector-a.onion",
            "collector-b.onion",
            "collector-c.onion",
        ] {
            blocked.set_reachable(id, false);
        }
        c.request(
            &w,
            &Url::parse("http://www.youtube.com/2").unwrap(),
            SimTime::from_secs(10),
        );
        let before = c.pending_reports();
        assert!(before >= 1);
        let err = c.post_reports_via(&blocked, &server, SimTime::from_secs(11));
        assert!(err.is_err());
        assert_eq!(c.pending_reports(), before, "batch stays queued");
        assert_eq!(c.stats.post_failures, 1);
        accounting_holds(&c);
    }
}
