//! End-to-end chaos test for the upload pipeline.
//!
//! Concurrent clients push reports through a shared [`ServerDb`] whose
//! backend fails ~30% of ingests outright and tears another slice of
//! them mid-batch. The pipeline's contract under that abuse:
//!
//! - **zero silent loss** — every report a client ever queued is
//!   eventually posted, or shows up explicitly in the drop/quarantine
//!   counters (the accounting identity);
//! - **no phantom posts** — nothing is marked posted that the store
//!   did not durably accept: the store's record count must equal the
//!   sum of per-client `reports_posted` (every report uses a unique
//!   URL, so dedup cannot mask a mismatch in either direction).

use csaw::client::CsawClient;
use csaw::config::CsawConfig;
use csaw::global::ServerDb;
use csaw_censor::{profiles, Category};
use csaw_circumvent::world::{SiteSpec, World};
use csaw_faults::{FaultProfile, FaultyBackend};
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{AccessNetwork, Provider, Region, Site};
use csaw_store::ShardedStore;
use csaw_webproto::url::Url;
use std::sync::Arc;

const CLIENTS: usize = 8;
const URLS_PER_CLIENT: usize = 6;
const MAX_ROUNDS: usize = 60;

fn build_world() -> World {
    let provider = Provider::new(profiles::ISP_A_ASN, "isp");
    let access = AccessNetwork::single(provider);
    World::builder(access)
        .site(
            SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                .category(Category::Video)
                .frontable(true)
                .serves_by_ip(true)
                .default_page(360_000, 20),
        )
        .site(SiteSpec::new(
            "cdn-front.example",
            Site::in_region(Region::Singapore),
        ))
        .censor(profiles::ISP_A_ASN, profiles::isp_a())
        .build()
}

#[test]
fn chaotic_backend_never_loses_or_duplicates_reports() {
    let inner = Arc::new(ShardedStore::new(8).unwrap());
    let faulty = Arc::new(FaultyBackend::new(
        inner,
        FaultProfile::none()
            .with_write_fail_p(0.30)
            .with_torn_write_p(0.20),
        0xC5A0,
    ));
    let server = Arc::new(
        ServerDb::builder(0xC5A0)
            .backend(faulty.clone())
            .build()
            .unwrap(),
    );

    let totals: Vec<(u64, u64, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|idx| {
                let server = Arc::clone(&server);
                s.spawn(move || {
                    let w = build_world();
                    let mut c = CsawClient::new(
                        // Short backoff keeps the virtual-time walk small.
                        CsawConfig::default().with_report_backoff(
                            SimDuration::from_secs(30),
                            SimDuration::from_secs(600),
                            0.1,
                        ),
                        Some("cdn-front.example"),
                        1_000 + idx as u64,
                    );
                    c.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
                        .unwrap();
                    // Unique URLs per client: any report both lost and
                    // counted (or posted twice) shifts the global record
                    // count and is caught below.
                    let mut now = SimTime::from_secs(1);
                    for u in 0..URLS_PER_CLIENT {
                        let url =
                            Url::parse(&format!("http://www.youtube.com/c{idx}/u{u}")).unwrap();
                        c.request(&w, &url, now);
                        now += SimDuration::from_secs(10);
                    }
                    assert!(c.pending_reports() > 0, "censored fetches queued reports");
                    // Retry until drained; each round waits out the
                    // backoff ceiling. P(60 consecutive injected
                    // failures) ≈ 0.3^60 — effectively never.
                    for _ in 0..MAX_ROUNDS {
                        if c.pending_reports() == 0 {
                            break;
                        }
                        now += SimDuration::from_secs(700);
                        c.post_reports(&server, now);
                    }
                    assert_eq!(
                        c.pending_reports(),
                        0,
                        "queue drained despite 30% failures + torn writes"
                    );
                    assert_eq!(c.stats.reports_quarantined, 0, "no poison injected");
                    assert_eq!(
                        c.stats.reports_queued,
                        c.stats.reports_posted + c.stats.reports_dropped,
                        "accounting identity at quiescence: {:?}",
                        c.stats
                    );
                    (c.stats.reports_posted, c.stats.reports_requeued, idx)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let posted: u64 = totals.iter().map(|(p, _, _)| p).sum();
    assert_eq!(
        posted,
        (CLIENTS * URLS_PER_CLIENT) as u64,
        "every queued report delivered exactly once"
    );
    // No phantom posts: the store holds exactly one record per posted
    // report (URLs are unique, so neither loss nor duplication hides).
    assert_eq!(
        faulty.inner().record_count(),
        posted as usize,
        "store records == reports marked posted"
    );
    // The chaos actually bit: faults were injected and some batches tore.
    let snap = faulty.snapshot();
    assert!(snap.write_failures > 0, "fault injection exercised");
    let requeued: u64 = totals.iter().map(|(_, r, _)| r).sum();
    assert_eq!(
        requeued, snap.deferred_reports,
        "every report the store deferred was re-queued by its client"
    );
}

/// Collector blockage driven by a seeded outage schedule: while every
/// collector is down the batch stays queued (backoff armed, nothing
/// lost); once the schedule lifts, the same queue drains through
/// whichever collector came back.
#[test]
fn collector_outage_defers_but_never_drops() {
    use csaw::global::CollectorSet;
    use csaw_faults::OutageSchedule;

    let server = ServerDb::builder(0xB10C).build().unwrap();
    let w = build_world();
    let mut c = CsawClient::new(
        CsawConfig::default().with_report_backoff(
            SimDuration::from_secs(30),
            SimDuration::from_secs(300),
            0.1,
        ),
        Some("cdn-front.example"),
        9_001,
    );
    c.register(&server, profiles::ISP_A_ASN, SimTime::ZERO, 0.0)
        .unwrap();
    let url = Url::parse("http://www.youtube.com/outage").unwrap();
    c.request(&w, &url, SimTime::from_secs(1));
    let queued = c.pending_reports();
    assert!(queued >= 1);

    // One schedule per collector, all three down over the same window —
    // a censor blacklisting the hidden-service set at once.
    let ids = [
        "collector-a.onion",
        "collector-b.onion",
        "collector-c.onion",
    ];
    let schedules: Vec<OutageSchedule> = ids
        .iter()
        .map(|_| {
            OutageSchedule::from_windows(vec![(SimTime::from_secs(0), SimTime::from_secs(5_000))])
        })
        .collect();

    let mut collectors = CollectorSet::default_set();
    let mut delivered = 0;
    let mut now = SimTime::from_secs(10);
    for _ in 0..30 {
        // Arm reachability from the schedules at the current instant.
        for (id, sched) in ids.iter().zip(&schedules) {
            collectors.set_reachable(id, !sched.is_down(now));
        }
        if let Ok(receipt) = c.post_reports_via(&collectors, &server, now) {
            delivered += receipt.accepted;
        }
        if c.pending_reports() == 0 {
            break;
        }
        now += SimDuration::from_secs(400);
    }
    assert_eq!(delivered, queued, "queue drained after the outage lifted");
    assert_eq!(c.pending_reports(), 0);
    assert!(
        c.stats.post_failures >= 1,
        "the blockage window cost at least one failed attempt"
    );
    assert_eq!(
        c.stats.reports_queued,
        c.stats.reports_posted + c.stats.reports_dropped + c.stats.reports_quarantined,
        "zero silent loss through the collector outage"
    );
}
