//! Torn-frame reassembly tests for both wire codecs.
//!
//! TCP is a byte stream: a message written in one `write_all` can
//! arrive split at *any* byte boundary, across any number of reads.
//! These tests drive `read_request` / `read_response` / `read_frame`
//! through an in-memory reader that serves a wire image in chunks —
//! every possible 2-way split, plus byte-at-a-time — and assert the
//! reassembled message is identical to the original. They also pin the
//! three failure contracts: oversized messages are `InvalidData`,
//! closing mid-message is `UnexpectedEof`, and closing on a message
//! boundary is a clean `Ok(None)` (requests and frames only; a
//! response must always arrive).

use csaw_webproto::bytes::BytesMut;
use csaw_webproto::codec::{
    decode_frame, read_frame, read_request, read_response, Frame, MAX_MESSAGE_BYTES,
};
use csaw_webproto::http::{Request, Response};
use csaw_webproto::url::Url;
use std::io::{self, Read};

/// Serves a byte image split into predetermined chunks: each `read`
/// call yields at most the remainder of the current chunk, then EOF —
/// exactly how a torn TCP stream presents to a blocking reader.
struct ChunkedReader {
    chunks: Vec<Vec<u8>>,
    next: usize,
}

impl ChunkedReader {
    fn new(chunks: Vec<Vec<u8>>) -> ChunkedReader {
        ChunkedReader { chunks, next: 0 }
    }

    /// Split `image` in two at byte `i`.
    fn split_at(image: &[u8], i: usize) -> ChunkedReader {
        ChunkedReader::new(vec![image[..i].to_vec(), image[i..].to_vec()])
    }

    /// One byte per read call.
    fn byte_at_a_time(image: &[u8]) -> ChunkedReader {
        ChunkedReader::new(image.iter().map(|b| vec![*b]).collect())
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.next < self.chunks.len() && self.chunks[self.next].is_empty() {
            self.next += 1;
        }
        if self.next >= self.chunks.len() {
            return Ok(0);
        }
        let chunk = &mut self.chunks[self.next];
        let n = chunk.len().min(out.len());
        out[..n].copy_from_slice(&chunk[..n]);
        chunk.drain(..n);
        if chunk.is_empty() {
            self.next += 1;
        }
        Ok(n)
    }
}

fn sample_request() -> Request {
    let mut req = Request::get(&Url::parse("http://www.example.com/watch?v=1").unwrap());
    req.headers.set("X-Torn-Test", "yes");
    req
}

fn sample_response() -> Response {
    Response::ok_html("<html><body>a genuine page with some words in it</body></html>".as_bytes())
}

fn sample_frame() -> Frame {
    Frame::new(0x42, br#"{"client":"00000000deadbeef","n":3}"#.to_vec())
}

#[test]
fn request_reassembles_across_every_two_way_split() {
    let req = sample_request();
    let image = req.encode();
    for i in 0..=image.len() {
        let mut r = ChunkedReader::split_at(&image, i);
        let mut buf = BytesMut::new();
        let got = read_request(&mut r, &mut buf)
            .unwrap_or_else(|e| panic!("split at {i}: {e}"))
            .unwrap_or_else(|| panic!("split at {i}: no request"));
        assert_eq!(got, req, "split at byte {i}");
        assert!(buf.is_empty(), "split at {i} left residue");
    }
}

#[test]
fn response_reassembles_across_every_two_way_split() {
    let resp = sample_response();
    let image = resp.encode();
    for i in 0..=image.len() {
        let mut r = ChunkedReader::split_at(&image, i);
        let mut buf = BytesMut::new();
        let got = read_response(&mut r, &mut buf).unwrap_or_else(|e| panic!("split at {i}: {e}"));
        assert_eq!(got, resp, "split at byte {i}");
    }
}

#[test]
fn frame_reassembles_across_every_two_way_split() {
    let frame = sample_frame();
    let image = frame.encode();
    for i in 0..=image.len() {
        let mut r = ChunkedReader::split_at(&image, i);
        let mut buf = BytesMut::new();
        let got = read_frame(&mut r, &mut buf)
            .unwrap_or_else(|e| panic!("split at {i}: {e}"))
            .unwrap_or_else(|| panic!("split at {i}: no frame"));
        assert_eq!(got, frame, "split at byte {i}");
        assert!(buf.is_empty(), "split at {i} left residue");
    }
}

#[test]
fn messages_reassemble_byte_at_a_time() {
    let req = sample_request();
    let mut r = ChunkedReader::byte_at_a_time(&req.encode());
    let mut buf = BytesMut::new();
    assert_eq!(read_request(&mut r, &mut buf).unwrap().unwrap(), req);

    let resp = sample_response();
    let mut r = ChunkedReader::byte_at_a_time(&resp.encode());
    let mut buf = BytesMut::new();
    assert_eq!(read_response(&mut r, &mut buf).unwrap(), resp);

    let frame = sample_frame();
    let mut r = ChunkedReader::byte_at_a_time(&frame.encode());
    let mut buf = BytesMut::new();
    assert_eq!(read_frame(&mut r, &mut buf).unwrap().unwrap(), frame);
}

#[test]
fn back_to_back_frames_survive_an_arbitrary_tear() {
    // Two frames in one stream, torn in the middle of the *second*
    // frame's header: the first decodes, the second reassembles.
    let a = Frame::new(1, b"first".to_vec());
    let b = Frame::new(2, b"second frame payload".to_vec());
    let mut image = a.encode();
    let boundary = image.len();
    image.extend_from_slice(&b.encode());
    for i in [boundary + 1, boundary + 2, boundary + 3] {
        let mut r = ChunkedReader::split_at(&image, i);
        let mut buf = BytesMut::new();
        assert_eq!(read_frame(&mut r, &mut buf).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut r, &mut buf).unwrap().unwrap(), b);
        assert_eq!(read_frame(&mut r, &mut buf).unwrap(), None, "clean EOF");
    }
}

#[test]
fn clean_close_on_a_message_boundary_is_none() {
    // An empty stream: the peer connected and closed without sending.
    let mut r = ChunkedReader::new(vec![]);
    let mut buf = BytesMut::new();
    assert!(read_request(&mut r, &mut buf).unwrap().is_none());

    let mut r = ChunkedReader::new(vec![]);
    let mut buf = BytesMut::new();
    assert!(read_frame(&mut r, &mut buf).unwrap().is_none());
}

#[test]
fn close_mid_message_is_unexpected_eof() {
    // Every proper prefix of each wire image must yield UnexpectedEof —
    // never a phantom message, never a clean None.
    let req_image = sample_request().encode();
    for i in 1..req_image.len() {
        let mut r = ChunkedReader::new(vec![req_image[..i].to_vec()]);
        let mut buf = BytesMut::new();
        let err = read_request(&mut r, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "prefix {i}");
    }
    let frame_image = sample_frame().encode();
    for i in 1..frame_image.len() {
        let mut r = ChunkedReader::new(vec![frame_image[..i].to_vec()]);
        let mut buf = BytesMut::new();
        let err = read_frame(&mut r, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "prefix {i}");
    }
    let resp_image = sample_response().encode();
    let mut r = ChunkedReader::new(vec![resp_image[..resp_image.len() - 1].to_vec()]);
    let mut buf = BytesMut::new();
    let err = read_response(&mut r, &mut buf).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
}

#[test]
fn oversized_request_is_rejected_as_invalid_data() {
    // Headers that never terminate: once the buffered bytes cross the
    // cap the reader must bail with InvalidData rather than buffer
    // forever. (The over-cap prefix is pre-buffered so the test doesn't
    // re-scan 8 MiB of headers on every 16 KiB read.)
    let mut image = b"GET / HTTP/1.1\r\nHost: www.example.com\r\n".to_vec();
    let filler = b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
    while image.len() <= MAX_MESSAGE_BYTES {
        image.extend_from_slice(filler);
    }
    let mut buf = BytesMut::new();
    buf.extend_from_slice(&image);
    let mut r = ChunkedReader::new(vec![filler.to_vec()]);
    let err = read_request(&mut r, &mut buf).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

#[test]
fn oversized_frame_header_is_rejected_even_when_torn() {
    // A header announcing an over-cap frame is rejected from the header
    // alone — including when the header itself arrives byte by byte.
    let image = ((csaw_webproto::codec::MAX_FRAME_BYTES as u32) + 1).to_be_bytes();
    let mut r = ChunkedReader::byte_at_a_time(&image);
    let mut buf = BytesMut::new();
    let err = read_frame(&mut r, &mut buf).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

#[test]
fn torn_header_does_not_consume_prematurely() {
    // With only part of the header buffered, decode_frame must leave
    // the buffer untouched and report "need more".
    let image = sample_frame().encode();
    for i in 0..4 {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&image[..i]);
        assert!(
            decode_frame(&mut buf).unwrap().is_none(),
            "header prefix {i}"
        );
        assert_eq!(buf.len(), i, "header prefix {i} was consumed");
    }
}
