//! Property-based tests for the URL type — the data structure underneath
//! C-Saw's local database keys and aggregation.

use csaw_webproto::url::{Host, Scheme, Url};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}[a-z0-9]".prop_map(|s| s)
}

fn arb_hostname() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_label(), 1..4).prop_map(|ls| ls.join("."))
}

fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9_.-]{1,10}", 0..5)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

fn arb_url() -> impl Strategy<Value = Url> {
    (
        prop::bool::ANY,
        arb_hostname(),
        prop::option::of(1024u16..60000),
        arb_path(),
        prop::option::of("[a-z]=[0-9]{1,4}"),
    )
        .prop_map(|(https, host, port, path, query)| {
            let scheme = if https { Scheme::Https } else { Scheme::Http };
            Url::from_parts(
                scheme,
                Host::parse(&host).unwrap(),
                port,
                &path,
                query.as_deref(),
            )
        })
}

proptest! {
    /// Display → parse is the identity on normalized URLs.
    #[test]
    fn display_parse_roundtrip(u in arb_url()) {
        let s = u.to_string();
        let parsed = Url::parse(&s).expect("displayed URL must reparse");
        prop_assert_eq!(parsed, u);
    }

    /// Every URL is derived from its own base, and `base()` is idempotent.
    #[test]
    fn base_is_ancestor_and_idempotent(u in arb_url()) {
        let b = u.base();
        prop_assert!(b.is_base());
        prop_assert!(u.is_derived_from(&b));
        prop_assert_eq!(b.base(), b.clone());
        // The base preserves identity components.
        prop_assert_eq!(b.scheme(), u.scheme());
        prop_assert_eq!(b.host(), u.host());
        prop_assert_eq!(b.port(), u.port());
    }

    /// Derivation is reflexive and transitive along path prefixes.
    #[test]
    fn derivation_prefix_chain(u in arb_url()) {
        prop_assert!(u.is_derived_from(&u));
        // Build each ancestor by truncating path segments; all must be
        // ancestors of u, and each deeper one derived from each shallower.
        let segs = u.path_segments().into_iter().map(str::to_string).collect::<Vec<_>>();
        let mut ancestors = vec![u.base()];
        for k in 1..=segs.len() {
            let path = format!("/{}", segs[..k].join("/"));
            ancestors.push(Url::from_parts(u.scheme(), u.host().clone(), Some(u.port()), &path, None));
        }
        for (i, a) in ancestors.iter().enumerate() {
            prop_assert!(u.is_derived_from(a), "u not derived from ancestor {i}");
            for b in &ancestors[..=i] {
                prop_assert!(a.is_derived_from(b));
            }
        }
    }

    /// Scheme swapping: default ports map to the new scheme's default,
    /// explicit non-default ports are preserved; host/path untouched.
    #[test]
    fn scheme_swap_port_semantics(u in arb_url()) {
        let swapped = u.with_scheme(Scheme::Https);
        if u.port() == u.scheme().default_port() || u.port() == Scheme::Https.default_port() {
            prop_assert_eq!(swapped.port(), Scheme::Https.default_port());
        } else {
            prop_assert_eq!(swapped.port(), u.port());
        }
        prop_assert_eq!(swapped.host(), u.host());
        prop_assert_eq!(swapped.path(), u.path());
    }

    /// Parsing is total over displayed forms with odd-but-legal inputs:
    /// extra slashes collapse, dot segments vanish.
    #[test]
    fn normalization_stable(host in arb_hostname(), segs in prop::collection::vec("[a-z0-9]{1,6}", 0..4)) {
        let messy = format!("http://{}//{}/.", host, segs.join("//"));
        let u = Url::parse(&messy).unwrap();
        let clean = Url::parse(&u.to_string()).unwrap();
        prop_assert_eq!(u, clean);
    }
}
