//! Randomized tests for the URL type — the data structure underneath
//! C-Saw's local database keys and aggregation.
//!
//! Originally property-based; now driven by a small local xorshift so
//! the crate stays dependency-free. Every case derives from a fixed
//! seed, so failures reproduce exactly.

use csaw_webproto::url::{Host, Scheme, Url};

const CASES: usize = 300;

/// Minimal deterministic generator (xorshift64*), local to this test so
/// `csaw-webproto` keeps zero dependencies (`csaw-simnet` depends on us,
/// so borrowing its `DetRng` would be a cycle).
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn string(&mut self, alphabet: &[u8], min: usize, max: usize) -> String {
        let n = self.index(max - min + 1) + min;
        (0..n)
            .map(|_| alphabet[self.index(alphabet.len())] as char)
            .collect()
    }
}

fn rand_label(rng: &mut TestRng) -> String {
    // [a-z][a-z0-9-]{0,8}[a-z0-9]
    let first = rng.string(b"abcdefghijklmnopqrstuvwxyz", 1, 1);
    let mid = rng.string(b"abcdefghijklmnopqrstuvwxyz0123456789-", 0, 8);
    let last = rng.string(b"abcdefghijklmnopqrstuvwxyz0123456789", 1, 1);
    format!("{first}{mid}{last}")
}

fn rand_hostname(rng: &mut TestRng) -> String {
    let n = rng.index(3) + 1;
    (0..n)
        .map(|_| rand_label(rng))
        .collect::<Vec<_>>()
        .join(".")
}

fn rand_path(rng: &mut TestRng) -> String {
    let n = rng.index(5);
    format!(
        "/{}",
        (0..n)
            .map(|_| rng.string(
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-",
                1,
                10
            ))
            .collect::<Vec<_>>()
            .join("/")
    )
}

fn rand_url(rng: &mut TestRng) -> Url {
    let scheme = if rng.chance() {
        Scheme::Https
    } else {
        Scheme::Http
    };
    let host = rand_hostname(rng);
    let port = if rng.chance() {
        Some((rng.index(60000 - 1024) + 1024) as u16)
    } else {
        None
    };
    let path = rand_path(rng);
    let query = if rng.chance() {
        Some(format!(
            "{}={}",
            rng.string(b"abcdefghijklmnopqrstuvwxyz", 1, 1),
            rng.string(b"0123456789", 1, 4)
        ))
    } else {
        None
    };
    Url::from_parts(
        scheme,
        Host::parse(&host).unwrap(),
        port,
        &path,
        query.as_deref(),
    )
}

/// Display → parse is the identity on normalized URLs.
#[test]
fn display_parse_roundtrip() {
    let mut rng = TestRng(0x5eed_0001);
    for case in 0..CASES {
        let u = rand_url(&mut rng);
        let s = u.to_string();
        let parsed = Url::parse(&s).expect("displayed URL must reparse");
        assert_eq!(parsed, u, "case {case}: {s}");
    }
}

/// Every URL is derived from its own base, and `base()` is idempotent.
#[test]
fn base_is_ancestor_and_idempotent() {
    let mut rng = TestRng(0x5eed_0002);
    for case in 0..CASES {
        let u = rand_url(&mut rng);
        let b = u.base();
        assert!(b.is_base(), "case {case}");
        assert!(u.is_derived_from(&b), "case {case}");
        assert_eq!(b.base(), b.clone(), "case {case}");
        // The base preserves identity components.
        assert_eq!(b.scheme(), u.scheme(), "case {case}");
        assert_eq!(b.host(), u.host(), "case {case}");
        assert_eq!(b.port(), u.port(), "case {case}");
    }
}

/// Derivation is reflexive and transitive along path prefixes.
#[test]
fn derivation_prefix_chain() {
    let mut rng = TestRng(0x5eed_0003);
    for case in 0..CASES {
        let u = rand_url(&mut rng);
        assert!(u.is_derived_from(&u), "case {case}");
        // Build each ancestor by truncating path segments; all must be
        // ancestors of u, and each deeper one derived from each shallower.
        let segs = u
            .path_segments()
            .into_iter()
            .map(str::to_string)
            .collect::<Vec<_>>();
        let mut ancestors = vec![u.base()];
        for k in 1..=segs.len() {
            let path = format!("/{}", segs[..k].join("/"));
            ancestors.push(Url::from_parts(
                u.scheme(),
                u.host().clone(),
                Some(u.port()),
                &path,
                None,
            ));
        }
        for (i, a) in ancestors.iter().enumerate() {
            assert!(
                u.is_derived_from(a),
                "case {case}: u not derived from ancestor {i}"
            );
            for b in &ancestors[..=i] {
                assert!(a.is_derived_from(b), "case {case}");
            }
        }
    }
}

/// Scheme swapping: default ports map to the new scheme's default,
/// explicit non-default ports are preserved; host/path untouched.
#[test]
fn scheme_swap_port_semantics() {
    let mut rng = TestRng(0x5eed_0004);
    for case in 0..CASES {
        let u = rand_url(&mut rng);
        let swapped = u.with_scheme(Scheme::Https);
        if u.port() == u.scheme().default_port() || u.port() == Scheme::Https.default_port() {
            assert_eq!(swapped.port(), Scheme::Https.default_port(), "case {case}");
        } else {
            assert_eq!(swapped.port(), u.port(), "case {case}");
        }
        assert_eq!(swapped.host(), u.host(), "case {case}");
        assert_eq!(swapped.path(), u.path(), "case {case}");
    }
}

/// Parsing is total over displayed forms with odd-but-legal inputs:
/// extra slashes collapse, dot segments vanish.
#[test]
fn normalization_stable() {
    let mut rng = TestRng(0x5eed_0005);
    for case in 0..CASES {
        let host = rand_hostname(&mut rng);
        let n = rng.index(4);
        let segs: Vec<String> = (0..n)
            .map(|_| rng.string(b"abcdefghijklmnopqrstuvwxyz0123456789", 1, 6))
            .collect();
        let messy = format!("http://{}//{}/.", host, segs.join("//"));
        let u = Url::parse(&messy).unwrap();
        let clean = Url::parse(&u.to_string()).unwrap();
        assert_eq!(u, clean, "case {case}: {messy}");
    }
}
