//! HTTP/1.1 message model with a byte-level codec.
//!
//! The simulation layers use the structured types; the real-socket proxy
//! crate (`csaw-proxy`) uses [`Request::encode`]/[`Response::encode`] and
//! the incremental parsers to speak actual HTTP/1.1 on localhost. The
//! codec supports what a censorship-measurement proxy needs: request
//! lines, case-insensitive headers, `Content-Length` bodies, and status
//! lines. Chunked transfer encoding is deliberately out of scope (origin
//! servers in the testbed always send `Content-Length`).

use crate::bytes::Bytes;
use std::fmt;

use crate::url::{Scheme, Url};

/// HTTP request methods the model supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Idempotent fetch — safe to duplicate across paths.
    Get,
    /// State-changing — C-Saw never duplicates POSTs (§4.3.1 footnote).
    Post,
    /// Used by clients speaking to forward proxies for HTTPS tunnelling.
    Connect,
    /// HEAD — metadata-only probe.
    Head,
}

impl Method {
    /// The method token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Connect => "CONNECT",
            Method::Head => "HEAD",
        }
    }

    /// Parse a method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "CONNECT" => Some(Method::Connect),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }

    /// May this request be safely sent redundantly on several paths?
    pub fn safe_to_duplicate(self) -> bool {
        matches!(self, Method::Get | Method::Head)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A case-insensitive multimap of headers preserving insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Empty header set.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Append a header.
    pub fn insert(&mut self, name: &str, value: &str) {
        self.entries
            .push((name.to_string(), value.trim().to_string()));
    }

    /// First value for a name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Replace all values of a name with one value.
    pub fn set(&mut self, name: &str, value: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.insert(name, value);
    }

    /// Remove all values of a name.
    pub fn remove(&mut self, name: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target: path + optional query (origin-form), or authority
    /// for CONNECT.
    pub target: String,
    /// Headers, including `Host`.
    pub headers: Headers,
    /// Body bytes (empty for GET/HEAD).
    pub body: Bytes,
}

impl Request {
    /// Build a GET for a URL (origin-form target + Host header), as a
    /// browser or proxy would emit it.
    pub fn get(url: &Url) -> Request {
        let mut headers = Headers::new();
        let host_val = if url.port() == url.scheme().default_port() {
            url.host().to_string()
        } else {
            format!("{}:{}", url.host(), url.port())
        };
        headers.insert("Host", &host_val);
        headers.insert("User-Agent", "csaw/0.1");
        headers.insert("Accept", "*/*");
        headers.insert("Connection", "keep-alive");
        let target = match url.query() {
            Some(q) => format!("{}?{}", url.path(), q),
            None => url.path().to_string(),
        };
        Request {
            method: Method::Get,
            target,
            headers,
            body: Bytes::new(),
        }
    }

    /// The Host header value (without port), if present.
    pub fn host(&self) -> Option<String> {
        self.headers
            .get("Host")
            .map(|h| h.split(':').next().unwrap_or(h).to_ascii_lowercase())
    }

    /// Reconstruct the URL this request addresses, given the scheme of the
    /// carrying connection. Returns `None` when Host is missing/invalid.
    pub fn url(&self, scheme: Scheme) -> Option<Url> {
        let host_hdr = self.headers.get("Host")?;
        let full = format!("{}://{}{}", scheme.as_str(), host_hdr, self.target);
        Url::parse(&full).ok()
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.body.len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        let mut wrote_cl = false;
        for (n, v) in self.headers.iter() {
            if n.eq_ignore_ascii_case("content-length") {
                wrote_cl = true;
            }
            out.extend_from_slice(n.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !self.body.is_empty() && !wrote_cl {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse a complete request from a buffer. Returns the request and the
    /// number of bytes consumed, or `Ok(None)` if more bytes are needed.
    pub fn parse(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpParseError> {
        let Some(head_end) = find_head_end(buf) else {
            return Ok(None);
        };
        let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| HttpParseError::NotUtf8)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(HttpParseError::BadStartLine)?;
        let mut parts = request_line.split(' ');
        let method = Method::parse(parts.next().unwrap_or("")).ok_or(HttpParseError::BadMethod)?;
        let target = parts
            .next()
            .filter(|t| !t.is_empty())
            .ok_or(HttpParseError::BadStartLine)?
            .to_string();
        let version = parts.next().ok_or(HttpParseError::BadStartLine)?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpParseError::BadVersion);
        }
        let headers = parse_headers(lines)?;
        let body_len = content_length(&headers)?;
        let total = head_end + 4 + body_len;
        if buf.len() < total {
            return Ok(None);
        }
        let body = Bytes::copy_from_slice(&buf[head_end + 4..total]);
        Ok(Some((
            Request {
                method,
                target,
                headers,
                body,
            },
            total,
        )))
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Reason phrase, e.g. "OK".
    pub reason: String,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// A 200 OK with an HTML body.
    pub fn ok_html(body: impl Into<Bytes>) -> Response {
        let body = body.into();
        let mut headers = Headers::new();
        headers.insert("Content-Type", "text/html; charset=utf-8");
        headers.insert("Content-Length", &body.len().to_string());
        Response {
            status: 200,
            reason: "OK".into(),
            headers,
            body,
        }
    }

    /// A redirect (302) to a location — censors use these to bounce
    /// clients to block-page servers.
    pub fn redirect(location: &str) -> Response {
        let mut headers = Headers::new();
        headers.insert("Location", location);
        headers.insert("Content-Length", "0");
        Response {
            status: 302,
            reason: "Found".into(),
            headers,
            body: Bytes::new(),
        }
    }

    /// A plain error response.
    pub fn error(status: u16, reason: &str) -> Response {
        let body = Bytes::from(format!(
            "<html><body><h1>{status} {reason}</h1></body></html>"
        ));
        let mut headers = Headers::new();
        headers.insert("Content-Type", "text/html");
        headers.insert("Content-Length", &body.len().to_string());
        Response {
            status,
            reason: reason.into(),
            headers,
            body,
        }
    }

    /// Is this a redirect status?
    pub fn is_redirect(&self) -> bool {
        matches!(self.status, 301 | 302 | 303 | 307 | 308)
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        let mut wrote_cl = false;
        for (n, v) in self.headers.iter() {
            if n.eq_ignore_ascii_case("content-length") {
                wrote_cl = true;
            }
            out.extend_from_slice(n.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !wrote_cl {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse a complete response from a buffer. Returns the response and
    /// bytes consumed, or `Ok(None)` if more bytes are needed.
    pub fn parse(buf: &[u8]) -> Result<Option<(Response, usize)>, HttpParseError> {
        let Some(head_end) = find_head_end(buf) else {
            return Ok(None);
        };
        let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| HttpParseError::NotUtf8)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or(HttpParseError::BadStartLine)?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().ok_or(HttpParseError::BadStartLine)?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpParseError::BadVersion);
        }
        let status: u16 = parts
            .next()
            .ok_or(HttpParseError::BadStartLine)?
            .parse()
            .map_err(|_| HttpParseError::BadStatus)?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = parse_headers(lines)?;
        let body_len = content_length(&headers)?;
        let total = head_end + 4 + body_len;
        if buf.len() < total {
            return Ok(None);
        }
        let body = Bytes::copy_from_slice(&buf[head_end + 4..total]);
        Ok(Some((
            Response {
                status,
                reason,
                headers,
                body,
            },
            total,
        )))
    }
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// Header section was not valid UTF-8.
    NotUtf8,
    /// Malformed request/status line.
    BadStartLine,
    /// Unknown method token.
    BadMethod,
    /// Unsupported HTTP version.
    BadVersion,
    /// Unparseable status code.
    BadStatus,
    /// Malformed header line.
    BadHeader,
    /// Content-Length present but not a number.
    BadContentLength,
}

impl fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for HttpParseError {}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers, HttpParseError> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(HttpParseError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpParseError::BadHeader);
        }
        headers.insert(name, value);
    }
    Ok(headers)
}

fn content_length(headers: &Headers) -> Result<usize, HttpParseError> {
    match headers.get("Content-Length") {
        None => Ok(0),
        Some(v) => v
            .trim()
            .parse()
            .map_err(|_| HttpParseError::BadContentLength),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_builder_sets_host() {
        let u = Url::parse("http://www.foo.com/a?x=1").unwrap();
        let r = Request::get(&u);
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.target, "/a?x=1");
        assert_eq!(r.headers.get("Host"), Some("www.foo.com"));
        assert_eq!(r.host().as_deref(), Some("www.foo.com"));
        assert_eq!(r.url(Scheme::Http), Some(u));
    }

    #[test]
    fn nondefault_port_in_host_header() {
        let u = Url::parse("http://foo.com:8080/").unwrap();
        let r = Request::get(&u);
        assert_eq!(r.headers.get("Host"), Some("foo.com:8080"));
        assert_eq!(r.url(Scheme::Http), Some(u));
    }

    #[test]
    fn request_roundtrip() {
        let u = Url::parse("http://example.com/path/page.html?q=v").unwrap();
        let req = Request::get(&u);
        let wire = req.encode();
        let (parsed, used) = Request::parse(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_with_body_roundtrip() {
        let mut req = Request::get(&Url::parse("http://x.com/post").unwrap());
        req.method = Method::Post;
        req.body = Bytes::from_static(b"k=v&a=b");
        let wire = req.encode();
        let (parsed, _) = Request::parse(&wire).unwrap().unwrap();
        assert_eq!(parsed.body, req.body);
        assert_eq!(
            parsed.headers.get("Content-Length"),
            Some("7"),
            "encoder adds Content-Length"
        );
    }

    #[test]
    fn incremental_parse_needs_more() {
        let u = Url::parse("http://example.com/").unwrap();
        let wire = Request::get(&u).encode();
        for cut in [0, 5, wire.len() - 1] {
            assert_eq!(Request::parse(&wire[..cut]).unwrap(), None, "cut {cut}");
        }
        assert!(Request::parse(&wire).unwrap().is_some());
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok_html("<html><body>hi</body></html>");
        let wire = resp.encode();
        let (parsed, used) = Response::parse(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, resp.body);
    }

    #[test]
    fn response_body_split_across_reads() {
        let resp = Response::ok_html("0123456789");
        let wire = resp.encode();
        // Header complete but body truncated -> needs more.
        let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert_eq!(Response::parse(&wire[..head_end + 3]).unwrap(), None);
        let (parsed, _) = Response::parse(&wire).unwrap().unwrap();
        assert_eq!(parsed.body.len(), 10);
    }

    #[test]
    fn redirect_detection() {
        let r = Response::redirect("http://blockpage.isp.pk/");
        assert!(r.is_redirect());
        assert_eq!(r.headers.get("Location"), Some("http://blockpage.isp.pk/"));
        assert!(!Response::ok_html("x").is_redirect());
    }

    #[test]
    fn header_case_insensitivity_and_set() {
        let mut h = Headers::new();
        h.insert("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        h.set("CONTENT-TYPE", "image/png");
        assert_eq!(h.get("Content-Type"), Some("image/png"));
        assert_eq!(h.len(), 1);
        h.remove("content-type");
        assert!(h.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            Request::parse(b"BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpParseError::BadMethod)
        ));
        assert!(matches!(
            Request::parse(b"GET / SPDY/9\r\n\r\n"),
            Err(HttpParseError::BadVersion)
        ));
        assert!(matches!(
            Response::parse(b"HTTP/1.1 abc OK\r\n\r\n"),
            Err(HttpParseError::BadStatus)
        ));
        assert!(matches!(
            Response::parse(b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpParseError::BadContentLength)
        ));
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let a = Request::get(&Url::parse("http://x.com/first").unwrap());
        let b = Request::get(&Url::parse("http://x.com/second").unwrap());
        let mut wire = a.encode();
        wire.extend_from_slice(&b.encode());
        let (p1, used1) = Request::parse(&wire).unwrap().unwrap();
        assert_eq!(p1.target, "/first");
        let (p2, used2) = Request::parse(&wire[used1..]).unwrap().unwrap();
        assert_eq!(p2.target, "/second");
        assert_eq!(used1 + used2, wire.len());
    }

    #[test]
    fn post_not_safe_to_duplicate() {
        assert!(Method::Get.safe_to_duplicate());
        assert!(Method::Head.safe_to_duplicate());
        assert!(!Method::Post.safe_to_duplicate());
    }
}
