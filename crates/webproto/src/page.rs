//! The web page model.
//!
//! A page is a base HTML document plus embedded resources (scripts,
//! stylesheets, images), possibly served from other hosts (CDNs — whose
//! blocking the paper's pilot study uncovered, §7.4). Page load time is
//! defined as the time from the navigation request until the last byte of
//! the last resource, with the browser fetching resources over a limited
//! number of parallel connections; the fetch logic itself lives in
//! `csaw-circumvent`, this module only describes structure and sizes.

use crate::url::Url;

/// One embedded resource of a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Where the resource lives (may be a different host, e.g. a CDN).
    pub url: Url,
    /// Size in bytes.
    pub bytes: u64,
}

/// A web page: base document plus embedded resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebPage {
    /// The page URL.
    pub url: Url,
    /// Size of the base HTML document in bytes.
    pub html_bytes: u64,
    /// Embedded resources in document order.
    pub resources: Vec<Resource>,
}

impl WebPage {
    /// A single-document page with no embedded resources.
    pub fn simple(url: Url, bytes: u64) -> WebPage {
        WebPage {
            url,
            html_bytes: bytes,
            resources: Vec::new(),
        }
    }

    /// A synthetic page of roughly `total_bytes`, split into a base
    /// document and `n_resources` same-host resources. The split is
    /// deterministic: the base document takes ~20% (at least 2 KB), the
    /// rest is spread evenly with a deterministic ±25% zig-zag so resource
    /// sizes aren't all identical.
    pub fn synthetic(url: Url, total_bytes: u64, n_resources: usize) -> WebPage {
        if n_resources == 0 {
            return WebPage::simple(url, total_bytes);
        }
        let html_bytes = (total_bytes / 5).max(2_048).min(total_bytes);
        let remaining = total_bytes - html_bytes;
        let each = remaining / n_resources as u64;
        let mut resources = Vec::with_capacity(n_resources);
        let base = url.clone();
        for i in 0..n_resources {
            let wobble = (each / 4).min(each);
            let bytes = if i % 2 == 0 {
                each + wobble * (i as u64 % 3) / 2
            } else {
                each.saturating_sub(wobble * (i as u64 % 3) / 2)
            }
            .max(256);
            let res_url = Url::from_parts(
                base.scheme(),
                base.host().clone(),
                None,
                &format!("{}assets/r{i}.bin", ensure_dir(base.path())),
                None,
            );
            resources.push(Resource {
                url: res_url,
                bytes,
            });
        }
        WebPage {
            url,
            html_bytes,
            resources,
        }
    }

    /// Attach CDN-hosted resources (used to reproduce the pilot study's
    /// CDN-blocking discovery): moves the last `n` resources to the given
    /// CDN host URL base.
    pub fn with_cdn_resources(mut self, cdn_base: &Url, n: usize) -> WebPage {
        let len = self.resources.len();
        let start = len.saturating_sub(n);
        for (i, r) in self.resources[start..].iter_mut().enumerate() {
            r.url = Url::from_parts(
                cdn_base.scheme(),
                cdn_base.host().clone(),
                None,
                &format!("/static/r{i}.bin"),
                None,
            );
        }
        self
    }

    /// Total bytes across the document and all resources.
    pub fn total_bytes(&self) -> u64 {
        self.html_bytes + self.resources.iter().map(|r| r.bytes).sum::<u64>()
    }

    /// Number of embedded resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Hosts referenced by this page (base + resources, deduplicated,
    /// in first-appearance order).
    pub fn referenced_hosts(&self) -> Vec<String> {
        let mut hosts = vec![self.url.host().to_string()];
        for r in &self.resources {
            let h = r.url.host().to_string();
            if !hosts.contains(&h) {
                hosts.push(h);
            }
        }
        hosts
    }
}

fn ensure_dir(path: &str) -> String {
    if path.ends_with('/') {
        path.to_string()
    } else {
        match path.rfind('/') {
            Some(i) => path[..=i].to_string(),
            None => "/".to_string(),
        }
    }
}

/// Generate plausible HTML markup of approximately `approx_bytes` for a
/// page titled `title`. Used as the "real page" sample that the phase-1
/// block-page classifier must *not* flag (its false-positive rate is a
/// headline claim of §4.3.1).
pub fn synth_html(title: &str, approx_bytes: usize) -> String {
    let mut out = String::with_capacity(approx_bytes + 512);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n");
    out.push_str(&format!("<title>{title}</title>\n"));
    out.push_str("<meta charset=\"utf-8\">\n");
    out.push_str("<link rel=\"stylesheet\" href=\"/assets/site.css\">\n");
    out.push_str("<script src=\"/assets/app.js\" defer></script>\n");
    out.push_str("</head>\n<body>\n<header><nav><ul>");
    for item in ["Home", "News", "Videos", "About", "Contact"] {
        out.push_str(&format!(
            "<li><a href=\"/{}\">{}</a></li>",
            item.to_lowercase(),
            item
        ));
    }
    out.push_str("</ul></nav></header>\n<main>\n");
    let para = "<article><h2>Section heading</h2><p>Lorem ipsum dolor sit amet, consectetur \
                adipiscing elit, sed do eiusmod tempor incididunt ut labore et dolore magna \
                aliqua. Ut enim ad minim veniam, quis nostrud exercitation ullamco laboris \
                nisi ut aliquip ex ea commodo consequat.</p><img src=\"/assets/photo.jpg\" \
                alt=\"photo\"><ul><li>point one</li><li>point two</li></ul></article>\n";
    while out.len() + para.len() + 64 < approx_bytes {
        out.push_str(para);
    }
    out.push_str("</main>\n<footer><p>&copy; 2018 Example Site</p></footer>\n</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn simple_page() {
        let p = WebPage::simple(url("http://foo.com/"), 50_000);
        assert_eq!(p.total_bytes(), 50_000);
        assert_eq!(p.resource_count(), 0);
        assert_eq!(p.referenced_hosts(), vec!["foo.com"]);
    }

    #[test]
    fn synthetic_page_size_approx() {
        let p = WebPage::synthetic(url("http://yt.example/"), 360_000, 20);
        let total = p.total_bytes();
        // Within 20% of the target (deterministic wobble means not exact).
        assert!((total as i64 - 360_000i64).abs() < 72_000, "total {total}");
        assert_eq!(p.resource_count(), 20);
        // All resources on the same host as the page.
        assert_eq!(p.referenced_hosts().len(), 1);
    }

    #[test]
    fn synthetic_zero_resources() {
        let p = WebPage::synthetic(url("http://x.com/a"), 10_000, 0);
        assert_eq!(p.total_bytes(), 10_000);
        assert!(p.resources.is_empty());
    }

    #[test]
    fn cdn_resources_change_hosts() {
        let p = WebPage::synthetic(url("http://news.pk/"), 200_000, 10)
            .with_cdn_resources(&url("http://cdn.example.net/"), 4);
        let hosts = p.referenced_hosts();
        assert_eq!(
            hosts,
            vec!["news.pk".to_string(), "cdn.example.net".to_string()]
        );
        let cdn_count = p
            .resources
            .iter()
            .filter(|r| r.url.host().to_string() == "cdn.example.net")
            .count();
        assert_eq!(cdn_count, 4);
    }

    #[test]
    fn synth_html_size_and_shape() {
        let html = synth_html("Example Site", 95_000);
        assert!(
            html.len() >= 90_000 && html.len() <= 100_000,
            "{}",
            html.len()
        );
        assert!(html.contains("<title>Example Site</title>"));
        assert!(html.contains("</html>"));
        // Rich markup: far more than a block page's handful of tags.
        let tags = html.matches('<').count();
        assert!(tags > 100, "tags {tags}");
    }

    #[test]
    fn resource_sizes_vary_but_positive() {
        let p = WebPage::synthetic(url("http://x.com/"), 300_000, 12);
        assert!(p.resources.iter().all(|r| r.bytes >= 256));
        let distinct: std::collections::HashSet<u64> =
            p.resources.iter().map(|r| r.bytes).collect();
        assert!(distinct.len() > 1, "sizes should not be uniform");
    }

    #[test]
    fn resource_paths_under_page_dir() {
        let p = WebPage::synthetic(url("http://x.com/videos/watch"), 100_000, 3);
        for r in &p.resources {
            assert!(r.url.path().starts_with("/videos/assets/"), "{}", r.url);
        }
    }
}
