//! # csaw-webproto — protocol substrate for the C-Saw reproduction
//!
//! From-scratch models of the protocols a web censor can observe and a
//! circumventor can manipulate:
//!
//! - [`url`]: a normalized [`Url`] type with the base/derived structure and
//!   segment-wise prefix semantics that C-Saw's local database aggregation
//!   (§4.4 of the paper) is built on, plus the "IP as hostname" form;
//! - [`dns`]: query/response/rcode models and the tampering observations a
//!   client can make;
//! - [`http`]: HTTP/1.1 requests and responses with a byte-level codec used
//!   by the real-socket proxy;
//! - [`tls`]: the plaintext-visible ClientHello (SNI) surface that HTTPS
//!   censorship and domain fronting both operate on;
//! - [`page`]: the web page model (base document + embedded resources,
//!   possibly CDN-hosted) whose load time is the paper's headline metric.

//!
//! ```
//! use csaw_webproto::{Request, Scheme, Url};
//!
//! let url: Url = "http://www.youtube.com/watch?v=abc".parse().unwrap();
//! assert!(url.is_derived_from(&url.base()));
//!
//! // The codec round-trips over real sockets in `csaw-proxy`.
//! let wire = Request::get(&url).encode();
//! let (req, used) = Request::parse(&wire).unwrap().unwrap();
//! assert_eq!(used, wire.len());
//! assert_eq!(req.url(Scheme::Http), Some(url));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytes;
pub mod codec;
pub mod dns;
pub mod http;
pub mod page;
pub mod tls;
pub mod url;

pub use bytes::{Bytes, BytesMut};
pub use codec::{Frame, MAX_FRAME_BYTES, MAX_MESSAGE_BYTES};
pub use dns::{ARecord, DnsObservation, DnsQuery, DnsResponse, Rcode};
pub use http::{Headers, HttpParseError, Method, Request, Response};
pub use page::{synth_html, Resource, WebPage};
pub use tls::{ClientHello, TlsObservables};
pub use url::{Host, Scheme, Url, UrlParseError};
