//! Incremental wire codecs shared by every socket path in the
//! workspace: the proxy's blocking HTTP/1.1 framing and the global-DB
//! server's length-framed message protocol.
//!
//! Both codecs follow the same rules, generic over any [`Read`] /
//! [`Write`] transport so they can be driven by real `TcpStream`s and
//! by in-memory torn-frame tests alike:
//!
//! - accumulate into a [`BytesMut`], attempt a parse after every read;
//! - distinguish "need more bytes" from a genuinely malformed stream
//!   (`InvalidData`) and from a peer that closed mid-message
//!   (`UnexpectedEof`);
//! - cap buffered bytes at a hard maximum as a sanity guard.
//!
//! # Frame format
//!
//! The DB wire protocol is deliberately simpler than HTTP: a frame is
//!
//! ```text
//! +----------------+--------+-----------------+
//! | len: u32 (BE)  | op: u8 | payload (bytes) |
//! +----------------+--------+-----------------+
//! ```
//!
//! where `len` counts the opcode byte plus the payload (so `len >= 1`),
//! and the payload is an opcode-defined body (JSON for the DB
//! protocol). `len` is bounded by [`MAX_FRAME_BYTES`]; a header that
//! announces more is rejected immediately without buffering the body.

use crate::bytes::BytesMut;
use crate::http::{Request, Response};
use std::io::{self, Read, Write};

/// Maximum HTTP message size we will buffer (sanity cap against abuse).
pub const MAX_MESSAGE_BYTES: usize = 8 * 1024 * 1024;

/// Maximum length-framed frame size (opcode + payload) we will accept.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Size of the fixed frame header (the big-endian `u32` length).
pub const FRAME_HEADER_BYTES: usize = 4;

/// Read whatever bytes are available into `buf` (one `read` call).
pub fn read_some<R: Read>(stream: &mut R, buf: &mut BytesMut) -> io::Result<usize> {
    let mut chunk = [0u8; 16 * 1024];
    let n = stream.read(&mut chunk)?;
    buf.extend_from_slice(&chunk[..n]);
    Ok(n)
}

/// Read one HTTP request from the stream. `Ok(None)` means the peer
/// closed cleanly before sending a full request.
pub fn read_request<R: Read>(stream: &mut R, buf: &mut BytesMut) -> io::Result<Option<Request>> {
    loop {
        match Request::parse(buf) {
            Ok(Some((req, used))) => {
                let _ = buf.split_to(used);
                return Ok(Some(req));
            }
            Ok(None) => {}
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad request: {e}"),
                ))
            }
        }
        if buf.len() > MAX_MESSAGE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request too large",
            ));
        }
        let n = read_some(stream, buf)?;
        if n == 0 {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ))
            };
        }
    }
}

/// Read one HTTP response from a whole stream.
pub fn read_response<R: Read>(stream: &mut R, buf: &mut BytesMut) -> io::Result<Response> {
    loop {
        match Response::parse(buf) {
            Ok(Some((resp, used))) => {
                let _ = buf.split_to(used);
                return Ok(resp);
            }
            Ok(None) => {}
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad response: {e}"),
                ))
            }
        }
        if buf.len() > MAX_MESSAGE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response too large",
            ));
        }
        let n = read_some(stream, buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
    }
}

/// Write a request.
pub fn write_request<W: Write>(stream: &mut W, req: &Request) -> io::Result<()> {
    stream.write_all(&req.encode())?;
    stream.flush()
}

/// Write a response.
pub fn write_response<W: Write>(stream: &mut W, resp: &Response) -> io::Result<()> {
    stream.write_all(&resp.encode())?;
    stream.flush()
}

/// One decoded length-framed message: an opcode byte plus its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Opcode byte (protocol-defined meaning).
    pub op: u8,
    /// Opaque payload (JSON for the DB protocol).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    pub fn new(op: u8, payload: Vec<u8>) -> Frame {
        Frame { op, payload }
    }

    /// Encode to wire bytes (header + opcode + payload).
    pub fn encode(&self) -> Vec<u8> {
        let len = (self.payload.len() + 1) as u32;
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + 1 + self.payload.len());
        out.extend_from_slice(&len.to_be_bytes());
        out.push(self.op);
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Try to decode one frame from the front of `buf`.
///
/// Returns `Ok(Some(frame))` and consumes its bytes when a whole frame
/// is buffered, `Ok(None)` when more bytes are needed, and an
/// `InvalidData` error when the header is malformed (zero length or a
/// length over [`MAX_FRAME_BYTES`]). Oversized frames are rejected from
/// the header alone, before any body bytes arrive.
pub fn decode_frame(buf: &mut BytesMut) -> io::Result<Option<Frame>> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length must cover the opcode byte",
        ));
    }
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    if buf.len() < FRAME_HEADER_BYTES + len {
        return Ok(None);
    }
    let whole = buf.split_to(FRAME_HEADER_BYTES + len);
    let body = &whole[FRAME_HEADER_BYTES..];
    Ok(Some(Frame {
        op: body[0],
        payload: body[1..].to_vec(),
    }))
}

/// Read one frame from a blocking stream. `Ok(None)` means the peer
/// closed cleanly on a frame boundary; closing mid-frame is
/// `UnexpectedEof`, and a bad header is `InvalidData`.
pub fn read_frame<R: Read>(stream: &mut R, buf: &mut BytesMut) -> io::Result<Option<Frame>> {
    loop {
        if let Some(frame) = decode_frame(buf)? {
            return Ok(Some(frame));
        }
        let n = read_some(stream, buf)?;
        if n == 0 {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            };
        }
    }
}

/// Write one frame.
pub fn write_frame<W: Write>(stream: &mut W, frame: &Frame) -> io::Result<()> {
    stream.write_all(&frame.encode())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_through_buffer() {
        let f = Frame::new(7, b"{\"k\":1}".to_vec());
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&f.encode());
        let got = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(got, f);
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_payload_frame_is_valid() {
        let f = Frame::new(1, Vec::new());
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&f.encode());
        assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), f);
    }

    #[test]
    fn zero_length_header_is_invalid() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(
            decode_frame(&mut buf).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversized_header_is_rejected_before_body() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_be_bytes());
        assert_eq!(
            decode_frame(&mut buf).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let a = Frame::new(1, b"first".to_vec());
        let b = Frame::new(2, b"second".to_vec());
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&a.encode());
        buf.extend_from_slice(&b.encode());
        assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), a);
        assert_eq!(decode_frame(&mut buf).unwrap().unwrap(), b);
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }
}
