//! TLS handshake model — just enough surface for SNI-based censorship.
//!
//! Censors that block HTTPS do so on the plaintext fields of the
//! ClientHello, almost always the Server Name Indication extension
//! (§2.1 of the paper, citing RFC 6066). Domain fronting (§2.2) works
//! precisely because the SNI names an innocuous *front* while the real
//! destination rides in the encrypted Host header. This module models the
//! visible part of the handshake; payload encryption is represented by
//! construction (the censor models never look at the inner request).

/// The plaintext-visible part of a TLS ClientHello.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClientHello {
    /// The SNI server name, lowercase. `None` models SNI-less clients
    /// (rare, and often dropped outright by strict censors).
    pub sni: Option<String>,
}

impl ClientHello {
    /// A hello bearing the given SNI.
    pub fn with_sni(name: &str) -> ClientHello {
        ClientHello {
            sni: Some(name.to_ascii_lowercase()),
        }
    }

    /// A hello with no SNI extension.
    pub fn no_sni() -> ClientHello {
        ClientHello { sni: None }
    }

    /// A domain-fronted hello: the censor sees only the front's name.
    /// Semantically identical to `with_sni(front)` — the constructor
    /// exists to make call sites self-describing.
    pub fn fronted(front: &str) -> ClientHello {
        ClientHello::with_sni(front)
    }
}

/// What the censor can see of an HTTPS connection attempt: the destination
/// IP/port (from the TCP layer) plus the ClientHello fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsObservables {
    /// The ClientHello as observed on the wire.
    pub hello: ClientHello,
}

impl TlsObservables {
    /// Observables for a normal connection to `host`.
    pub fn direct(host: &str) -> TlsObservables {
        TlsObservables {
            hello: ClientHello::with_sni(host),
        }
    }

    /// Observables for a fronted connection through `front`.
    pub fn fronted(front: &str) -> TlsObservables {
        TlsObservables {
            hello: ClientHello::fronted(front),
        }
    }

    /// The name a censor would match against its SNI blacklist.
    pub fn visible_name(&self) -> Option<&str> {
        self.hello.sni.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sni_lowercased() {
        assert_eq!(
            ClientHello::with_sni("YouTube.COM").sni.as_deref(),
            Some("youtube.com")
        );
    }

    #[test]
    fn fronting_hides_backend() {
        let obs = TlsObservables::fronted("google.com");
        assert_eq!(obs.visible_name(), Some("google.com"));
        // Nothing in the observables mentions the blocked backend —
        // that's the whole point of fronting.
    }

    #[test]
    fn no_sni_visible_name() {
        let obs = TlsObservables {
            hello: ClientHello::no_sni(),
        };
        assert_eq!(obs.visible_name(), None);
    }
}
