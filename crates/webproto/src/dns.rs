//! DNS message model.
//!
//! Only the parts a censorship measurement system interacts with: A-record
//! queries, responses with answers or error rcodes, and the tampering
//! outcomes a censor can produce (no response at all, a forged answer
//! pointing at a local host or block-page server, NXDOMAIN, SERVFAIL,
//! REFUSED — the taxonomy of §2.1 and Figure 2 of the paper).

use std::fmt;
use std::net::Ipv4Addr;

/// DNS response codes relevant to the blocking taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// Successful resolution.
    NoError,
    /// The name does not exist (or the censor claims so).
    NxDomain,
    /// The resolver failed — the paper's "Server Failure" blocking
    /// signature, which only surfaces after a long resolver retry ladder.
    ServFail,
    /// The resolver refused the query — the paper's "Server Refused"
    /// signature, which surfaces in a single RTT.
    Refused,
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rcode::NoError => "NOERROR",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::ServFail => "SERVFAIL",
            Rcode::Refused => "REFUSED",
        };
        f.write_str(s)
    }
}

/// A query for the A records of a name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnsQuery {
    /// Queried name, lowercase.
    pub qname: String,
}

impl DnsQuery {
    /// Build a query, lowercasing the name.
    pub fn a(qname: &str) -> DnsQuery {
        DnsQuery {
            qname: qname.to_ascii_lowercase(),
        }
    }
}

/// An A record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ARecord {
    /// The resolved address.
    pub addr: Ipv4Addr,
    /// Time-to-live in seconds (retained for realism; the simulation's
    /// caching decisions live in the C-Saw client, not here).
    pub ttl: u32,
}

/// A DNS response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsResponse {
    /// Response code.
    pub rcode: Rcode,
    /// A records (empty unless `rcode` is `NoError`).
    pub answers: Vec<ARecord>,
}

impl DnsResponse {
    /// A successful response with one answer.
    pub fn answer(addr: Ipv4Addr) -> DnsResponse {
        DnsResponse {
            rcode: Rcode::NoError,
            answers: vec![ARecord { addr, ttl: 300 }],
        }
    }

    /// An error response with the given rcode (no answers).
    pub fn error(rcode: Rcode) -> DnsResponse {
        debug_assert!(rcode != Rcode::NoError);
        DnsResponse {
            rcode,
            answers: Vec::new(),
        }
    }

    /// First resolved address, if any.
    pub fn first_addr(&self) -> Option<Ipv4Addr> {
        self.answers.first().map(|a| a.addr)
    }

    /// True if the response successfully resolved at least one address.
    pub fn is_resolution(&self) -> bool {
        self.rcode == Rcode::NoError && !self.answers.is_empty()
    }
}

/// What the client *observes* from a DNS lookup attempt, including the
/// cases where nothing comes back. This is the detector's raw input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsObservation {
    /// A response arrived (possibly forged; the observer can't tell yet).
    Response(DnsResponse),
    /// No response before the stub resolver gave up.
    NoResponse,
}

impl DnsObservation {
    /// The resolved address if the observation is a successful resolution.
    pub fn resolved_addr(&self) -> Option<Ipv4Addr> {
        match self {
            DnsObservation::Response(r) => r.first_addr(),
            DnsObservation::NoResponse => None,
        }
    }
}

/// Well-known address blocks the detector uses to recognize obviously
/// forged resolutions (the paper's ISP-B resolved YouTube "to a local
/// host"; ONI's `DNS Redir` category includes redirects to private IPs).
pub fn is_private_or_reserved(ip: Ipv4Addr) -> bool {
    let o = ip.octets();
    ip.is_private()
        || ip.is_loopback()
        || ip.is_unspecified()
        || ip.is_link_local()
        || o[0] == 100 && (64..=127).contains(&o[1]) // CGNAT 100.64/10
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_lowercases() {
        assert_eq!(DnsQuery::a("WWW.Foo.COM").qname, "www.foo.com");
    }

    #[test]
    fn answer_and_error_shapes() {
        let ok = DnsResponse::answer("1.2.3.4".parse().unwrap());
        assert!(ok.is_resolution());
        assert_eq!(ok.first_addr(), Some("1.2.3.4".parse().unwrap()));
        let err = DnsResponse::error(Rcode::ServFail);
        assert!(!err.is_resolution());
        assert_eq!(err.first_addr(), None);
    }

    #[test]
    fn observation_addr_extraction() {
        let obs = DnsObservation::Response(DnsResponse::answer("8.8.8.8".parse().unwrap()));
        assert_eq!(obs.resolved_addr(), Some("8.8.8.8".parse().unwrap()));
        assert_eq!(DnsObservation::NoResponse.resolved_addr(), None);
        let nx = DnsObservation::Response(DnsResponse::error(Rcode::NxDomain));
        assert_eq!(nx.resolved_addr(), None);
    }

    #[test]
    fn private_reserved_detection() {
        let yes = [
            "10.0.0.1",
            "192.168.1.1",
            "127.0.0.1",
            "0.0.0.0",
            "169.254.1.1",
            "100.64.0.1",
            "172.16.5.5",
        ];
        for ip in yes {
            assert!(is_private_or_reserved(ip.parse().unwrap()), "{ip}");
        }
        let no = ["8.8.8.8", "93.184.216.34", "100.128.0.1", "172.32.0.1"];
        for ip in no {
            assert!(!is_private_or_reserved(ip.parse().unwrap()), "{ip}");
        }
    }

    #[test]
    fn rcode_display() {
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(Rcode::ServFail.to_string(), "SERVFAIL");
    }
}
