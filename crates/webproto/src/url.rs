//! A from-scratch URL type tailored to C-Saw's needs.
//!
//! C-Saw's local database is keyed by URL and relies on structural
//! relationships between URLs (§4.4 "Managing the database size"):
//!
//! - the **base URL** `http://www.foo.com/` versus **derived URLs** such as
//!   `http://www.foo.com/a.html`;
//! - **longest-prefix matching** over path segments to find the most
//!   specific blocking record for a derived URL;
//! - **hostname-level aggregation** for DNS/IP/SNI blocking, where the
//!   censor cannot see paths at all;
//! - the **"IP as hostname"** circumvention trick (Figure 1c), which
//!   requires hosts to be either names or literal IPv4 addresses.
//!
//! Only `http` and `https` schemes exist in this model — the paper is
//! about web censorship.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// URL scheme. The model covers web traffic only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// Plaintext HTTP — the censor sees the full request line and headers.
    Http,
    /// HTTPS — the censor sees only the TLS SNI (and the IP).
    Https,
}

impl Scheme {
    /// Default port for the scheme.
    pub fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// Scheme keyword as it appears in a URL.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A host: either a DNS name or a literal IPv4 address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Host {
    /// A DNS hostname, stored lowercase.
    Name(String),
    /// A literal IPv4 address (the "IP as hostname" form).
    Ip(Ipv4Addr),
}

impl Host {
    /// Parse a host component; a well-formed dotted quad becomes an IP.
    pub fn parse(s: &str) -> Result<Host, UrlParseError> {
        if s.is_empty() {
            return Err(UrlParseError::EmptyHost);
        }
        if let Ok(ip) = s.parse::<Ipv4Addr>() {
            return Ok(Host::Ip(ip));
        }
        let lower = s.to_ascii_lowercase();
        if !lower
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.' || c == '_')
        {
            return Err(UrlParseError::BadHost(s.to_string()));
        }
        if lower.starts_with('.') || lower.ends_with('.') || lower.contains("..") {
            return Err(UrlParseError::BadHost(s.to_string()));
        }
        Ok(Host::Name(lower))
    }

    /// Is this a literal IP host?
    pub fn is_ip(&self) -> bool {
        matches!(self, Host::Ip(_))
    }

    /// The DNS name if this is a named host.
    pub fn name(&self) -> Option<&str> {
        match self {
            Host::Name(n) => Some(n),
            Host::Ip(_) => None,
        }
    }

    /// Registrable-domain heuristic: the last two labels, or the last
    /// three when the penultimate label is a well-known second-level
    /// registry label (`co`, `com`, `net`, `org`, `gov`, `edu`, `ac`).
    /// IPs return their dotted form.
    ///
    /// Example: `video.cdn.foo.com` → `foo.com`; `www.bbc.co.uk` →
    /// `bbc.co.uk`.
    pub fn registrable_domain(&self) -> String {
        match self {
            Host::Ip(ip) => ip.to_string(),
            Host::Name(n) => {
                let labels: Vec<&str> = n.split('.').collect();
                if labels.len() <= 2 {
                    return n.clone();
                }
                let second_level = matches!(
                    labels[labels.len() - 2],
                    "co" | "com" | "net" | "org" | "gov" | "edu" | "ac"
                );
                let keep = if second_level && labels.len() >= 3 {
                    3
                } else {
                    2
                };
                labels[labels.len() - keep..].join(".")
            }
        }
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Host::Name(n) => f.write_str(n),
            Host::Ip(ip) => write!(f, "{ip}"),
        }
    }
}

/// Errors from URL parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlParseError {
    /// Missing or unrecognized scheme prefix.
    BadScheme,
    /// Host component was empty.
    EmptyHost,
    /// Host contained invalid characters or structure.
    BadHost(String),
    /// Port was present but not a valid u16.
    BadPort(String),
}

impl fmt::Display for UrlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlParseError::BadScheme => write!(f, "expected http:// or https:// scheme"),
            UrlParseError::EmptyHost => write!(f, "empty host"),
            UrlParseError::BadHost(h) => write!(f, "invalid host: {h:?}"),
            UrlParseError::BadPort(p) => write!(f, "invalid port: {p:?}"),
        }
    }
}

impl std::error::Error for UrlParseError {}

/// A parsed, normalized web URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url {
    scheme: Scheme,
    host: Host,
    /// Explicit port, if different from the scheme default.
    port: Option<u16>,
    /// Always begins with `/`. Normalized: no empty inner segments.
    path: String,
    /// Query string without the leading `?`, if any.
    query: Option<String>,
}

impl Url {
    /// Parse a URL string. Accepts `http://` and `https://` URLs with an
    /// optional port, path and query. Fragments are stripped (a censor
    /// never sees them — they stay in the browser).
    pub fn parse(s: &str) -> Result<Url, UrlParseError> {
        let s = s.trim();
        let (scheme, rest) = if let Some(r) = s.strip_prefix("https://") {
            (Scheme::Https, r)
        } else if let Some(r) = s.strip_prefix("http://") {
            (Scheme::Http, r)
        } else {
            return Err(UrlParseError::BadScheme);
        };
        // Split off fragment first, then query, then path.
        let rest = rest.split('#').next().unwrap_or(rest);
        let (authority_path, query) = match rest.split_once('?') {
            Some((ap, q)) => (ap, Some(q.to_string())),
            None => (rest, None),
        };
        let (authority, path) = match authority_path.find('/') {
            Some(i) => (&authority_path[..i], &authority_path[i..]),
            None => (authority_path, "/"),
        };
        let (host_s, port) = match authority.rsplit_once(':') {
            Some((h, p)) if !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()) => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| UrlParseError::BadPort(p.to_string()))?;
                (h, Some(port))
            }
            Some((_, p)) if p.bytes().any(|b| !b.is_ascii_digit()) && !p.is_empty() => {
                return Err(UrlParseError::BadPort(p.to_string()));
            }
            _ => (authority, None),
        };
        let host = Host::parse(host_s)?;
        // Drop an explicit default port during normalization.
        let port = port.filter(|p| *p != scheme.default_port());
        Ok(Url {
            scheme,
            host,
            port,
            path: normalize_path(path),
            query: query.filter(|q| !q.is_empty()),
        })
    }

    /// Construct from parts (used by generators and tests).
    pub fn from_parts(
        scheme: Scheme,
        host: Host,
        port: Option<u16>,
        path: &str,
        query: Option<&str>,
    ) -> Url {
        Url {
            scheme,
            host,
            port: port.filter(|p| *p != scheme.default_port()),
            path: normalize_path(path),
            query: query.map(str::to_string).filter(|q| !q.is_empty()),
        }
    }

    /// The scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The host.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The effective port (explicit, or the scheme default).
    pub fn port(&self) -> u16 {
        self.port.unwrap_or_else(|| self.scheme.default_port())
    }

    /// The normalized path (always starts with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query string without `?`, if present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Path split into segments; the base path `/` has no segments.
    pub fn path_segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|seg| !seg.is_empty()).collect()
    }

    /// Is this a **base URL** in the paper's sense: the root of a host,
    /// e.g. `http://www.foo.com/` (no path beyond `/`, no query)?
    pub fn is_base(&self) -> bool {
        self.path == "/" && self.query.is_none()
    }

    /// The base URL of this URL: same scheme/host/port, path `/`.
    pub fn base(&self) -> Url {
        Url {
            scheme: self.scheme,
            host: self.host.clone(),
            port: self.port,
            path: "/".to_string(),
            query: None,
        }
    }

    /// Is `self` derived from `other` — same scheme/host/port, and
    /// `other`'s path segments are a (proper or equal) prefix of ours?
    /// Every URL is derived from its own base.
    pub fn is_derived_from(&self, other: &Url) -> bool {
        if self.scheme != other.scheme || self.host != other.host || self.port != other.port {
            return false;
        }
        let mine = self.path_segments();
        let theirs = other.path_segments();
        if theirs.len() > mine.len() {
            return false;
        }
        mine.iter().zip(theirs.iter()).all(|(a, b)| a == b)
    }

    /// Same URL under a different scheme (used when an HTTPS local-fix
    /// upgrades an HTTP URL: the resource identity is unchanged).
    ///
    /// A URL on its scheme's default port moves to the *new* scheme's
    /// default port — upgrading `http://h/` yields `https://h/` (port 443),
    /// which is what a real protocol upgrade does. An explicit non-default
    /// port is preserved.
    pub fn with_scheme(&self, scheme: Scheme) -> Url {
        let mut u = self.clone();
        u.scheme = scheme;
        u.port = u.port.filter(|p| *p != scheme.default_port());
        u
    }

    /// The same resource addressed by literal IP instead of hostname —
    /// the Figure 1c "IP as hostname" circumvention.
    pub fn with_ip_host(&self, ip: Ipv4Addr) -> Url {
        let mut u = self.clone();
        u.host = Host::Ip(ip);
        u
    }

    /// Hostname for DNS resolution (None when the host is a literal IP —
    /// no lookup needed, which is exactly why IP-as-hostname defeats DNS
    /// and keyword filters).
    pub fn dns_name(&self) -> Option<&str> {
        self.host.name()
    }

    /// The aggregation key for non-HTTP blocking (DNS/IP/SNI all act on
    /// the host, not the path): scheme + host + port with path `/`.
    pub fn host_key(&self) -> Url {
        self.base()
    }
}

/// Normalize a path: ensure leading `/`, collapse duplicate slashes,
/// resolve `.` segments (but keep `..` literally — we model, not a
/// browser; censors match textually).
fn normalize_path(p: &str) -> String {
    let mut out = String::from("/");
    for seg in p.split('/') {
        if seg.is_empty() || seg == "." {
            continue;
        }
        if !out.ends_with('/') {
            out.push('/');
        }
        out.push_str(seg);
    }
    out
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = UrlParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple() {
        let u = Url::parse("http://www.foo.com/a.html").unwrap();
        assert_eq!(u.scheme(), Scheme::Http);
        assert_eq!(u.host().to_string(), "www.foo.com");
        assert_eq!(u.port(), 80);
        assert_eq!(u.path(), "/a.html");
        assert_eq!(u.query(), None);
    }

    #[test]
    fn parses_everything() {
        let u = Url::parse("https://Example.COM:8443/a/b/c?x=1&y=2#frag").unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.host().name(), Some("example.com"));
        assert_eq!(u.port(), 8443);
        assert_eq!(u.path(), "/a/b/c");
        assert_eq!(u.query(), Some("x=1&y=2"));
        assert_eq!(u.to_string(), "https://example.com:8443/a/b/c?x=1&y=2");
    }

    #[test]
    fn default_port_normalized_away() {
        let u = Url::parse("http://foo.com:80/x").unwrap();
        assert_eq!(u.to_string(), "http://foo.com/x");
        let u = Url::parse("https://foo.com:443/").unwrap();
        assert_eq!(u.to_string(), "https://foo.com/");
        // Non-default port survives.
        let u = Url::parse("http://foo.com:8080/").unwrap();
        assert_eq!(u.to_string(), "http://foo.com:8080/");
    }

    #[test]
    fn no_path_means_root() {
        let u = Url::parse("http://foo.com").unwrap();
        assert_eq!(u.path(), "/");
        assert!(u.is_base());
    }

    #[test]
    fn ip_hosts() {
        let u = Url::parse("http://93.184.216.34/page").unwrap();
        assert!(u.host().is_ip());
        assert_eq!(u.dns_name(), None);
        let named = Url::parse("http://foo.com/page").unwrap();
        let as_ip = named.with_ip_host("10.0.0.1".parse().unwrap());
        assert_eq!(as_ip.to_string(), "http://10.0.0.1/page");
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Url::parse("ftp://x/"), Err(UrlParseError::BadScheme));
        assert_eq!(Url::parse("http://"), Err(UrlParseError::EmptyHost));
        assert!(matches!(
            Url::parse("http://bad host/"),
            Err(UrlParseError::BadHost(_))
        ));
        assert!(matches!(
            Url::parse("http://foo.com:notaport/"),
            Err(UrlParseError::BadPort(_))
        ));
        assert!(matches!(
            Url::parse("http://..foo.com/"),
            Err(UrlParseError::BadHost(_))
        ));
    }

    #[test]
    fn base_and_derived() {
        let base = Url::parse("http://www.foo.com/").unwrap();
        let derived = Url::parse("http://www.foo.com/a/b.html").unwrap();
        let other_host = Url::parse("http://bar.com/a/b.html").unwrap();
        assert!(base.is_base());
        assert!(!derived.is_base());
        assert_eq!(derived.base(), base);
        assert!(derived.is_derived_from(&base));
        assert!(derived.is_derived_from(&derived));
        assert!(!base.is_derived_from(&derived));
        assert!(!other_host.is_derived_from(&base));
    }

    #[test]
    fn prefix_semantics_are_segment_wise() {
        let a = Url::parse("http://x.com/ab").unwrap();
        let b = Url::parse("http://x.com/abc").unwrap();
        // "/ab" is a *string* prefix of "/abc" but not a segment prefix.
        assert!(!b.is_derived_from(&a));
        let c = Url::parse("http://x.com/ab/c").unwrap();
        assert!(c.is_derived_from(&a));
    }

    #[test]
    fn path_normalization() {
        let u = Url::parse("http://x.com//a///b/./c").unwrap();
        assert_eq!(u.path(), "/a/b/c");
        assert_eq!(u.path_segments(), vec!["a", "b", "c"]);
    }

    #[test]
    fn scheme_swap_keeps_identity() {
        let u = Url::parse("http://foo.com/a?q=1").unwrap();
        let s = u.with_scheme(Scheme::Https);
        assert_eq!(s.to_string(), "https://foo.com/a?q=1");
        assert_eq!(s.with_scheme(Scheme::Http), u);
        // Port normalization across schemes: http://h:443/ -> https keeps
        // the default-for-https port implicit.
        let odd = Url::parse("http://foo.com:443/").unwrap();
        assert_eq!(
            odd.with_scheme(Scheme::Https).to_string(),
            "https://foo.com/"
        );
    }

    #[test]
    fn registrable_domain_heuristic() {
        let h = |s: &str| Host::parse(s).unwrap().registrable_domain();
        assert_eq!(h("www.foo.com"), "foo.com");
        assert_eq!(h("video.cdn.foo.com"), "foo.com");
        assert_eq!(h("foo.com"), "foo.com");
        assert_eq!(h("www.bbc.co.uk"), "bbc.co.uk");
        assert_eq!(h("localhost"), "localhost");
        assert_eq!(
            Host::Ip("1.2.3.4".parse().unwrap()).registrable_domain(),
            "1.2.3.4"
        );
    }

    #[test]
    fn almost_ip_hosts_stay_names() {
        // Dotted quads that aren't valid IPv4 parse as hostnames.
        for h in ["999.1.1.1", "1.2.3.4.5", "1.2.3", "01a.2.3.4"] {
            let host = Host::parse(h).unwrap();
            assert!(!host.is_ip(), "{h} misparsed as IP");
        }
        assert!(Host::parse("255.255.255.255").unwrap().is_ip());
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "http://foo.com/",
            "https://a.b.c.d.com/x/y/z?q=2",
            "http://10.1.2.3:8080/p",
            "https://foo.com/a%20b",
        ] {
            let u = Url::parse(s).unwrap();
            let r = Url::parse(&u.to_string()).unwrap();
            assert_eq!(u, r, "roundtrip of {s}");
        }
    }
}
