//! Minimal byte-buffer types modelled on the `bytes` crate's API
//! surface, implemented in-tree so the workspace stays hermetic.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable buffer (shared
//! allocation); [`BytesMut`] is a growable accumulation buffer with the
//! `split_to` framing primitive the proxy codec builds on.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning shares the
/// allocation, so passing response bodies around is O(1).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Wrap a static slice (copies; the sharing is in the `Arc`).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        Bytes::from(b.buf)
    }
}

/// A growable accumulation buffer for incremental protocol parsing.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append bytes.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Split off and return the first `n` bytes; `self` keeps the rest.
    /// Panics if `n > len`.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        let rest = self.buf.split_off(n);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, rest),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_share_on_clone() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(&a[..], b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn conversions() {
        assert_eq!(&Bytes::from("hi")[..], b"hi");
        assert_eq!(&Bytes::from(String::from("hi"))[..], b"hi");
        assert_eq!(&Bytes::from(vec![1u8, 2])[..], &[1, 2]);
        assert_eq!(&Bytes::from_static(b"s")[..], b"s");
    }

    #[test]
    fn split_to_frames() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abcdef");
        let head = m.split_to(4);
        assert_eq!(&head[..], b"abcd");
        assert_eq!(&m[..], b"ef");
        m.extend_from_slice(b"gh");
        assert_eq!(&m[..], b"efgh");
        assert_eq!(&m.freeze()[..], b"efgh");
    }
}
