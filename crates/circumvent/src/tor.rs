//! A simulated Tor client.
//!
//! What matters for the paper's comparisons is Tor's *path behaviour*:
//! three relays per circuit chosen with bandwidth-weighted selection
//! (Wacek et al., the paper's reference \[56\]), circuits rotated roughly
//! every 10 minutes, exits concentrated in Europe/US — producing the long,
//! varied paths behind Figures 1b, 5a, 6a, 7. This module reproduces that
//! behaviour over the simulated topology.

use crate::fetch::{relay_fetch, FetchReport};
use crate::transports::{FetchCtx, Transport, TransportKind};
use crate::world::World;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{Region, Site};
use csaw_webproto::url::Url;

/// One relay in the directory.
#[derive(Debug, Clone, PartialEq)]
pub struct Relay {
    /// Nickname, for reporting.
    pub nickname: String,
    /// Where it runs.
    pub site: Site,
    /// Consensus bandwidth weight (relative).
    pub bandwidth_weight: f64,
    /// May this relay be used as an exit?
    pub is_exit: bool,
}

/// A three-hop circuit (indices into the directory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Circuit {
    /// Entry (guard) relay index.
    pub entry: usize,
    /// Middle relay index.
    pub middle: usize,
    /// Exit relay index.
    pub exit: usize,
    /// When the circuit was built.
    pub built_at: SimTime,
}

/// The default relay directory: bandwidth mass concentrated in European
/// and North-American relays, mirroring the real consensus at the paper's
/// timeframe. Exits are a subset.
pub fn default_directory() -> Vec<Relay> {
    let spec: [(&str, Region, f64, bool); 12] = [
        ("guard-de1", Region::Germany, 9.0, false),
        ("guard-fr1", Region::France, 7.0, false),
        ("relay-nl1", Region::Netherlands, 8.0, true),
        ("relay-de2", Region::Germany, 6.0, true),
        ("relay-us1", Region::UsEast, 5.0, true),
        ("relay-us2", Region::UsWest, 3.0, true),
        ("relay-uk1", Region::UnitedKingdom, 4.0, false),
        ("relay-ch1", Region::Switzerland, 3.0, true),
        ("relay-cz1", Region::CzechRepublic, 2.0, true),
        ("relay-ca1", Region::Canada, 2.0, true),
        ("relay-fr2", Region::France, 5.0, true),
        ("relay-jp1", Region::Japan, 1.0, true),
    ];
    spec.iter()
        .map(|(n, r, w, e)| Relay {
            nickname: n.to_string(),
            site: Site::in_region(*r),
            bandwidth_weight: *w,
            is_exit: *e,
        })
        .collect()
}

/// Tor client configuration.
#[derive(Debug, Clone, Copy)]
pub struct TorConfig {
    /// Circuit lifetime before rotation (the paper: "usually every
    /// 10mins unless the circuit fails").
    pub circuit_lifetime: SimDuration,
    /// Per-hop onion-crypto/queueing overhead added to each fetch.
    pub per_hop_overhead: SimDuration,
    /// One-time circuit build cost (three extend handshakes).
    pub circuit_build_cost: SimDuration,
}

impl Default for TorConfig {
    fn default() -> Self {
        TorConfig {
            circuit_lifetime: SimDuration::from_secs(600),
            per_hop_overhead: SimDuration::from_millis(60),
            circuit_build_cost: SimDuration::from_millis(900),
        }
    }
}

/// A simulated Tor client with circuit state.
#[derive(Debug, Clone)]
pub struct TorClient {
    directory: Vec<Relay>,
    cfg: TorConfig,
    circuit: Option<Circuit>,
    /// Quality multiplier of the current circuit (sampled at build time;
    /// log-normal — real circuits vary widely with relay congestion).
    circuit_quality: f64,
    /// Number of circuits built (telemetry for experiments).
    pub circuits_built: u64,
}

impl TorClient {
    /// A client over the default directory.
    pub fn new() -> TorClient {
        TorClient::with_directory(default_directory(), TorConfig::default())
    }

    /// A client over a custom directory/config.
    pub fn with_directory(directory: Vec<Relay>, cfg: TorConfig) -> TorClient {
        assert!(
            directory.iter().filter(|r| r.is_exit).count() >= 1,
            "directory needs at least one exit"
        );
        assert!(directory.len() >= 3, "directory needs at least 3 relays");
        TorClient {
            directory,
            cfg,
            circuit: None,
            circuit_quality: 1.0,
            circuits_built: 0,
        }
    }

    /// The relay directory.
    pub fn directory(&self) -> &[Relay] {
        &self.directory
    }

    /// The current circuit, if one is open.
    pub fn circuit(&self) -> Option<Circuit> {
        self.circuit
    }

    /// The exit relay's region for the current circuit (Fig. 1b isolates
    /// PLT by exit location).
    pub fn exit_region(&self) -> Option<Region> {
        self.circuit.map(|c| self.directory[c.exit].site.region)
    }

    /// Bandwidth-weighted selection of a relay satisfying `pred`,
    /// excluding indices in `used`.
    fn pick<F>(&self, rng: &mut DetRng, used: &[usize], pred: F) -> usize
    where
        F: Fn(&Relay) -> bool,
    {
        let weights: Vec<f64> = self
            .directory
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if used.contains(&i) || !pred(r) {
                    0.0
                } else {
                    r.bandwidth_weight
                }
            })
            .collect();
        rng.weighted_index(&weights)
    }

    /// Get a live circuit, rotating if the current one has expired.
    /// Returns `(circuit, build_cost)` — the cost is zero when reusing.
    pub fn circuit_for(&mut self, now: SimTime, rng: &mut DetRng) -> (Circuit, SimDuration) {
        if let Some(c) = self.circuit {
            if now.duration_since(c.built_at) < self.cfg.circuit_lifetime {
                return (c, SimDuration::ZERO);
            }
        }
        let exit = self.pick(rng, &[], |r| r.is_exit);
        let entry = self.pick(rng, &[exit], |_| true);
        let middle = self.pick(rng, &[exit, entry], |_| true);
        let c = Circuit {
            entry,
            middle,
            exit,
            built_at: now,
        };
        // Per-circuit quality: log-normal congestion multiplier. Lighter
        // relays (low consensus weight) are likelier to be oversubscribed.
        let weight_penalty = 3.0
            / (self.directory[entry].bandwidth_weight
                + self.directory[middle].bandwidth_weight
                + self.directory[exit].bandwidth_weight)
                .max(1.0);
        self.circuit_quality = (rng.log_normal(0.0, 0.55) * (1.0 + weight_penalty)).clamp(0.9, 5.0);
        self.circuit = Some(c);
        self.circuits_built += 1;
        (c, self.cfg.circuit_build_cost)
    }

    /// Force the next fetch to build a fresh circuit (the paper's
    /// Fig. 6a sends redundant requests over *separate* circuits).
    pub fn drop_circuit(&mut self) {
        self.circuit = None;
    }

    /// The current circuit's congestion multiplier (1.0 = nominal).
    pub fn circuit_quality(&self) -> f64 {
        self.circuit_quality
    }
}

impl Default for TorClient {
    fn default() -> Self {
        TorClient::new()
    }
}

impl Transport for TorClient {
    fn name(&self) -> &str {
        "tor"
    }
    fn kind(&self) -> TransportKind {
        TransportKind::Relay
    }
    fn anonymous(&self) -> bool {
        true
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        let (circuit, build_cost) = self.circuit_for(ctx.now, rng);
        let legs = [
            self.directory[circuit.entry].site,
            self.directory[circuit.middle].site,
            self.directory[circuit.exit].site,
        ];
        let mut report = relay_fetch(
            world,
            &ctx.provider,
            &legs,
            url,
            self.cfg.per_hop_overhead,
            rng,
        );
        // Circuit congestion scales the transfer; the build handshakes
        // pay it too.
        report.elapsed = report.elapsed.mul_f64(self.circuit_quality);
        report.elapsed += build_cost;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transports::Direct;
    use crate::world::{SiteSpec, World};
    use csaw_simnet::topology::{AccessNetwork, Asn, Provider};

    fn setup() -> (World, FetchCtx) {
        let provider = Provider::new(Asn(1), "isp");
        let access = AccessNetwork::single(provider.clone());
        let w = World::builder(access)
            .site(
                SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                    .default_page(360_000, 20),
            )
            .build();
        (
            w,
            FetchCtx {
                now: SimTime::ZERO,
                provider,
            },
        )
    }

    #[test]
    fn circuit_has_three_distinct_relays_and_exit_flag() {
        let mut tor = TorClient::new();
        let mut rng = DetRng::new(1);
        let (c, cost) = tor.circuit_for(SimTime::ZERO, &mut rng);
        assert!(cost > SimDuration::ZERO);
        assert_ne!(c.entry, c.middle);
        assert_ne!(c.middle, c.exit);
        assert_ne!(c.entry, c.exit);
        assert!(tor.directory()[c.exit].is_exit);
    }

    #[test]
    fn circuit_reused_within_lifetime_rotated_after() {
        let mut tor = TorClient::new();
        let mut rng = DetRng::new(2);
        let (c1, _) = tor.circuit_for(SimTime::from_secs(0), &mut rng);
        let (c2, cost2) = tor.circuit_for(SimTime::from_secs(300), &mut rng);
        assert_eq!(c1, c2);
        assert_eq!(cost2, SimDuration::ZERO);
        let (c3, cost3) = tor.circuit_for(SimTime::from_secs(700), &mut rng);
        assert_ne!(c3.built_at, c1.built_at);
        assert!(cost3 > SimDuration::ZERO);
        assert_eq!(tor.circuits_built, 2);
    }

    #[test]
    fn bandwidth_weighting_prefers_heavy_relays() {
        let mut tor = TorClient::new();
        let mut rng = DetRng::new(3);
        let mut counts = vec![0usize; tor.directory().len()];
        for _ in 0..2_000 {
            tor.drop_circuit();
            let (c, _) = tor.circuit_for(SimTime::ZERO, &mut rng);
            counts[c.entry] += 1;
        }
        // guard-de1 (weight 9) should be picked as entry far more often
        // than relay-jp1 (weight 1).
        assert!(counts[0] > counts[11] * 3, "{counts:?}");
    }

    #[test]
    fn tor_fetch_much_slower_than_direct() {
        let (w, ctx) = setup();
        let mut rng = DetRng::new(4);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let direct = Direct.fetch(&w, &ctx, &url, &mut rng);
        let mut tor = TorClient::new();
        // Average over several circuits: a single draw can land on an
        // unusually fast 3-hop path.
        let mut total = SimDuration::ZERO;
        let rounds = 5u32;
        for _ in 0..rounds {
            tor.drop_circuit();
            let t = tor.fetch(&w, &ctx, &url, &mut rng);
            assert!(t.outcome.is_genuine_page());
            total += t.elapsed;
        }
        let mean = total.mul_f64(1.0 / rounds as f64);
        assert!(
            mean > direct.elapsed.mul_f64(1.5),
            "tor mean {} vs direct {}",
            mean,
            direct.elapsed
        );
    }

    #[test]
    fn exit_region_reported() {
        let mut tor = TorClient::new();
        let mut rng = DetRng::new(5);
        assert_eq!(tor.exit_region(), None);
        tor.circuit_for(SimTime::ZERO, &mut rng);
        assert!(tor.exit_region().is_some());
    }

    #[test]
    fn anonymous_flag() {
        assert!(TorClient::new().anonymous());
    }
}
