//! Fetch outcomes: what a client observes when it tries to load a page.
//!
//! Outcomes carry both *what happened* (a page, or a specific failure
//! signature) and *how long it took* — the two inputs C-Saw's detector
//! (Fig. 4 of the paper) and PLT accounting need.

use csaw_simnet::time::SimDuration;
use std::fmt;

/// A failure signature as observed by the client. Each variant maps onto
/// a row of the paper's detection flowchart (Fig. 4) / Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// No DNS response at all (query or response dropped).
    DnsNoResponse,
    /// NXDOMAIN received.
    DnsNxdomain,
    /// SERVFAIL received (after the resolver's retry ladder).
    DnsServfail,
    /// REFUSED received.
    DnsRefused,
    /// The resolution pointed into private/reserved space — a recognized
    /// forgery (C-Saw's detector shortcut for DNS hijacking).
    DnsForgedResolution,
    /// TCP connect timed out (SYN black hole).
    ConnectTimeout,
    /// TCP connect was reset.
    ConnectReset,
    /// TLS handshake never completed (ClientHello dropped).
    TlsTimeout,
    /// TLS handshake reset on SNI.
    TlsReset,
    /// HTTP request sent, no response before the GET timeout.
    HttpGetTimeout,
    /// Connection reset after the HTTP request.
    HttpReset,
    /// The transport itself was unavailable (e.g. fronting unsupported by
    /// the destination, or no usable relay).
    TransportUnavailable,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::DnsNoResponse => "DNS_NO_RESPONSE",
            FailureKind::DnsNxdomain => "DNS_NXDOMAIN",
            FailureKind::DnsServfail => "DNS_SERVFAIL",
            FailureKind::DnsRefused => "DNS_REFUSED",
            FailureKind::DnsForgedResolution => "DNS_FORGED_RESOLUTION",
            FailureKind::ConnectTimeout => "TCP_CONNECT_TIMEOUT",
            FailureKind::ConnectReset => "TCP_CONNECT_RESET",
            FailureKind::TlsTimeout => "TLS_TIMEOUT",
            FailureKind::TlsReset => "TLS_RESET",
            FailureKind::HttpGetTimeout => "HTTP_GET_TIMEOUT",
            FailureKind::HttpReset => "HTTP_RESET",
            FailureKind::TransportUnavailable => "TRANSPORT_UNAVAILABLE",
        };
        f.write_str(s)
    }
}

/// A successfully received document (which may still be a block page —
/// the client can't know without the detector).
#[derive(Debug, Clone, PartialEq)]
pub struct PageResult {
    /// Total bytes received (document + resources).
    pub bytes: u64,
    /// Markup of the base document (the detector's phase-1 input).
    pub html: String,
    /// Ground truth for evaluation: was this actually a block page?
    /// The client-side algorithms never read this field.
    pub truth_block_page: bool,
    /// Was the document reached via an HTTP redirect bounce? (Observable
    /// by the client; block pages often arrive this way.)
    pub redirected: bool,
}

/// What the fetch produced.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchOutcome {
    /// A document was delivered.
    Page(PageResult),
    /// The fetch failed with a specific signature.
    Failed(FailureKind),
}

impl FetchOutcome {
    /// Did we get a document (any document)?
    pub fn is_page(&self) -> bool {
        matches!(self, FetchOutcome::Page(_))
    }

    /// The page result, if any.
    pub fn page(&self) -> Option<&PageResult> {
        match self {
            FetchOutcome::Page(p) => Some(p),
            FetchOutcome::Failed(_) => None,
        }
    }

    /// The failure signature, if any.
    pub fn failure(&self) -> Option<FailureKind> {
        match self {
            FetchOutcome::Failed(k) => Some(*k),
            FetchOutcome::Page(_) => None,
        }
    }

    /// Did we receive the *genuine* page (not a block page)? Ground-truth
    /// helper for experiments.
    pub fn is_genuine_page(&self) -> bool {
        matches!(self, FetchOutcome::Page(p) if !p.truth_block_page)
    }
}

/// A completed fetch: outcome plus elapsed virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct Fetch {
    /// What happened.
    pub outcome: FetchOutcome,
    /// How long it took, from request issue to outcome.
    pub elapsed: SimDuration,
}

impl Fetch {
    /// A failed fetch.
    pub fn failed(kind: FailureKind, elapsed: SimDuration) -> Fetch {
        Fetch {
            outcome: FetchOutcome::Failed(kind),
            elapsed,
        }
    }

    /// A successful fetch.
    pub fn page(result: PageResult, elapsed: SimDuration) -> Fetch {
        Fetch {
            outcome: FetchOutcome::Page(result),
            elapsed,
        }
    }

    /// PLT if a genuine page was delivered (the metric used in every PLT
    /// figure; block pages and failures don't count as loads).
    pub fn genuine_plt(&self) -> Option<SimDuration> {
        self.outcome.is_genuine_page().then_some(self.elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let p = FetchOutcome::Page(PageResult {
            bytes: 100,
            html: "<html></html>".into(),
            truth_block_page: false,
            redirected: false,
        });
        assert!(p.is_page());
        assert!(p.is_genuine_page());
        assert!(p.failure().is_none());
        let f = FetchOutcome::Failed(FailureKind::ConnectTimeout);
        assert!(!f.is_page());
        assert_eq!(f.failure(), Some(FailureKind::ConnectTimeout));
        assert!(f.page().is_none());
    }

    #[test]
    fn block_page_is_not_genuine() {
        let bp = FetchOutcome::Page(PageResult {
            bytes: 1400,
            html: "<html>blocked</html>".into(),
            truth_block_page: true,
            redirected: true,
        });
        assert!(bp.is_page());
        assert!(!bp.is_genuine_page());
    }

    #[test]
    fn genuine_plt_only_for_real_pages() {
        let ok = Fetch::page(
            PageResult {
                bytes: 5,
                html: String::new(),
                truth_block_page: false,
                redirected: false,
            },
            SimDuration::from_millis(800),
        );
        assert_eq!(ok.genuine_plt(), Some(SimDuration::from_millis(800)));
        let failed = Fetch::failed(FailureKind::HttpGetTimeout, SimDuration::from_secs(30));
        assert_eq!(failed.genuine_plt(), None);
    }

    #[test]
    fn failure_display_matches_paper_vocabulary() {
        assert_eq!(FailureKind::HttpGetTimeout.to_string(), "HTTP_GET_TIMEOUT");
    }
}
