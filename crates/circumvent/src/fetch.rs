//! Page-fetch pipelines: the browser model over the world's primitives.
//!
//! Two fetch shapes cover every circumvention mechanism in the paper:
//!
//! - [`direct_like_fetch`]: the client talks to the origin itself —
//!   possibly with a different resolver (public DNS), scheme (HTTPS
//!   upgrade), SNI (domain fronting) or host form (IP as hostname). The
//!   censor sees every stage it would see in reality.
//! - [`relay_fetch`]: the client tunnels through one or more relays
//!   (static proxy, VPN, Lantern, Tor); the censor sees only the first
//!   hop, and PLT comes from the composed path.
//!
//! Page load time follows a browser model: the base document first, then
//! embedded resources over up to [`BROWSER_LANES`] parallel persistent
//! connections per host; cross-host (CDN) resources pay their own DNS +
//! connect — and face the censor on direct-ish fetches, which is exactly
//! how the paper's pilot study discovered CDN blocking (§7.4).

use crate::outcome::{FailureKind, Fetch, FetchOutcome, PageResult};
use crate::world::{dns_failure, DnsServer, HttpStep, TlsStep, World};
use csaw_simnet::rng::DetRng;
use csaw_simnet::tcp::ConnectOutcome;
use csaw_simnet::time::SimDuration;
use csaw_simnet::topology::{Provider, Site};
use csaw_webproto::dns::{is_private_or_reserved, DnsObservation};
use csaw_webproto::page::WebPage;
use csaw_webproto::url::{Scheme, Url};
use std::net::Ipv4Addr;

/// Parallel persistent connections a browser opens per host.
pub const BROWSER_LANES: usize = 6;

/// One protocol step observed during a fetch. C-Saw's detector classifies
/// a failed direct fetch from this trace (Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// A DNS lookup.
    Dns {
        /// Which resolver was asked.
        server: DnsServer,
        /// What came back.
        obs: DnsObservation,
        /// How long it took.
        elapsed: SimDuration,
    },
    /// A TCP connect attempt.
    Connect {
        /// Destination address.
        dst: Ipv4Addr,
        /// Outcome.
        outcome: ConnectOutcome,
        /// How long it took.
        elapsed: SimDuration,
    },
    /// A TLS handshake attempt.
    Tls {
        /// Outcome.
        step: TlsStep,
        /// How long it took.
        elapsed: SimDuration,
    },
    /// An HTTP exchange for the base document.
    Http {
        /// Outcome summary (`Response`/`Timeout`/`Reset`).
        ok: bool,
        /// Whether the response was a block page (ground truth; the
        /// detector uses the HTML, not this flag).
        truth_block_page: bool,
        /// Response size, 0 on failure.
        bytes: u64,
        /// How long it took.
        elapsed: SimDuration,
    },
}

/// A completed fetch plus everything the measurement layer wants to know.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchReport {
    /// Overall outcome (page with *total* bytes, or first-failure kind).
    pub outcome: FetchOutcome,
    /// Page load time (or time burned until failure).
    pub elapsed: SimDuration,
    /// The protocol steps taken for the base document.
    pub trace: Vec<Step>,
    /// Resources that failed to load (URL + failure) — blocked CDNs show
    /// up here.
    pub resource_failures: Vec<(Url, FailureKind)>,
}

impl FetchReport {
    fn failed(kind: FailureKind, elapsed: SimDuration, trace: Vec<Step>) -> FetchReport {
        FetchReport {
            outcome: FetchOutcome::Failed(kind),
            elapsed,
            trace,
            resource_failures: Vec::new(),
        }
    }

    /// Collapse to the simple [`Fetch`] view.
    pub fn fetch(&self) -> Fetch {
        Fetch {
            outcome: self.outcome.clone(),
            elapsed: self.elapsed,
        }
    }
}

/// What name the TLS SNI carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SniMode {
    /// The destination hostname (normal HTTPS).
    HostName,
    /// A front domain (domain fronting).
    Front(String),
    /// No SNI extension.
    Omit,
}

/// Options shaping a direct-style fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectOpts {
    /// Which resolver to use for named hosts.
    pub dns: DnsServer,
    /// Upgrade the URL to HTTPS before fetching.
    pub force_https: bool,
    /// SNI behaviour for HTTPS fetches.
    pub sni: SniMode,
    /// Domain fronting: connect to this front host; the real destination
    /// rides in the encrypted Host header.
    pub front: Option<String>,
    /// Give up early on resolutions pointing at private/reserved space
    /// (C-Saw's detector shortcut; plain browsers burn the full connect
    /// timeout instead).
    pub reject_private_resolution: bool,
}

impl Default for DirectOpts {
    fn default() -> Self {
        DirectOpts {
            dns: DnsServer::IspLocal,
            force_https: false,
            sni: SniMode::HostName,
            front: None,
            reject_private_resolution: false,
        }
    }
}

/// Fetch a page directly from the origin (modulo DNS/scheme/SNI options).
pub fn direct_like_fetch(
    world: &World,
    provider: &Provider,
    url: &Url,
    opts: &DirectOpts,
    rng: &mut DetRng,
) -> FetchReport {
    let url = if opts.force_https {
        url.with_scheme(Scheme::Https)
    } else {
        url.clone()
    };
    let mut trace = Vec::new();
    let mut elapsed = SimDuration::ZERO;

    // --- name resolution -------------------------------------------------
    // Fronted fetches resolve the *front*; IP-hosts need no DNS at all.
    let connect_ip: Ipv4Addr = if let Some(front) = &opts.front {
        // The front is a well-known CDN name; blocking it is the
        // collateral damage censors avoid, so its resolution follows the
        // censor's (non-)rules like any other name.
        let (obs, t) = world.dns_lookup(provider, front, opts.dns, rng);
        elapsed += t;
        trace.push(Step::Dns {
            server: opts.dns,
            obs: obs.clone(),
            elapsed: t,
        });
        match obs.resolved_addr() {
            Some(a) => a,
            None => return FetchReport::failed(FailureKind::TransportUnavailable, elapsed, trace),
        }
    } else {
        match url.host() {
            csaw_webproto::url::Host::Ip(ip) => *ip,
            csaw_webproto::url::Host::Name(name) => {
                let (obs, t) = world.dns_lookup(provider, name, opts.dns, rng);
                elapsed += t;
                trace.push(Step::Dns {
                    server: opts.dns,
                    obs: obs.clone(),
                    elapsed: t,
                });
                match obs.resolved_addr() {
                    Some(a) => {
                        if opts.reject_private_resolution && is_private_or_reserved(a) {
                            // Forged resolution recognized instantly.
                            return FetchReport::failed(
                                FailureKind::DnsForgedResolution,
                                elapsed,
                                trace,
                            );
                        }
                        a
                    }
                    None => {
                        let kind = dns_failure(&obs).unwrap_or(FailureKind::DnsNoResponse);
                        return FetchReport::failed(kind, elapsed, trace);
                    }
                }
            }
        }
    };

    // --- transport establishment -----------------------------------------
    let (conn, t) = world.tcp_connect(provider, connect_ip, rng);
    elapsed += t;
    trace.push(Step::Connect {
        dst: connect_ip,
        outcome: conn,
        elapsed: t,
    });
    if let Some(kind) = crate::world::connect_failure(conn) {
        return FetchReport::failed(kind, elapsed, trace);
    }

    let https = url.scheme() == Scheme::Https || opts.front.is_some();
    if https {
        let sni: Option<&str> = match (&opts.front, &opts.sni) {
            (Some(front), _) => Some(front.as_str()),
            (None, SniMode::HostName) => url.dns_name(),
            (None, SniMode::Front(f)) => Some(f.as_str()),
            (None, SniMode::Omit) => None,
        };
        let (step, t) = world.tls_handshake(provider, connect_ip, sni, rng);
        elapsed += t;
        trace.push(Step::Tls { step, elapsed: t });
        match step {
            TlsStep::Established => {}
            TlsStep::Timeout => {
                return FetchReport::failed(FailureKind::TlsTimeout, elapsed, trace)
            }
            TlsStep::Reset => return FetchReport::failed(FailureKind::TlsReset, elapsed, trace),
        }
    }

    // --- base document ----------------------------------------------------
    let backend = opts.front.as_ref().and_then(|_| url.dns_name());
    let (http, t) = world.http_exchange(provider, connect_ip, &url, https, backend, None, rng);
    elapsed += t;
    let (base_bytes, base_html, truth_block_page, redirected) = match http {
        HttpStep::Response {
            bytes,
            html,
            truth_block_page,
            redirected,
        } => {
            trace.push(Step::Http {
                ok: true,
                truth_block_page,
                bytes,
                elapsed: t,
            });
            (bytes, html, truth_block_page, redirected)
        }
        HttpStep::Timeout => {
            trace.push(Step::Http {
                ok: false,
                truth_block_page: false,
                bytes: 0,
                elapsed: t,
            });
            return FetchReport::failed(FailureKind::HttpGetTimeout, elapsed, trace);
        }
        HttpStep::Reset => {
            trace.push(Step::Http {
                ok: false,
                truth_block_page: false,
                bytes: 0,
                elapsed: t,
            });
            return FetchReport::failed(FailureKind::HttpReset, elapsed, trace);
        }
    };

    // A block page has no resources to fetch; it *is* the document.
    if truth_block_page {
        return FetchReport {
            outcome: FetchOutcome::Page(PageResult {
                bytes: base_bytes,
                html: base_html,
                truth_block_page: true,
                redirected,
            }),
            elapsed,
            trace,
            resource_failures: Vec::new(),
        };
    }

    // --- embedded resources -------------------------------------------
    let page = match url.dns_name() {
        Some(name) => world.site(name).map(|s| s.page_for(&url)),
        None => world.site_by_ip(connect_ip).map(|s| s.page_for(&url)),
    };
    let mut total_bytes = base_bytes;
    let mut resource_failures = Vec::new();
    if let Some(page) = page {
        let (res_time, res_bytes, failures) =
            fetch_resources_direct(world, provider, &page, &url, https, opts, connect_ip, rng);
        elapsed += res_time;
        total_bytes += res_bytes;
        resource_failures = failures;
    }

    FetchReport {
        outcome: FetchOutcome::Page(PageResult {
            bytes: total_bytes,
            html: base_html,
            truth_block_page: false,
            redirected,
        }),
        elapsed,
        trace,
        resource_failures,
    }
}

/// Fetch a page's embedded resources on the direct path: same-host
/// resources reuse the existing connection pool; cross-host (CDN)
/// resources pay DNS + connect and face the censor.
#[allow(clippy::too_many_arguments)]
fn fetch_resources_direct(
    world: &World,
    provider: &Provider,
    page: &WebPage,
    page_url: &Url,
    https: bool,
    opts: &DirectOpts,
    base_ip: Ipv4Addr,
    rng: &mut DetRng,
) -> (SimDuration, u64, Vec<(Url, FailureKind)>) {
    use std::collections::HashMap;
    let mut by_host: HashMap<String, Vec<&csaw_webproto::page::Resource>> = HashMap::new();
    for r in &page.resources {
        by_host.entry(r.url.host().to_string()).or_default().push(r);
    }
    let mut failures = Vec::new();
    let mut total_bytes = 0u64;
    let mut host_times: Vec<SimDuration> = Vec::new();
    let page_host = page_url.host().to_string();
    // Deterministic order: sort host groups.
    let mut hosts: Vec<String> = by_host.keys().cloned().collect();
    hosts.sort();
    for host in hosts {
        let resources = &by_host[&host];
        let mut setup = SimDuration::ZERO;
        let ip = if host == page_host {
            Some(base_ip)
        } else {
            // Cross-host: resolve + connect, censored like any flow.
            let (obs, t) = world.dns_lookup(provider, &host, opts.dns, rng);
            setup += t;
            match obs.resolved_addr() {
                Some(a) => {
                    let (conn, t) = world.tcp_connect(provider, a, rng);
                    setup += t;
                    if let Some(kind) = crate::world::connect_failure(conn) {
                        for r in resources {
                            failures.push((r.url.clone(), kind));
                        }
                        host_times.push(setup);
                        continue;
                    }
                    if https {
                        let (tls, t) = world.tls_handshake(provider, a, Some(&host), rng);
                        setup += t;
                        if tls != TlsStep::Established {
                            let kind = if tls == TlsStep::Reset {
                                FailureKind::TlsReset
                            } else {
                                FailureKind::TlsTimeout
                            };
                            for r in resources {
                                failures.push((r.url.clone(), kind));
                            }
                            host_times.push(setup);
                            continue;
                        }
                    }
                    Some(a)
                }
                None => {
                    let kind = dns_failure(&obs).unwrap_or(FailureKind::DnsNoResponse);
                    for r in resources {
                        failures.push((r.url.clone(), kind));
                    }
                    host_times.push(setup);
                    continue;
                }
            }
        };
        let Some(ip) = ip else { continue };
        // Exchange each resource; spread across parallel lanes.
        let mut times = Vec::with_capacity(resources.len());
        for r in resources {
            let (step, t) = world.http_exchange(
                provider,
                ip,
                &r.url,
                https,
                opts.front.as_ref().and_then(|_| r.url.dns_name()),
                Some(r.bytes),
                rng,
            );
            match step {
                HttpStep::Response { bytes, .. } => {
                    total_bytes += bytes;
                    times.push(t);
                }
                HttpStep::Timeout => {
                    failures.push((r.url.clone(), FailureKind::HttpGetTimeout));
                    times.push(t);
                }
                HttpStep::Reset => {
                    failures.push((r.url.clone(), FailureKind::HttpReset));
                    times.push(t);
                }
            }
        }
        host_times.push(setup + lanes_time(&times, BROWSER_LANES));
    }
    // Host groups load in parallel.
    let t = host_times
        .into_iter()
        .fold(SimDuration::ZERO, SimDuration::max);
    (t, total_bytes, failures)
}

/// Fetch a page through a chain of relays. The censor sees only the first
/// hop (assumed unblocked unless the caller excluded the transport); every
/// stage after that is tunneled. PLT comes from the composed path.
pub fn relay_fetch(
    world: &World,
    provider: &Provider,
    legs: &[Site],
    url: &Url,
    per_hop_overhead: SimDuration,
    rng: &mut DetRng,
) -> FetchReport {
    assert!(!legs.is_empty(), "a relay fetch needs at least one relay");
    let Some(name) = url.dns_name() else {
        return FetchReport::failed(
            FailureKind::TransportUnavailable,
            SimDuration::ZERO,
            Vec::new(),
        );
    };
    let Some(origin) = world.site(name) else {
        return FetchReport::failed(
            FailureKind::DnsNxdomain,
            per_hop_overhead * legs.len() as u64,
            Vec::new(),
        );
    };

    // Compose the path: client -> leg1 -> leg2 -> ... -> origin.
    let mut path = world.path_to_site(provider, legs[0]);
    let mut prev = legs[0];
    for leg in &legs[1..] {
        let ms = prev.region.one_way_ms_to(leg.region);
        path = path.join(&csaw_simnet::link::Path::single(
            csaw_simnet::link::Link::wan(SimDuration::from_millis(ms) + leg.extra_one_way),
        ));
        prev = *leg;
    }
    let ms = prev.region.one_way_ms_to(origin.location.region);
    path = path.join(&csaw_simnet::link::Path::single(
        csaw_simnet::link::Link::wan(SimDuration::from_millis(ms) + origin.location.extra_one_way),
    ));

    let mut elapsed = per_hop_overhead * legs.len() as u64;
    let mut trace = Vec::new();

    // Circuit/tunnel establishment: one composed-path round trip, plus a
    // TLS-grade handshake to the first relay.
    let conn = csaw_simnet::tcp::connect(&path, &world.tcp, rng);
    elapsed += conn.elapsed();
    trace.push(Step::Connect {
        dst: origin.ip,
        outcome: conn,
        elapsed: conn.elapsed(),
    });
    if let Some(kind) = crate::world::connect_failure(conn) {
        return FetchReport::failed(kind, elapsed, trace);
    }

    // Base document.
    let page = origin.page_for(url);
    let base = csaw_simnet::tcp::exchange(&path, page.html_bytes, &world.tcp, rng);
    elapsed += base.elapsed();
    let ok = base.is_done();
    trace.push(Step::Http {
        ok,
        truth_block_page: false,
        bytes: if ok { page.html_bytes } else { 0 },
        elapsed: base.elapsed(),
    });
    if !ok {
        return FetchReport::failed(FailureKind::HttpGetTimeout, elapsed, trace);
    }

    // Resources: all tunneled through the same circuit; cross-host
    // resources are resolved at the exit, uncensored.
    let mut times = Vec::with_capacity(page.resources.len());
    let mut total_bytes = page.html_bytes;
    for r in &page.resources {
        let ex = csaw_simnet::tcp::exchange(&path, r.bytes, &world.tcp, rng);
        times.push(ex.elapsed());
        if ex.is_done() {
            total_bytes += r.bytes;
        }
    }
    elapsed += lanes_time(&times, BROWSER_LANES);

    FetchReport {
        outcome: FetchOutcome::Page(PageResult {
            bytes: total_bytes,
            html: csaw_webproto::synth_html(&origin.host, page.html_bytes.min(64_000) as usize),
            truth_block_page: false,
            redirected: false,
        }),
        elapsed,
        trace,
        resource_failures: Vec::new(),
    }
}

/// Greedy longest-processing-time assignment of transfer times onto
/// `lanes` parallel lanes; returns the makespan.
pub fn lanes_time(times: &[SimDuration], lanes: usize) -> SimDuration {
    if times.is_empty() {
        return SimDuration::ZERO;
    }
    let lanes = lanes.max(1);
    let mut sorted: Vec<SimDuration> = times.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut load = vec![SimDuration::ZERO; lanes];
    for t in sorted {
        let (i, _) = load
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .expect("lanes >= 1");
        load[i] += t;
    }
    load.into_iter().fold(SimDuration::ZERO, SimDuration::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{SiteSpec, World};
    use csaw_censor::profiles;
    use csaw_simnet::topology::{AccessNetwork, Asn, Region};

    fn world(policy: csaw_censor::CensorPolicy, asn: Asn) -> (World, Provider) {
        let provider = Provider::new(asn, "isp");
        let access = AccessNetwork::single(provider.clone());
        let w = World::builder(access)
            .site(
                SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                    .category(csaw_censor::Category::Video)
                    .frontable(true)
                    .default_page(360_000, 20),
            )
            .site(
                SiteSpec::new("cdn-front.example", Site::in_region(Region::Singapore))
                    .frontable(true),
            )
            .site(
                SiteSpec::new("example.com", Site::in_region(Region::UsEast))
                    .default_page(95_000, 6),
            )
            .censor(asn, policy)
            .build();
        (w, provider)
    }

    #[test]
    fn clean_direct_fetch_succeeds() {
        let (w, p) = world(profiles::clean(), Asn(1));
        let mut rng = DetRng::new(1);
        let url = Url::parse("http://example.com/").unwrap();
        let r = direct_like_fetch(&w, &p, &url, &DirectOpts::default(), &mut rng);
        assert!(r.outcome.is_genuine_page(), "{:?}", r.outcome);
        assert!(r.resource_failures.is_empty());
        // PLT sane: sub-10s for a 95 KB page.
        assert!(r.elapsed < SimDuration::from_secs(10), "{}", r.elapsed);
        assert!(r.elapsed > SimDuration::from_millis(100));
        // Total bytes include resources.
        assert!(r.outcome.page().unwrap().bytes > 60_000);
    }

    #[test]
    fn isp_a_block_page_on_http_https_clean() {
        let (w, p) = world(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut rng = DetRng::new(2);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let r = direct_like_fetch(&w, &p, &url, &DirectOpts::default(), &mut rng);
        let page = r.outcome.page().expect("block page is a page");
        assert!(page.truth_block_page);
        // HTTPS local-fix works on ISP-A.
        let opts = DirectOpts {
            force_https: true,
            ..DirectOpts::default()
        };
        let r = direct_like_fetch(&w, &p, &url, &opts, &mut rng);
        assert!(r.outcome.is_genuine_page(), "{:?}", r.outcome);
    }

    #[test]
    fn isp_b_needs_fronting_for_youtube() {
        let (w, p) = world(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(3);
        let url = Url::parse("https://www.youtube.com/").unwrap();
        // Plain HTTPS: SNI blocked (TLS drop) — after public DNS resolves
        // truthfully the TLS stage still kills it.
        let opts = DirectOpts {
            dns: DnsServer::Public,
            ..DirectOpts::default()
        };
        let r = direct_like_fetch(&w, &p, &url, &opts, &mut rng);
        assert_eq!(r.outcome.failure(), Some(FailureKind::TlsTimeout));
        // Fronted: SNI names the front; sails through.
        let opts = DirectOpts {
            dns: DnsServer::Public,
            front: Some("cdn-front.example".into()),
            ..DirectOpts::default()
        };
        let r = direct_like_fetch(&w, &p, &url, &opts, &mut rng);
        assert!(r.outcome.is_genuine_page(), "{:?}", r.outcome);
    }

    #[test]
    fn private_resolution_shortcut() {
        let (w, p) = world(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(4);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        // Plain browser: hijacked answer -> 21 s connect black hole.
        let naive = DirectOpts::default();
        let mut saw_long = false;
        for _ in 0..10 {
            let r = direct_like_fetch(&w, &p, &url, &naive, &mut rng);
            if r.elapsed >= SimDuration::from_secs(21) {
                saw_long = true;
            }
        }
        assert!(
            saw_long,
            "hijack should cause long stalls for naive fetches"
        );
        // Detector shortcut: reject private resolutions instantly.
        let smart = DirectOpts {
            reject_private_resolution: true,
            ..DirectOpts::default()
        };
        let mut saw_fast_fail = false;
        for _ in 0..10 {
            let r = direct_like_fetch(&w, &p, &url, &smart, &mut rng);
            if r.outcome.failure().is_some() && r.elapsed < SimDuration::from_millis(200) {
                saw_fast_fail = true;
            }
        }
        assert!(saw_fast_fail);
    }

    #[test]
    fn relay_fetch_succeeds_but_slower_than_direct() {
        let (w, p) = world(profiles::clean(), Asn(1));
        let mut rng = DetRng::new(5);
        let url = Url::parse("http://example.com/").unwrap();
        let direct = direct_like_fetch(&w, &p, &url, &DirectOpts::default(), &mut rng);
        let relayed = relay_fetch(
            &w,
            &p,
            &[
                Site::in_region(Region::Germany),
                Site::in_region(Region::UsWest),
            ],
            &url,
            SimDuration::from_millis(20),
            &mut rng,
        );
        assert!(relayed.outcome.is_genuine_page());
        assert!(
            relayed.elapsed > direct.elapsed,
            "relay {} <= direct {}",
            relayed.elapsed,
            direct.elapsed
        );
    }

    #[test]
    fn relay_unknown_host_fails() {
        let (w, p) = world(profiles::clean(), Asn(1));
        let mut rng = DetRng::new(6);
        let url = Url::parse("http://nowhere.example/").unwrap();
        let r = relay_fetch(
            &w,
            &p,
            &[Site::in_region(Region::Germany)],
            &url,
            SimDuration::ZERO,
            &mut rng,
        );
        assert_eq!(r.outcome.failure(), Some(FailureKind::DnsNxdomain));
    }

    #[test]
    fn lanes_makespan() {
        let ms = |x| SimDuration::from_millis(x);
        // 4 equal tasks on 2 lanes: 2 rounds.
        assert_eq!(lanes_time(&[ms(10); 4], 2), ms(20));
        // One big task dominates.
        assert_eq!(lanes_time(&[ms(100), ms(10), ms(10)], 2), ms(100));
        // Empty.
        assert_eq!(lanes_time(&[], 6), SimDuration::ZERO);
        // More lanes than tasks: max task.
        assert_eq!(lanes_time(&[ms(5), ms(7)], 6), ms(7));
    }

    #[test]
    fn trace_records_steps() {
        let (w, p) = world(profiles::clean(), Asn(1));
        let mut rng = DetRng::new(7);
        let url = Url::parse("https://example.com/").unwrap();
        let r = direct_like_fetch(&w, &p, &url, &DirectOpts::default(), &mut rng);
        let kinds: Vec<&str> = r
            .trace
            .iter()
            .map(|s| match s {
                Step::Dns { .. } => "dns",
                Step::Connect { .. } => "connect",
                Step::Tls { .. } => "tls",
                Step::Http { .. } => "http",
            })
            .collect();
        assert_eq!(kinds, vec!["dns", "connect", "tls", "http"]);
    }
}
