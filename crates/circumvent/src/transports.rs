//! Circumvention transports.
//!
//! Every way the paper fetches a page is a [`Transport`]:
//!
//! | Transport | Paper reference | Defeats |
//! |---|---|---|
//! | [`Direct`] | baseline | nothing |
//! | [`PublicDns`] | §2.2 "Public DNS Servers" | resolver-side DNS tampering |
//! | [`HttpsUpgrade`] | §2.3 "using HTTPS in ISP-A" | HTTP-only filtering |
//! | [`DomainFronting`] | §2.2, Fig. 1a | DNS + SNI + HTTP filtering |
//! | [`IpAsHostname`] | Fig. 1c | DNS + keyword filtering |
//! | [`StaticProxy`] | Fig. 1a | everything, at distance cost |
//! | [`Vpn`] | §2.2 | everything, at tunnel cost |
//! | `TorClient` (see [`crate::tor`]) | §2.2 | everything + anonymity, slow |
//! | `LanternClient` (see [`crate::lantern`]) | §2.2 | everything, trust-routed |
//!
//! The *local fixes* (public DNS, HTTPS, fronting, IP-as-hostname) are the
//! heart of C-Saw's performance story: they avoid relays entirely, so PLT
//! stays near the direct path's.

use crate::fetch::{direct_like_fetch, DirectOpts, FetchReport, SniMode};
use crate::outcome::FailureKind;
use crate::world::{DnsServer, World};
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::{Provider, Site};
use csaw_webproto::url::Url;

/// Coarse transport class, used by C-Saw's selection policy
/// (local fixes are always preferred over relays, §4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// The unmodified direct path.
    Direct,
    /// A non-relay fix (public DNS, HTTPS, fronting, IP-as-hostname).
    LocalFix,
    /// A relay-based approach (proxy, VPN, Lantern, Tor).
    Relay,
}

/// Per-fetch context a transport may need.
#[derive(Debug, Clone)]
pub struct FetchCtx {
    /// Current virtual time (Tor uses it for circuit rotation).
    pub now: SimTime,
    /// The provider carrying this flow (multihomed networks vary this).
    pub provider: Provider,
}

/// A way to fetch a URL.
pub trait Transport {
    /// Stable identifier (used as the moving-average key and in reports).
    fn name(&self) -> &str;
    /// Classification for the selection policy.
    fn kind(&self) -> TransportKind;
    /// Does this transport hide the user from the censor? (C-Saw's
    /// anonymity-preferring configuration only uses transports where this
    /// is true, §4.4.)
    fn anonymous(&self) -> bool {
        false
    }
    /// Fetch the page.
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport;
}

/// The unmodified direct path.
#[derive(Debug, Clone, Default)]
pub struct Direct;

impl Transport for Direct {
    fn name(&self) -> &str {
        "direct"
    }
    fn kind(&self) -> TransportKind {
        TransportKind::Direct
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        direct_like_fetch(world, &ctx.provider, url, &DirectOpts::default(), rng)
    }
}

/// Direct path, resolving through a public resolver (the Fig. 4 "GDNS").
#[derive(Debug, Clone, Default)]
pub struct PublicDns;

impl Transport for PublicDns {
    fn name(&self) -> &str {
        "public-dns"
    }
    fn kind(&self) -> TransportKind {
        TransportKind::LocalFix
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        let opts = DirectOpts {
            dns: DnsServer::Public,
            // A C-Saw-operated fix recognizes forged private-space
            // resolutions instead of connecting into a black hole.
            reject_private_resolution: true,
            ..DirectOpts::default()
        };
        direct_like_fetch(world, &ctx.provider, url, &opts, rng)
    }
}

/// Direct path resolving through a public resolver with Hold-On
/// (§2.2): survives on-path DNS *injection* that defeats plain public
/// DNS, at the cost of a hold window per lookup.
#[derive(Debug, Clone, Default)]
pub struct HoldOnDns;

impl Transport for HoldOnDns {
    fn name(&self) -> &str {
        "hold-on-dns"
    }
    fn kind(&self) -> TransportKind {
        TransportKind::LocalFix
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        let opts = DirectOpts {
            dns: DnsServer::PublicHoldOn,
            reject_private_resolution: true,
            ..DirectOpts::default()
        };
        direct_like_fetch(world, &ctx.provider, url, &opts, rng)
    }
}

/// Upgrade the fetch to HTTPS (works where only plaintext HTTP is
/// filtered — ISP-A in the case study).
#[derive(Debug, Clone, Default)]
pub struct HttpsUpgrade {
    /// Also resolve via public DNS (combined fix for DNS + HTTP filtering).
    pub public_dns: bool,
}

impl Transport for HttpsUpgrade {
    fn name(&self) -> &str {
        "https"
    }
    fn kind(&self) -> TransportKind {
        TransportKind::LocalFix
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        // HTTPS requires origin support.
        if let Some(name) = url.dns_name() {
            if let Some(site) = world.site(name) {
                if !site.https {
                    return FetchReport {
                        outcome: crate::outcome::FetchOutcome::Failed(
                            FailureKind::TransportUnavailable,
                        ),
                        elapsed: SimDuration::ZERO,
                        trace: Vec::new(),
                        resource_failures: Vec::new(),
                    };
                }
            }
        }
        let opts = DirectOpts {
            dns: if self.public_dns {
                DnsServer::Public
            } else {
                DnsServer::IspLocal
            },
            force_https: true,
            reject_private_resolution: true,
            ..DirectOpts::default()
        };
        direct_like_fetch(world, &ctx.provider, url, &opts, rng)
    }
}

/// Domain fronting through a CDN front-end: the censor sees DNS + SNI for
/// the front; the blocked destination rides in the encrypted Host header.
#[derive(Debug, Clone)]
pub struct DomainFronting {
    /// The innocuous front domain (must exist in the world).
    pub front: String,
}

impl DomainFronting {
    /// Front through the given domain.
    pub fn via(front: &str) -> DomainFronting {
        DomainFronting {
            front: front.to_string(),
        }
    }
}

impl Transport for DomainFronting {
    fn name(&self) -> &str {
        "domain-fronting"
    }
    fn kind(&self) -> TransportKind {
        TransportKind::LocalFix
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        // Fronting requires the destination to be served via a
        // fronting-capable CDN.
        let frontable = url
            .dns_name()
            .and_then(|n| world.site(n))
            .map(|s| s.frontable)
            .unwrap_or(false);
        if !frontable {
            return FetchReport {
                outcome: crate::outcome::FetchOutcome::Failed(FailureKind::TransportUnavailable),
                elapsed: SimDuration::ZERO,
                trace: Vec::new(),
                resource_failures: Vec::new(),
            };
        }
        let opts = DirectOpts {
            dns: DnsServer::IspLocal,
            force_https: true,
            sni: SniMode::Front(self.front.clone()),
            front: Some(self.front.clone()),
            ..DirectOpts::default()
        };
        direct_like_fetch(world, &ctx.provider, url, &opts, rng)
    }
}

/// Address the origin by literal IP, defeating DNS tampering and keyword
/// filters (Fig. 1c). The true address is obtained out-of-band (C-Saw
/// carries it in the global DB); here we model that with one
/// Hold-On-hardened public lookup on first use, then cache — a plain
/// lookup would let an on-path injector poison the very fix that's
/// supposed to evade it.
#[derive(Debug, Clone, Default)]
pub struct IpAsHostname {
    cache: std::collections::HashMap<String, std::net::Ipv4Addr>,
}

impl Transport for IpAsHostname {
    fn name(&self) -> &str {
        "ip-as-hostname"
    }
    fn kind(&self) -> TransportKind {
        TransportKind::LocalFix
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        let Some(name) = url.dns_name() else {
            // Already an IP URL: just go direct.
            return direct_like_fetch(world, &ctx.provider, url, &DirectOpts::default(), rng);
        };
        let Some(site) = world.site(name) else {
            return FetchReport {
                outcome: crate::outcome::FetchOutcome::Failed(FailureKind::DnsNxdomain),
                elapsed: SimDuration::ZERO,
                trace: Vec::new(),
                resource_failures: Vec::new(),
            };
        };
        if !site.serves_by_ip {
            return FetchReport {
                outcome: crate::outcome::FetchOutcome::Failed(FailureKind::TransportUnavailable),
                elapsed: SimDuration::ZERO,
                trace: Vec::new(),
                resource_failures: Vec::new(),
            };
        }
        let mut lookup_cost = SimDuration::ZERO;
        let ip = match self.cache.get(name) {
            Some(ip) => *ip,
            None => {
                let (obs, t) = world.dns_lookup(&ctx.provider, name, DnsServer::PublicHoldOn, rng);
                lookup_cost = t;
                match obs.resolved_addr() {
                    // Never cache (or use) a resolution pointing into
                    // private space — that's the injector talking.
                    Some(ip) if !csaw_webproto::dns::is_private_or_reserved(ip) => {
                        self.cache.insert(name.to_string(), ip);
                        ip
                    }
                    Some(_) | None => {
                        return FetchReport {
                            outcome: crate::outcome::FetchOutcome::Failed(
                                FailureKind::DnsForgedResolution,
                            ),
                            elapsed: t,
                            trace: Vec::new(),
                            resource_failures: Vec::new(),
                        }
                    }
                }
            }
        };
        let ip_url = url.with_ip_host(ip);
        let mut report =
            direct_like_fetch(world, &ctx.provider, &ip_url, &DirectOpts::default(), rng);
        report.elapsed += lookup_cost;
        report
    }
}

/// A static HTTP(S) proxy at a fixed location (the Fig. 1a/Table 2
/// proxies). Optionally congested — the paper observed Germany-1, UK and
/// Japan proxies with wildly varying PLTs.
#[derive(Debug, Clone)]
pub struct StaticProxy {
    /// Label used in reports, e.g. "Netherlands".
    pub label: String,
    /// Where the proxy is.
    pub site: Site,
    /// Probability a given fetch hits queueing/congestion at the proxy.
    pub congestion_p: f64,
    /// Maximum extra delay congestion adds.
    pub congestion_max: SimDuration,
}

impl StaticProxy {
    /// A well-behaved proxy at a location.
    pub fn at(label: &str, site: Site) -> StaticProxy {
        StaticProxy {
            label: label.to_string(),
            site,
            congestion_p: 0.0,
            congestion_max: SimDuration::ZERO,
        }
    }

    /// Make the proxy flaky (load/congestion spikes).
    pub fn congested(mut self, p: f64, max: SimDuration) -> StaticProxy {
        self.congestion_p = p.clamp(0.0, 1.0);
        self.congestion_max = max;
        self
    }
}

impl Transport for StaticProxy {
    fn name(&self) -> &str {
        &self.label
    }
    fn kind(&self) -> TransportKind {
        TransportKind::Relay
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        let mut report = crate::fetch::relay_fetch(
            world,
            &ctx.provider,
            &[self.site],
            url,
            SimDuration::from_millis(10),
            rng,
        );
        if self.congestion_p > 0.0 && rng.chance(self.congestion_p) {
            report.elapsed += SimDuration::from_micros(
                rng.range_u64(0, self.congestion_max.as_micros().max(1) + 1),
            );
        }
        report
    }
}

/// A VPN tunnel to an exit outside the censored region. Like a static
/// proxy, plus per-packet tunnel overhead.
#[derive(Debug, Clone)]
pub struct Vpn {
    /// Exit location.
    pub site: Site,
}

impl Vpn {
    /// A VPN exiting at the given location.
    pub fn exit_at(site: Site) -> Vpn {
        Vpn { site }
    }
}

impl Transport for Vpn {
    fn name(&self) -> &str {
        "vpn"
    }
    fn kind(&self) -> TransportKind {
        TransportKind::Relay
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        crate::fetch::relay_fetch(
            world,
            &ctx.provider,
            &[self.site],
            url,
            SimDuration::from_millis(30), // tunnel setup/crypto overhead
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{SiteSpec, World};
    use csaw_censor::profiles;
    use csaw_simnet::topology::{AccessNetwork, Asn, Region};

    fn setup(policy: csaw_censor::CensorPolicy, asn: Asn) -> (World, FetchCtx) {
        let provider = Provider::new(asn, "isp");
        let access = AccessNetwork::single(provider.clone());
        let w = World::builder(access)
            .site(
                SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                    .category(csaw_censor::Category::Video)
                    .frontable(true)
                    .serves_by_ip(true)
                    .default_page(360_000, 20),
            )
            .site(SiteSpec::new(
                "cdn-front.example",
                Site::in_region(Region::Singapore),
            ))
            .site(
                SiteSpec::new("porn-site.example", Site::in_region(Region::Netherlands))
                    .category(csaw_censor::Category::Porn)
                    .serves_by_ip(true)
                    .default_page(50_000, 4),
            )
            .censor(asn, policy)
            .build();
        let ctx = FetchCtx {
            now: SimTime::ZERO,
            provider,
        };
        (w, ctx)
    }

    #[test]
    fn https_defeats_isp_a() {
        let (w, ctx) = setup(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut rng = DetRng::new(1);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let direct = Direct.fetch(&w, &ctx, &url, &mut rng);
        assert!(direct
            .outcome
            .page()
            .map(|p| p.truth_block_page)
            .unwrap_or(false));
        let https = HttpsUpgrade::default().fetch(&w, &ctx, &url, &mut rng);
        assert!(https.outcome.is_genuine_page());
    }

    #[test]
    fn fronting_defeats_isp_b() {
        let (w, ctx) = setup(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(2);
        let url = Url::parse("https://www.youtube.com/").unwrap();
        let plain = HttpsUpgrade { public_dns: true }.fetch(&w, &ctx, &url, &mut rng);
        assert_eq!(plain.outcome.failure(), Some(FailureKind::TlsTimeout));
        let fronted = DomainFronting::via("cdn-front.example").fetch(&w, &ctx, &url, &mut rng);
        assert!(fronted.outcome.is_genuine_page(), "{:?}", fronted.outcome);
    }

    #[test]
    fn fronting_unavailable_for_non_cdn_sites() {
        let (w, ctx) = setup(profiles::clean(), Asn(1));
        let mut rng = DetRng::new(3);
        let url = Url::parse("https://porn-site.example/").unwrap();
        let r = DomainFronting::via("cdn-front.example").fetch(&w, &ctx, &url, &mut rng);
        assert_eq!(r.outcome.failure(), Some(FailureKind::TransportUnavailable));
    }

    #[test]
    fn ip_hostname_defeats_keyword_filter_and_caches() {
        let (w, ctx) = setup(profiles::keyword_filter(&["porn"]), Asn(3));
        let mut rng = DetRng::new(4);
        let url = Url::parse("http://porn-site.example/").unwrap();
        // Direct: block page (keyword in hostname).
        let direct = Direct.fetch(&w, &ctx, &url, &mut rng);
        assert!(direct
            .outcome
            .page()
            .map(|p| p.truth_block_page)
            .unwrap_or(false));
        // IP-as-hostname sails through.
        let mut iph = IpAsHostname::default();
        let first = iph.fetch(&w, &ctx, &url, &mut rng);
        assert!(first.outcome.is_genuine_page(), "{:?}", first.outcome);
        let second = iph.fetch(&w, &ctx, &url, &mut rng);
        assert!(second.outcome.is_genuine_page());
        // Cached lookups shave the public-DNS RTT; compare medians of many
        // samples to dodge jitter.
        let mut firsts = Vec::new();
        let mut seconds = Vec::new();
        for i in 0..30 {
            let mut fresh = IpAsHostname::default();
            let mut r = DetRng::new(100 + i);
            firsts.push(fresh.fetch(&w, &ctx, &url, &mut r).elapsed);
            seconds.push(fresh.fetch(&w, &ctx, &url, &mut r).elapsed);
        }
        firsts.sort();
        seconds.sort();
        assert!(seconds[15] <= firsts[15]);
    }

    #[test]
    fn public_dns_fixes_isp_b_dns_but_not_http() {
        let (w, ctx) = setup(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(5);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        // Public DNS resolves truthfully, but the HTTP drop stage still
        // kills the plaintext fetch.
        let r = PublicDns.fetch(&w, &ctx, &url, &mut rng);
        assert_eq!(r.outcome.failure(), Some(FailureKind::HttpGetTimeout));
    }

    #[test]
    fn static_proxy_and_vpn_bypass_everything_slowly() {
        let (w, ctx) = setup(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(6);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let mut proxy = StaticProxy::at(
            "Netherlands",
            Site::at_vantage_rtt(Region::Netherlands, 172),
        );
        let p = proxy.fetch(&w, &ctx, &url, &mut rng);
        assert!(p.outcome.is_genuine_page());
        let mut vpn = Vpn::exit_at(Site::in_region(Region::Germany));
        let v = vpn.fetch(&w, &ctx, &url, &mut rng);
        assert!(v.outcome.is_genuine_page());
        // Both slower than an uncensored direct fetch would be.
        let (w_clean, ctx_clean) = setup(profiles::clean(), Asn(99));
        let d = Direct.fetch(&w_clean, &ctx_clean, &url, &mut rng);
        assert!(p.elapsed > d.elapsed);
        assert!(v.elapsed > d.elapsed);
    }

    #[test]
    fn congested_proxy_has_fatter_tail() {
        let (w, ctx) = setup(profiles::clean(), Asn(9));
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let site = Site::at_vantage_rtt(Region::Germany, 309);
        let sample = |proxy: &mut StaticProxy, seed: u64| -> Vec<SimDuration> {
            let mut rng = DetRng::new(seed);
            (0..60)
                .map(|_| proxy.fetch(&w, &ctx, &url, &mut rng).elapsed)
                .collect()
        };
        let mut calm = StaticProxy::at("calm", site);
        let mut flaky = StaticProxy::at("flaky", site).congested(0.5, SimDuration::from_secs(5));
        let mut a = sample(&mut calm, 42);
        let mut b = sample(&mut flaky, 42);
        a.sort();
        b.sort();
        assert!(b[54] > a[54], "p90 flaky {} <= calm {}", b[54], a[54]);
    }

    #[test]
    fn hold_on_survives_on_path_injection() {
        // An injecting censor that also poisons public-resolver answers:
        // plain public DNS eats the forged record; Hold-On waits for the
        // genuine one.
        let (mut w, ctx) = setup(
            csaw_censor::single_mechanism(
                "injector",
                "www.youtube.com",
                csaw_censor::DnsTamper::HijackTo("10.9.9.9".parse().unwrap()),
                csaw_censor::IpAction::None,
                csaw_censor::HttpAction::None,
                csaw_censor::TlsAction::None,
            ),
            Asn(41),
        );
        w.set_public_dns_intercepted(true);
        let mut rng = DetRng::new(15);
        let url = Url::parse("http://www.youtube.com/").unwrap();
        // Plain public DNS: forged answer -> connect to a black hole.
        let mut long_stalls = 0;
        for _ in 0..5 {
            let r = PublicDns.fetch(&w, &ctx, &url, &mut rng);
            if !r.outcome.is_genuine_page() || r.elapsed >= SimDuration::from_secs(21) {
                long_stalls += 1;
            }
        }
        assert!(long_stalls >= 4, "injection should defeat plain public DNS");
        // Hold-On: genuine page, every time, at a bounded extra cost.
        for _ in 0..5 {
            let r = HoldOnDns.fetch(&w, &ctx, &url, &mut rng);
            assert!(r.outcome.is_genuine_page(), "{:?}", r.outcome);
            assert!(r.elapsed < SimDuration::from_secs(10), "{}", r.elapsed);
        }
        // Against query *dropping* Hold-On is powerless, as documented.
        let (w2, ctx2) = setup(
            csaw_censor::single_mechanism(
                "dropper",
                "www.youtube.com",
                csaw_censor::DnsTamper::Drop,
                csaw_censor::IpAction::None,
                csaw_censor::HttpAction::None,
                csaw_censor::TlsAction::None,
            ),
            Asn(42),
        );
        let mut w2 = w2;
        w2.set_public_dns_intercepted(true);
        let r = HoldOnDns.fetch(&w2, &ctx2, &url, &mut rng);
        assert!(!r.outcome.is_genuine_page());
    }

    #[test]
    fn fronted_fetch_carries_the_whole_page() {
        let (w, ctx) = setup(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(14);
        let url = Url::parse("https://www.youtube.com/").unwrap();
        let r = DomainFronting::via("cdn-front.example").fetch(&w, &ctx, &url, &mut rng);
        let page = r.outcome.page().expect("fronted page delivered");
        assert!(!page.truth_block_page);
        // Resources rode the front too: total far exceeds the base doc.
        assert!(page.bytes > 150_000, "{}", page.bytes);
        assert!(r.resource_failures.is_empty(), "{:?}", r.resource_failures);
    }

    #[test]
    fn transport_kinds() {
        assert_eq!(Direct.kind(), TransportKind::Direct);
        assert_eq!(PublicDns.kind(), TransportKind::LocalFix);
        assert_eq!(HttpsUpgrade::default().kind(), TransportKind::LocalFix);
        assert_eq!(DomainFronting::via("x").kind(), TransportKind::LocalFix);
        assert_eq!(IpAsHostname::default().kind(), TransportKind::LocalFix);
        assert_eq!(
            StaticProxy::at("x", Site::in_region(Region::Japan)).kind(),
            TransportKind::Relay
        );
        assert_eq!(
            Vpn::exit_at(Site::in_region(Region::Japan)).kind(),
            TransportKind::Relay
        );
    }
}
