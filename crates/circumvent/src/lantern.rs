//! A simulated Lantern client.
//!
//! Lantern (§2.2) routes through a network of HTTPS proxies discovered via
//! *trust relationships* rather than performance: you relay through people
//! (and infrastructure) you — or your friends — trust. The paper's Fig. 1c
//! observation is that this costs real latency: trust-constrained relays
//! are often geographically poor choices, giving ~1.5× longer PLTs than a
//! direct-style fix. Unlike Tor it uses a single relay hop and provides no
//! anonymity, so it sits between local fixes and Tor in the PLT ordering
//! (Fig. 7).

use crate::fetch::{relay_fetch, FetchReport};
use crate::transports::{FetchCtx, Transport, TransportKind};
use crate::world::World;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::SimDuration;
use csaw_simnet::topology::{Region, Site};
use csaw_webproto::url::Url;

/// A proxy reachable through the trust graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LanternProxy {
    /// Who runs it, for reporting.
    pub label: String,
    /// Where it runs.
    pub site: Site,
    /// Hops through the trust graph to reach this proxy (1 = a direct
    /// friend). Selection prefers closer trust, not closer geography.
    pub trust_distance: u32,
    /// Fraction of time the proxy is actually up (volunteers churn).
    pub availability: f64,
}

/// The default trust neighbourhood: the nearest *trusted* proxies are far
/// away (diaspora friends in the US and Canada), while geographically
/// better proxies sit deeper in the trust graph — the structural reason
/// Lantern's paths are long.
pub fn default_trust_network() -> Vec<LanternProxy> {
    vec![
        LanternProxy {
            label: "friend-us-west".into(),
            site: Site::in_region(Region::UsWest),
            trust_distance: 1,
            availability: 0.95,
        },
        LanternProxy {
            label: "friend-canada".into(),
            site: Site::in_region(Region::Canada),
            trust_distance: 1,
            availability: 0.9,
        },
        LanternProxy {
            label: "fof-us-east".into(),
            site: Site::in_region(Region::UsEast),
            trust_distance: 2,
            availability: 0.9,
        },
        LanternProxy {
            label: "fof-germany".into(),
            site: Site::in_region(Region::Germany),
            trust_distance: 2,
            availability: 0.85,
        },
        LanternProxy {
            label: "distant-netherlands".into(),
            site: Site::in_region(Region::Netherlands),
            trust_distance: 3,
            availability: 0.8,
        },
    ]
}

/// A simulated Lantern client.
#[derive(Debug, Clone)]
pub struct LanternClient {
    proxies: Vec<LanternProxy>,
    /// HTTPS-proxy handshake overhead per fetch.
    pub per_fetch_overhead: SimDuration,
    /// Label of the last proxy used (telemetry).
    pub last_proxy: Option<String>,
}

impl LanternClient {
    /// A client over the default trust network.
    pub fn new() -> LanternClient {
        LanternClient::with_proxies(default_trust_network())
    }

    /// A client over a custom trust network.
    pub fn with_proxies(proxies: Vec<LanternProxy>) -> LanternClient {
        assert!(!proxies.is_empty(), "lantern needs at least one proxy");
        LanternClient {
            proxies,
            per_fetch_overhead: SimDuration::from_millis(60),
            last_proxy: None,
        }
    }

    /// The trust network.
    pub fn proxies(&self) -> &[LanternProxy] {
        &self.proxies
    }

    /// Select a proxy: lowest trust distance first (that's Lantern's
    /// discovery order), skipping proxies that are down right now;
    /// ties broken deterministically by label.
    pub fn select_proxy(&mut self, rng: &mut DetRng) -> Option<&LanternProxy> {
        let mut candidates: Vec<&LanternProxy> = self.proxies.iter().collect();
        candidates.sort_by(|a, b| {
            a.trust_distance
                .cmp(&b.trust_distance)
                .then_with(|| a.label.cmp(&b.label))
        });
        let chosen = candidates.into_iter().find(|p| rng.chance(p.availability));
        if let Some(p) = chosen {
            self.last_proxy = Some(p.label.clone());
        }
        self.last_proxy
            .as_ref()
            .and_then(|l| self.proxies.iter().find(|p| &p.label == l))
    }
}

impl Default for LanternClient {
    fn default() -> Self {
        LanternClient::new()
    }
}

impl Transport for LanternClient {
    fn name(&self) -> &str {
        "lantern"
    }
    fn kind(&self) -> TransportKind {
        TransportKind::Relay
    }
    fn anonymous(&self) -> bool {
        false // the paper is explicit: Lantern trades anonymity for speed
    }
    fn fetch(&mut self, world: &World, ctx: &FetchCtx, url: &Url, rng: &mut DetRng) -> FetchReport {
        let overhead = self.per_fetch_overhead;
        let Some(site) = self.select_proxy(rng).map(|p| p.site) else {
            return FetchReport {
                outcome: crate::outcome::FetchOutcome::Failed(
                    crate::outcome::FailureKind::TransportUnavailable,
                ),
                elapsed: SimDuration::ZERO,
                trace: Vec::new(),
                resource_failures: Vec::new(),
            };
        };
        let mut report = relay_fetch(world, &ctx.provider, &[site], url, overhead, rng);
        report.elapsed += overhead;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transports::{Direct, FetchCtx};
    use crate::world::{SiteSpec, World};
    use csaw_simnet::time::SimTime;
    use csaw_simnet::topology::{AccessNetwork, Asn, Provider};

    fn setup() -> (World, FetchCtx) {
        let provider = Provider::new(Asn(1), "isp");
        let access = AccessNetwork::single(provider.clone());
        let w = World::builder(access)
            .site(
                SiteSpec::new("porn-site.example", Site::in_region(Region::Netherlands))
                    .serves_by_ip(true)
                    .default_page(50_000, 4),
            )
            .build();
        (
            w,
            FetchCtx {
                now: SimTime::ZERO,
                provider,
            },
        )
    }

    #[test]
    fn selection_prefers_trusted_over_near() {
        let mut l = LanternClient::new();
        let mut rng = DetRng::new(1);
        let mut first_choice_counts = std::collections::HashMap::new();
        for _ in 0..200 {
            let p = l.select_proxy(&mut rng).unwrap().label.clone();
            *first_choice_counts.entry(p).or_insert(0usize) += 1;
        }
        // friend-canada sorts before friend-us-west at distance 1; with
        // 90% availability it should win most rounds even though the
        // Netherlands proxy is geographically closest to the vantage.
        let canada = first_choice_counts
            .get("friend-canada")
            .copied()
            .unwrap_or(0);
        let nl = first_choice_counts
            .get("distant-netherlands")
            .copied()
            .unwrap_or(0);
        assert!(canada > 150, "canada {canada}");
        assert!(nl < 10, "nl {nl}");
    }

    #[test]
    fn lantern_slower_than_direct_faster_than_it_would_be_via_many_hops() {
        let (w, ctx) = setup();
        let mut rng = DetRng::new(2);
        let url = Url::parse("http://porn-site.example/").unwrap();
        let d = Direct.fetch(&w, &ctx, &url, &mut rng);
        let mut l = LanternClient::new();
        let r = l.fetch(&w, &ctx, &url, &mut rng);
        assert!(r.outcome.is_genuine_page());
        // The Fig. 1c shape: ~1.5x or worse vs the direct-style fetch.
        assert!(
            r.elapsed.as_micros() as f64 >= d.elapsed.as_micros() as f64 * 1.3,
            "lantern {} vs direct {}",
            r.elapsed,
            d.elapsed
        );
        assert!(l.last_proxy.is_some());
    }

    #[test]
    fn all_proxies_down_is_unavailable() {
        let proxies = vec![LanternProxy {
            label: "dead".into(),
            site: Site::in_region(Region::UsWest),
            trust_distance: 1,
            availability: 0.0,
        }];
        let mut l = LanternClient::with_proxies(proxies);
        let (w, ctx) = setup();
        let mut rng = DetRng::new(3);
        let url = Url::parse("http://porn-site.example/").unwrap();
        let r = l.fetch(&w, &ctx, &url, &mut rng);
        assert_eq!(
            r.outcome.failure(),
            Some(crate::outcome::FailureKind::TransportUnavailable)
        );
    }

    #[test]
    fn not_anonymous() {
        assert!(!LanternClient::new().anonymous());
    }
}
