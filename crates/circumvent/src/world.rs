//! The simulated internet, from one client network's point of view.
//!
//! A [`World`] owns the origin servers (with their pages, addresses and
//! geography), the DNS truth, the per-AS censor policies, and the client's
//! access network. It exposes the *primitive protocol operations* a client
//! can perform — DNS lookup, TCP connect, TLS handshake, HTTP exchange —
//! each applying the relevant censor stage exactly where a real middlebox
//! would sit. C-Saw's measurement module (Fig. 4 of the paper) drives
//! these primitives directly; circumvention transports compose them.
//!
//! Timing constants are calibrated against Table 5 of the paper; see
//! [`DnsTiming`] and `csaw_simnet::tcp::TcpConfig`.

use crate::outcome::FailureKind;
use csaw_censor::blocking::{Category, DnsTamper, HttpAction, IpAction, TlsAction, UdpAction};
use csaw_censor::policy::CensorPolicy;
use csaw_simnet::link::{Link, Path};
use csaw_simnet::rng::DetRng;
use csaw_simnet::tcp::{self, ConnectOutcome, TcpConfig};
use csaw_simnet::time::SimDuration;
use csaw_simnet::topology::{AccessNetwork, Asn, Provider, Region, Site};
use csaw_webproto::dns::{DnsObservation, DnsResponse, Rcode};
use csaw_webproto::page::WebPage;
use csaw_webproto::url::Url;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// DNS timing knobs, calibrated to Table 5:
/// REFUSED surfaces in one resolver RTT (25 ms), SERVFAIL only after the
/// resolver's upstream retry ladder (10.6 s), and a black-holed query
/// stalls the stub for its full retry budget.
#[derive(Debug, Clone, Copy)]
pub struct DnsTiming {
    /// Round trip to the ISP's local resolver.
    pub local_rtt: SimDuration,
    /// Round trip to a public/global resolver (farther away).
    pub public_rtt: SimDuration,
    /// Delay before a SERVFAIL surfaces (resolver retries upstream first).
    pub servfail_delay: SimDuration,
    /// Total time the stub waits on a black-holed query before giving up.
    pub blackhole_total: SimDuration,
}

impl Default for DnsTiming {
    fn default() -> Self {
        DnsTiming {
            local_rtt: SimDuration::from_millis(25),
            public_rtt: SimDuration::from_millis(60),
            servfail_delay: SimDuration::from_millis(10_600),
            blackhole_total: SimDuration::from_secs(8),
        }
    }
}

/// Which resolver a lookup goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsServer {
    /// The ISP's resolver — subject to the censor's DNS stage.
    IspLocal,
    /// A public resolver (the paper's "Global DNS" / GDNS in Fig. 4) —
    /// bypasses resolver-side tampering. (On-path injection against
    /// public resolvers exists in the wild; it is modelled by the
    /// [`CensorPolicy`] only when a deployment opts in via
    /// [`World::set_public_dns_intercepted`].)
    Public,
    /// A public resolver with **Hold-On** (Duan et al., cited in §2.2):
    /// instead of accepting the first answer, the stub keeps listening
    /// for a hold window. An on-path injector's forged answer arrives
    /// *early* (it is closer than the real resolver); the genuine answer
    /// lands at the resolver's true RTT and wins. Defeats injection at
    /// the cost of the hold window; useless against query *dropping*.
    PublicHoldOn,
}

/// An origin server in the world.
#[derive(Debug, Clone)]
pub struct SiteEntry {
    /// Hostname (lowercase).
    pub host: String,
    /// True address.
    pub ip: Ipv4Addr,
    /// Geography.
    pub location: Site,
    /// Content category (what censor category-rules match on).
    pub category: Option<Category>,
    /// Does the origin serve HTTPS? (HTTPS local-fix requires it.)
    pub https: bool,
    /// Is the origin reachable through a fronting-capable CDN?
    pub frontable: bool,
    /// Does the origin answer requests addressed by literal IP
    /// (`Host: <ip>`)? Required for the "IP as hostname" fix.
    pub serves_by_ip: bool,
    /// Explicit pages by path; other paths are synthesized on demand.
    pub pages: HashMap<String, WebPage>,
    /// Size used when synthesizing a page for an unlisted path.
    pub default_page_bytes: u64,
    /// Resource count for synthesized pages.
    pub default_resources: usize,
    /// UDP application port, if this site also runs a non-web service
    /// (messaging/voice — the §8 extension).
    pub udp_port: Option<u16>,
}

impl SiteEntry {
    /// The page served for `url` (explicit, or synthesized from the site
    /// defaults — deterministic per path).
    pub fn page_for(&self, url: &Url) -> WebPage {
        if let Some(p) = self.pages.get(url.path()) {
            return p.clone();
        }
        WebPage::synthetic(url.clone(), self.default_page_bytes, self.default_resources)
    }
}

/// The result of a TLS handshake attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsStep {
    /// Handshake completed.
    Established,
    /// ClientHello (or ServerHello) never got through.
    Timeout,
    /// Reset on SNI match.
    Reset,
}

/// The result of probing a UDP application service (§8 non-web
/// filtering): a round-trip reply, a throttled (unusably slow) reply, or
/// silence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpStep {
    /// The service answered normally.
    Reply {
        /// Application round-trip time.
        rtt: SimDuration,
    },
    /// Datagrams trickle through, but the session is unusable.
    Throttled {
        /// Effective (inflated) round-trip time.
        rtt: SimDuration,
    },
    /// Nothing came back before the app gave up.
    Timeout,
    /// The host runs no UDP service.
    NoService,
}

/// The result of a single HTTP request/response on an established
/// connection.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpStep {
    /// A document came back.
    Response {
        /// Bytes of the returned document.
        bytes: u64,
        /// Its markup (block pages carry the censor's page; genuine
        /// documents carry synthesized site markup).
        html: String,
        /// Ground truth: was this the censor's block page?
        truth_block_page: bool,
        /// Did the response arrive via an HTTP redirect bounce? (A real
        /// client observes the 302; censors use it to reach block-page
        /// servers.)
        redirected: bool,
    },
    /// Nothing came back before the GET timeout.
    Timeout,
    /// Connection reset after the request.
    Reset,
}

/// The simulated internet.
#[derive(Debug, Clone)]
pub struct World {
    sites: HashMap<String, SiteEntry>,
    ip_index: HashMap<Ipv4Addr, String>,
    censors: HashMap<Asn, CensorPolicy>,
    block_pages: HashMap<Asn, String>,
    /// The client's attachment.
    pub access: AccessNetwork,
    /// Where the client lives.
    pub client_region: Region,
    /// TCP timing model.
    pub tcp: TcpConfig,
    /// DNS timing model.
    pub dns: DnsTiming,
    /// How long a stalled TLS handshake takes to give up.
    pub tls_timeout: SimDuration,
    /// Think time of ISP block-page servers (they are usually overloaded
    /// filter boxes; contributes to Table 5's 1.8 s block-page figure).
    pub block_page_server_delay: SimDuration,
    /// ASes whose censor also tampers with queries to *public* resolvers.
    public_dns_intercepted: bool,
}

impl World {
    /// Start building a world around the given access network.
    pub fn builder(access: AccessNetwork) -> WorldBuilder {
        WorldBuilder {
            world: World {
                sites: HashMap::new(),
                ip_index: HashMap::new(),
                censors: HashMap::new(),
                block_pages: HashMap::new(),
                access,
                client_region: Region::Pakistan,
                tcp: TcpConfig::default(),
                dns: DnsTiming::default(),
                tls_timeout: SimDuration::from_secs(21),
                block_page_server_delay: SimDuration::from_millis(800),
                public_dns_intercepted: false,
            },
            next_ip: 1,
        }
    }

    /// Look up a site by hostname.
    pub fn site(&self, host: &str) -> Option<&SiteEntry> {
        self.sites.get(&host.to_ascii_lowercase())
    }

    /// Look up a site by address.
    pub fn site_by_ip(&self, ip: Ipv4Addr) -> Option<&SiteEntry> {
        self.ip_index.get(&ip).and_then(|h| self.sites.get(h))
    }

    /// The true address of a hostname (what an untampered resolver says).
    pub fn resolve_true(&self, host: &str) -> Option<Ipv4Addr> {
        self.site(host).map(|s| s.ip)
    }

    /// The censor policy of a provider's AS, if it censors.
    pub fn censor(&self, asn: Asn) -> Option<&CensorPolicy> {
        self.censors.get(&asn)
    }

    /// Block-page markup served by an AS's censor.
    pub fn block_page_html(&self, asn: Asn) -> &str {
        self.block_pages
            .get(&asn)
            .map(String::as_str)
            .unwrap_or("<html><body><h1>Access Denied</h1><p>blocked</p></body></html>")
    }

    /// All hostnames in the world (used by tests and workload builders).
    pub fn hosts(&self) -> impl Iterator<Item = &str> {
        self.sites.keys().map(String::as_str)
    }

    /// Opt in to on-path interception of public-resolver queries.
    pub fn set_public_dns_intercepted(&mut self, yes: bool) {
        self.public_dns_intercepted = yes;
    }

    /// Replace/insert a censor policy at runtime (used by the §7.5
    /// "in the wild" experiment, where blocking switched on mid-run).
    pub fn install_censor(&mut self, asn: Asn, mut policy: CensorPolicy) {
        let hosts: Vec<(String, Option<Category>)> = self
            .sites
            .values()
            .map(|s| (s.host.clone(), s.category))
            .collect();
        let resolve = |h: &str| self.sites.get(h).map(|s| s.ip);
        policy.materialize_ips(&hosts, resolve);
        self.block_pages.entry(asn).or_insert_with(|| {
            // Always a phase-1-catchable family.
            csaw_blockpage::corpus_47()[(asn.0 as usize) % 38]
                .html
                .clone()
        });
        self.censors.insert(asn, policy);
    }

    /// Remove a censor policy (unblocking events).
    pub fn remove_censor(&mut self, asn: Asn) {
        self.censors.remove(&asn);
    }

    /// The site category visible to a censor for `name` (censors classify
    /// by destination, which we model as the site's own category tag).
    fn category_of(&self, name: &str) -> Option<Category> {
        self.site(name).and_then(|s| s.category)
    }

    // --- primitive protocol operations ---------------------------------

    /// DNS lookup for `qname` through the given resolver, via `provider`.
    ///
    /// Returns what the client observes and how long it took.
    pub fn dns_lookup(
        &self,
        provider: &Provider,
        qname: &str,
        server: DnsServer,
        rng: &mut DetRng,
    ) -> (DnsObservation, SimDuration) {
        let (rtt, tampered) = match server {
            DnsServer::IspLocal => (self.dns.local_rtt, true),
            DnsServer::Public => (self.dns.public_rtt, self.public_dns_intercepted),
            // Hold-On survives *injection*: the forged early answer is
            // discarded and the genuine one (at true resolver RTT) is
            // kept. Query dropping still wins against it, so that tamper
            // stays effective below.
            DnsServer::PublicHoldOn => (self.dns.public_rtt, self.public_dns_intercepted),
        };
        let jittered = |rng: &mut DetRng, base: SimDuration| {
            base + SimDuration::from_micros(rng.range_u64(0, base.as_micros().max(2) / 4))
        };
        if tampered {
            if let Some(policy) = self.censors.get(&provider.asn) {
                let tamper = policy.on_dns_query(qname, self.category_of(qname), rng);
                // Hold-On filters forged *responses*; it cannot conjure a
                // response the censor swallowed.
                let injected_response = !matches!(tamper, DnsTamper::None | DnsTamper::Drop);
                if server == DnsServer::PublicHoldOn && injected_response {
                    // Wait out the hold window, then accept the genuine
                    // answer that arrived at the resolver's honest RTT.
                    let hold = rtt * 2;
                    return match self.resolve_true(qname) {
                        Some(ip) => (
                            DnsObservation::Response(DnsResponse::answer(ip)),
                            rtt + hold,
                        ),
                        None => (
                            DnsObservation::Response(DnsResponse::error(Rcode::NxDomain)),
                            rtt + hold,
                        ),
                    };
                }
                match tamper {
                    DnsTamper::None => {}
                    DnsTamper::Drop => {
                        return (DnsObservation::NoResponse, self.dns.blackhole_total);
                    }
                    DnsTamper::HijackTo(ip) => {
                        return (
                            DnsObservation::Response(DnsResponse::answer(ip)),
                            jittered(rng, rtt),
                        );
                    }
                    DnsTamper::Nxdomain => {
                        return (
                            DnsObservation::Response(DnsResponse::error(Rcode::NxDomain)),
                            jittered(rng, rtt),
                        );
                    }
                    DnsTamper::Servfail => {
                        return (
                            DnsObservation::Response(DnsResponse::error(Rcode::ServFail)),
                            self.dns.servfail_delay
                                + SimDuration::from_micros(rng.range_u64(0, 400_000)),
                        );
                    }
                    DnsTamper::Refused => {
                        return (
                            DnsObservation::Response(DnsResponse::error(Rcode::Refused)),
                            jittered(rng, rtt),
                        );
                    }
                }
            }
        }
        match self.resolve_true(qname) {
            Some(ip) => (
                DnsObservation::Response(DnsResponse::answer(ip)),
                jittered(rng, rtt),
            ),
            None => (
                DnsObservation::Response(DnsResponse::error(Rcode::NxDomain)),
                jittered(rng, rtt),
            ),
        }
    }

    /// Network path from the client, through `provider`, to a site.
    pub fn path_to_site(&self, provider: &Provider, site: Site) -> Path {
        self.access.path_to(provider, self.client_region, site)
    }

    /// Network path from the client to the site hosting `ip` (falls back
    /// to an in-country path for unknown/sinkhole addresses).
    pub fn path_to_ip(&self, provider: &Provider, ip: Ipv4Addr) -> Path {
        let site = self
            .site_by_ip(ip)
            .map(|s| s.location)
            .unwrap_or_else(|| Site::in_region(self.client_region));
        self.path_to_site(provider, site)
    }

    /// TCP connect to `dst` via `provider`, with the censor's IP stage
    /// applied. Unknown addresses (DNS sinkholes, forged answers) behave
    /// as black holes.
    pub fn tcp_connect(
        &self,
        provider: &Provider,
        dst: Ipv4Addr,
        rng: &mut DetRng,
    ) -> (ConnectOutcome, SimDuration) {
        if let Some(policy) = self.censors.get(&provider.asn) {
            match policy.on_tcp_connect(dst, rng) {
                IpAction::None => {}
                IpAction::Drop => {
                    let o = tcp::connect_blackholed(&self.tcp);
                    return (o, o.elapsed());
                }
                IpAction::Rst => {
                    let path = self.path_to_ip(provider, dst);
                    let o = tcp::connect_reset(&path, rng);
                    return (o, o.elapsed());
                }
            }
        }
        if self.site_by_ip(dst).is_none() {
            // Sinkhole or bogus address: nothing answers.
            let o = tcp::connect_blackholed(&self.tcp);
            return (o, o.elapsed());
        }
        let path = self.path_to_ip(provider, dst);
        let o = tcp::connect(&path, &self.tcp, rng);
        (o, o.elapsed())
    }

    /// TLS handshake on an established connection to `dst`, presenting
    /// `sni`. The censor's TLS stage sees exactly the SNI.
    pub fn tls_handshake(
        &self,
        provider: &Provider,
        dst: Ipv4Addr,
        sni: Option<&str>,
        rng: &mut DetRng,
    ) -> (TlsStep, SimDuration) {
        if let Some(policy) = self.censors.get(&provider.asn) {
            let cat = sni.and_then(|s| self.category_of(s));
            match policy.on_tls_hello(sni, cat, rng) {
                TlsAction::None => {}
                TlsAction::Drop => return (TlsStep::Timeout, self.tls_timeout),
                TlsAction::Rst => {
                    let path = self.path_to_ip(provider, dst);
                    return (TlsStep::Reset, path.sample_rtt(rng));
                }
            }
        }
        // Two round trips of handshake (TLS 1.2-era, matching the paper's
        // timeframe).
        let path = self.path_to_ip(provider, dst);
        let t = path.sample_rtt(rng) + path.sample_rtt(rng);
        (TlsStep::Established, t)
    }

    /// One HTTP request/response on an established connection to `dst`.
    ///
    /// `via_tls` controls whether the censor's HTTP stage can see the
    /// request (it cannot see inside TLS). `fronted_backend` carries the
    /// encrypted Host header when domain fronting: the *front* terminates
    /// TLS and relays to the named backend.
    ///
    /// `response_override` forces the size of the returned document (used
    /// by the browser model to fetch individual page resources).
    #[allow(clippy::too_many_arguments)] // mirrors the wire-level request surface
    pub fn http_exchange(
        &self,
        provider: &Provider,
        dst: Ipv4Addr,
        url: &Url,
        via_tls: bool,
        fronted_backend: Option<&str>,
        response_override: Option<u64>,
        rng: &mut DetRng,
    ) -> (HttpStep, SimDuration) {
        // Censor HTTP stage: plaintext only.
        if !via_tls {
            if let Some(policy) = self.censors.get(&provider.asn) {
                let cat = url
                    .dns_name()
                    .and_then(|h| self.category_of(h))
                    .or_else(|| self.site_by_ip(dst).and_then(|s| s.category));
                match policy.on_http_request(url, cat, rng) {
                    HttpAction::None => {}
                    HttpAction::Drop => {
                        return (HttpStep::Timeout, self.tcp.http_timeout);
                    }
                    HttpAction::Rst => {
                        let path = self.path_to_ip(provider, dst);
                        return (HttpStep::Reset, path.sample_rtt(rng));
                    }
                    HttpAction::BlockPageRedirect => {
                        return self.serve_block_page(provider, dst, true, rng);
                    }
                    HttpAction::BlockPageInline => {
                        return self.serve_block_page(provider, dst, false, rng);
                    }
                }
            }
        }
        // Identify the serving site: fronted requests resolve the backend
        // name; otherwise the connected address identifies the origin.
        let site = match fronted_backend {
            Some(backend) => self.site(backend),
            None => self.site_by_ip(dst),
        };
        let Some(site) = site else {
            return (HttpStep::Timeout, self.tcp.http_timeout);
        };
        // "IP as hostname" requires origin cooperation.
        if url.host().is_ip() && fronted_backend.is_none() && !site.serves_by_ip {
            return (
                HttpStep::Response {
                    bytes: 512,
                    html: "<html><body><h1>400 Bad Request</h1></body></html>".into(),
                    truth_block_page: false,
                    redirected: false,
                },
                self.path_to_ip(provider, dst).sample_rtt(rng),
            );
        }
        let page = site.page_for(url);
        let bytes = response_override.unwrap_or(page.html_bytes);
        let mut path = self.path_to_ip(provider, dst);
        if let Some(backend) = fronted_backend {
            // Front relays to the backend origin over the CDN backbone.
            if let Some(b) = self.site(backend) {
                let extra = Link::wan(SimDuration::from_millis(
                    site.location
                        .region
                        .one_way_ms_to(b.location.region)
                        .min(30),
                ));
                path = path.join(&Path::single(extra));
            }
        }
        let (step, elapsed) = match tcp::exchange(&path, bytes, &self.tcp, rng) {
            tcp::ExchangeOutcome::Done { elapsed } => (
                HttpStep::Response {
                    bytes,
                    html: if response_override.is_none() {
                        csaw_webproto::synth_html(&site.host, bytes.min(64_000) as usize)
                    } else {
                        String::new()
                    },
                    truth_block_page: false,
                    redirected: false,
                },
                elapsed,
            ),
            tcp::ExchangeOutcome::GetTimeout { elapsed } => (HttpStep::Timeout, elapsed),
            tcp::ExchangeOutcome::ResetMidFlight { elapsed } => (HttpStep::Reset, elapsed),
        };
        (step, elapsed)
    }

    /// Probe a UDP application service on the direct path (§8 non-web
    /// filtering). Apps ship their endpoints, so no DNS round is modelled;
    /// the censor's UDP stage classifies the flow by service endpoint.
    pub fn udp_exchange(
        &self,
        provider: &Provider,
        service_host: &str,
        rng: &mut DetRng,
    ) -> (UdpStep, SimDuration) {
        let Some(site) = self.site(service_host) else {
            return (UdpStep::NoService, SimDuration::ZERO);
        };
        if site.udp_port.is_none() {
            return (UdpStep::NoService, SimDuration::ZERO);
        }
        let path = self.path_to_site(provider, site.location);
        if let Some(policy) = self.censors.get(&provider.asn) {
            match policy.on_udp_flow(service_host, site.category, rng) {
                UdpAction::None => {}
                UdpAction::Drop => {
                    // App-level retry ladder: ~3 probes a second apart.
                    return (UdpStep::Timeout, SimDuration::from_secs(3));
                }
                UdpAction::Throttle => {
                    let rtt = path.sample_rtt(rng).mul_f64(8.0)
                        + SimDuration::from_millis(rng.range_u64(500, 2_000));
                    return (UdpStep::Throttled { rtt }, rtt);
                }
            }
        }
        let rtt = path.sample_rtt(rng);
        (UdpStep::Reply { rtt }, rtt)
    }

    /// Probe the same UDP service through a relay tunnel (VPN/proxy —
    /// how messaging apps are circumvented in practice). The censor sees
    /// only the first hop.
    pub fn udp_exchange_via(
        &self,
        provider: &Provider,
        relay: csaw_simnet::topology::Site,
        service_host: &str,
        rng: &mut DetRng,
    ) -> (UdpStep, SimDuration) {
        let Some(site) = self.site(service_host) else {
            return (UdpStep::NoService, SimDuration::ZERO);
        };
        if site.udp_port.is_none() {
            return (UdpStep::NoService, SimDuration::ZERO);
        }
        let to_relay = self.path_to_site(provider, relay);
        let leg_ms = relay.region.one_way_ms_to(site.location.region);
        let leg = Path::single(Link::wan(
            SimDuration::from_millis(leg_ms) + site.location.extra_one_way,
        ));
        let full = to_relay.join(&leg);
        let rtt = full.sample_rtt(rng) + SimDuration::from_millis(30); // tunnel overhead
        (UdpStep::Reply { rtt }, rtt)
    }

    /// Deliver the censor's block page, optionally via a 302 redirect
    /// bounce to the ISP's block-page server.
    fn serve_block_page(
        &self,
        provider: &Provider,
        dst: Ipv4Addr,
        via_redirect: bool,
        rng: &mut DetRng,
    ) -> (HttpStep, SimDuration) {
        let html = self.block_page_html(provider.asn).to_string();
        let bytes = html.len() as u64;
        // The injected response (302 or inline page) arrives on the
        // original connection in about one path RTT.
        let orig_path = self.path_to_ip(provider, dst);
        let mut elapsed = orig_path.sample_rtt(rng);
        if via_redirect {
            // Follow the redirect: resolve + connect + fetch from the
            // in-ISP block-page server, which adds its think time.
            let bp_path = self.access.path_to(
                provider,
                self.client_region,
                Site::in_region(self.client_region),
            );
            elapsed += self.dns.local_rtt;
            elapsed += bp_path.sample_rtt(rng); // connect
            elapsed += self.block_page_server_delay;
            match tcp::exchange(&bp_path, bytes, &self.tcp, rng) {
                tcp::ExchangeOutcome::Done { elapsed: e } => elapsed += e,
                tcp::ExchangeOutcome::GetTimeout { elapsed: e }
                | tcp::ExchangeOutcome::ResetMidFlight { elapsed: e } => elapsed += e,
            }
        } else {
            elapsed += self.block_page_server_delay / 4;
        }
        (
            HttpStep::Response {
                bytes,
                html,
                truth_block_page: true,
                redirected: via_redirect,
            },
            elapsed,
        )
    }
}

/// Incremental construction of a [`World`].
#[derive(Debug)]
pub struct WorldBuilder {
    world: World,
    next_ip: u32,
}

impl WorldBuilder {
    /// Set the client's region (default: the paper's vantage point).
    pub fn client_region(mut self, r: Region) -> Self {
        self.world.client_region = r;
        self
    }

    /// Override TCP timing.
    pub fn tcp(mut self, cfg: TcpConfig) -> Self {
        self.world.tcp = cfg;
        self
    }

    /// Override DNS timing.
    pub fn dns(mut self, cfg: DnsTiming) -> Self {
        self.world.dns = cfg;
        self
    }

    /// Add a site; address assignment is deterministic in insertion order.
    pub fn site(mut self, spec: SiteSpec) -> Self {
        let ip = Ipv4Addr::new(
            203,
            0,
            (113 + self.next_ip / 250) as u8,
            (self.next_ip % 250 + 1) as u8,
        );
        self.next_ip += 1;
        let host = spec.host.to_ascii_lowercase();
        let entry = SiteEntry {
            host: host.clone(),
            ip,
            location: spec.location,
            category: spec.category,
            https: spec.https,
            frontable: spec.frontable,
            serves_by_ip: spec.serves_by_ip,
            pages: spec.pages,
            default_page_bytes: spec.default_page_bytes,
            default_resources: spec.default_resources,
            udp_port: spec.udp_port,
        };
        self.world.ip_index.insert(ip, host.clone());
        self.world.sites.insert(host, entry);
        self
    }

    /// Install a censor for an AS (IP blacklists are compiled at build).
    pub fn censor(mut self, asn: Asn, policy: CensorPolicy) -> Self {
        self.world.censors.insert(asn, policy);
        self
    }

    /// Use specific block-page markup for an AS.
    pub fn block_page(mut self, asn: Asn, html: String) -> Self {
        self.world.block_pages.insert(asn, html);
        self
    }

    /// Finish: compile censor IP blacklists and default block pages.
    pub fn build(mut self) -> World {
        let hosts: Vec<(String, Option<Category>)> = self
            .world
            .sites
            .values()
            .map(|s| (s.host.clone(), s.category))
            .collect();
        let site_ips: HashMap<String, Ipv4Addr> = self
            .world
            .sites
            .values()
            .map(|s| (s.host.clone(), s.ip))
            .collect();
        let corpus = csaw_blockpage::corpus_47();
        let asns: Vec<Asn> = self.world.censors.keys().copied().collect();
        for asn in asns {
            if let Some(policy) = self.world.censors.get_mut(&asn) {
                policy.materialize_ips(&hosts, |h| site_ips.get(h).copied());
            }
            self.world
                .block_pages
                .entry(asn)
                .or_insert_with(|| corpus[(asn.0 as usize) % 38].html.clone());
        }
        self.world
    }
}

/// Declarative description of a site for [`WorldBuilder::site`].
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Hostname.
    pub host: String,
    /// Geography.
    pub location: Site,
    /// Content category.
    pub category: Option<Category>,
    /// HTTPS support.
    pub https: bool,
    /// Reachable through a fronting-capable CDN.
    pub frontable: bool,
    /// Answers when addressed by literal IP.
    pub serves_by_ip: bool,
    /// Explicit pages by path.
    pub pages: HashMap<String, WebPage>,
    /// Default synthesized page size.
    pub default_page_bytes: u64,
    /// Default synthesized resource count.
    pub default_resources: usize,
    /// UDP application port (non-web service), if any.
    pub udp_port: Option<u16>,
}

impl SiteSpec {
    /// A site with sensible defaults: HTTPS-capable, not frontable, does
    /// not serve by IP, 100 KB pages with 8 resources.
    pub fn new(host: &str, location: Site) -> SiteSpec {
        SiteSpec {
            host: host.to_string(),
            location,
            category: None,
            https: true,
            frontable: false,
            serves_by_ip: false,
            pages: HashMap::new(),
            default_page_bytes: 100_000,
            default_resources: 8,
            udp_port: None,
        }
    }

    /// Builder: category tag.
    pub fn category(mut self, c: Category) -> Self {
        self.category = Some(c);
        self
    }

    /// Builder: HTTPS support.
    pub fn https(mut self, yes: bool) -> Self {
        self.https = yes;
        self
    }

    /// Builder: fronting support.
    pub fn frontable(mut self, yes: bool) -> Self {
        self.frontable = yes;
        self
    }

    /// Builder: serves by literal IP.
    pub fn serves_by_ip(mut self, yes: bool) -> Self {
        self.serves_by_ip = yes;
        self
    }

    /// Builder: default page size/resource count.
    pub fn default_page(mut self, bytes: u64, resources: usize) -> Self {
        self.default_page_bytes = bytes;
        self.default_resources = resources;
        self
    }

    /// Builder: add an explicit page at its URL's path.
    pub fn page(mut self, page: WebPage) -> Self {
        self.pages.insert(page.url.path().to_string(), page);
        self
    }

    /// Builder: the site also runs a UDP application service.
    pub fn udp_service(mut self, port: u16) -> Self {
        self.udp_port = Some(port);
        self
    }
}

/// Map a failed protocol step to the failure the client reports.
pub fn connect_failure(outcome: ConnectOutcome) -> Option<FailureKind> {
    match outcome {
        ConnectOutcome::Established { .. } => None,
        ConnectOutcome::Timeout { .. } => Some(FailureKind::ConnectTimeout),
        ConnectOutcome::Reset { .. } => Some(FailureKind::ConnectReset),
    }
}

/// Map a DNS observation to a failure, if it is one. A forged resolution
/// is *not* a failure at this layer — the client only discovers it later.
pub fn dns_failure(obs: &DnsObservation) -> Option<FailureKind> {
    match obs {
        DnsObservation::NoResponse => Some(FailureKind::DnsNoResponse),
        DnsObservation::Response(r) => match r.rcode {
            Rcode::NoError => None,
            Rcode::NxDomain => Some(FailureKind::DnsNxdomain),
            Rcode::ServFail => Some(FailureKind::DnsServfail),
            Rcode::Refused => Some(FailureKind::DnsRefused),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::profiles;
    use csaw_simnet::topology::Provider;

    fn test_world(policy: CensorPolicy, asn: Asn) -> (World, Provider) {
        let provider = Provider::new(asn, "test-isp");
        let access = AccessNetwork::single(provider.clone());
        let w = World::builder(access)
            .site(
                SiteSpec::new("www.youtube.com", Site::at_vantage_rtt(Region::UsEast, 186))
                    .category(Category::Video)
                    .frontable(true)
                    .default_page(360_000, 20),
            )
            .site(SiteSpec::new(
                "example.com",
                Site::in_region(Region::UsEast),
            ))
            .censor(asn, policy)
            .build();
        (w, provider)
    }

    #[test]
    fn clean_dns_resolves_truthfully() {
        let (w, p) = test_world(profiles::clean(), Asn(100));
        let mut rng = DetRng::new(1);
        let (obs, t) = w.dns_lookup(&p, "example.com", DnsServer::IspLocal, &mut rng);
        assert_eq!(obs.resolved_addr(), w.resolve_true("example.com"));
        assert!(t >= w.dns.local_rtt && t < w.dns.local_rtt * 2);
    }

    #[test]
    fn isp_b_hijacks_youtube_dns_but_public_is_clean() {
        let (w, p) = test_world(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(2);
        let mut hijacks = 0;
        for _ in 0..200 {
            let (obs, _) = w.dns_lookup(&p, "www.youtube.com", DnsServer::IspLocal, &mut rng);
            if obs.resolved_addr() == Some(profiles::isp_b_dns_sinkhole()) {
                hijacks += 1;
            }
        }
        assert!(hijacks > 120, "hijacks {hijacks}"); // dns_p = 0.8
                                                     // Public DNS bypasses resolver tampering.
        let (obs, _) = w.dns_lookup(&p, "www.youtube.com", DnsServer::Public, &mut rng);
        assert_eq!(obs.resolved_addr(), w.resolve_true("www.youtube.com"));
    }

    #[test]
    fn sinkhole_connect_blackholes_for_full_ladder() {
        let (w, p) = test_world(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(3);
        let (o, t) = w.tcp_connect(&p, profiles::isp_b_dns_sinkhole(), &mut rng);
        assert!(!o.is_established());
        assert_eq!(t, SimDuration::from_secs(21));
    }

    #[test]
    fn servfail_takes_ten_seconds() {
        let pol = profiles::single_mechanism(
            "t",
            "www.youtube.com",
            DnsTamper::Servfail,
            IpAction::None,
            HttpAction::None,
            TlsAction::None,
        );
        let (w, p) = test_world(pol, Asn(5));
        let mut rng = DetRng::new(4);
        let (obs, t) = w.dns_lookup(&p, "www.youtube.com", DnsServer::IspLocal, &mut rng);
        assert_eq!(dns_failure(&obs), Some(FailureKind::DnsServfail));
        assert!(t >= SimDuration::from_millis(10_600) && t <= SimDuration::from_millis(11_100));
    }

    #[test]
    fn refused_is_fast() {
        let pol = profiles::single_mechanism(
            "t",
            "www.youtube.com",
            DnsTamper::Refused,
            IpAction::None,
            HttpAction::None,
            TlsAction::None,
        );
        let (w, p) = test_world(pol, Asn(5));
        let mut rng = DetRng::new(5);
        let (obs, t) = w.dns_lookup(&p, "www.youtube.com", DnsServer::IspLocal, &mut rng);
        assert_eq!(dns_failure(&obs), Some(FailureKind::DnsRefused));
        assert!(t < SimDuration::from_millis(50), "{t}");
    }

    #[test]
    fn http_drop_burns_get_timeout() {
        let (w, p) = test_world(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(6);
        let ip = w.resolve_true("www.youtube.com").unwrap();
        let url = Url::parse("http://www.youtube.com/").unwrap();
        let (step, t) = w.http_exchange(&p, ip, &url, false, None, None, &mut rng);
        assert_eq!(step, HttpStep::Timeout);
        assert_eq!(t, w.tcp.http_timeout);
    }

    #[test]
    fn tls_sees_only_sni() {
        let (w, p) = test_world(profiles::isp_b(), profiles::ISP_B_ASN);
        let mut rng = DetRng::new(7);
        let ip = w.resolve_true("www.youtube.com").unwrap();
        let (step, t) = w.tls_handshake(&p, ip, Some("www.youtube.com"), &mut rng);
        assert_eq!(step, TlsStep::Timeout);
        assert_eq!(t, w.tls_timeout);
        // Fronted SNI passes.
        let (step, _) = w.tls_handshake(&p, ip, Some("cdn-front.example"), &mut rng);
        assert_eq!(step, TlsStep::Established);
    }

    #[test]
    fn https_hides_http_stage_from_censor() {
        let (w, p) = test_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let mut rng = DetRng::new(8);
        let ip = w.resolve_true("www.youtube.com").unwrap();
        let url = Url::parse("https://www.youtube.com/").unwrap();
        // via_tls = true: the censor's HTTP stage can't see it.
        let (step, _) = w.http_exchange(&p, ip, &url, true, None, None, &mut rng);
        assert!(matches!(
            step,
            HttpStep::Response {
                truth_block_page: false,
                ..
            }
        ));
        // Plaintext gets the block page.
        let url_http = Url::parse("http://www.youtube.com/").unwrap();
        let (step, t) = w.http_exchange(&p, ip, &url_http, false, None, None, &mut rng);
        match step {
            HttpStep::Response {
                truth_block_page, ..
            } => assert!(truth_block_page),
            other => panic!("{other:?}"),
        }
        // Redirect bounce + server think time makes this slower than a
        // plain small fetch but far faster than a timeout.
        assert!(
            t > SimDuration::from_millis(800) && t < SimDuration::from_secs(5),
            "{t}"
        );
    }

    #[test]
    fn block_page_html_is_classifiable() {
        let (w, _) = test_world(profiles::isp_a(), profiles::ISP_A_ASN);
        let html = w.block_page_html(profiles::ISP_A_ASN);
        let verdict = csaw_blockpage::phase1_html(html, &csaw_blockpage::Phase1Config::default());
        assert_eq!(verdict, csaw_blockpage::Phase1Verdict::BlockPage);
    }

    #[test]
    fn install_censor_mid_run_compiles_ips() {
        let (mut w, p) = test_world(profiles::clean(), Asn(42));
        let mut rng = DetRng::new(9);
        let ip = w.resolve_true("example.com").unwrap();
        let (o, _) = w.tcp_connect(&p, ip, &mut rng);
        assert!(o.is_established());
        // Now block example.com at the IP layer.
        let pol = profiles::single_mechanism(
            "evt",
            "example.com",
            DnsTamper::None,
            IpAction::Drop,
            HttpAction::None,
            TlsAction::None,
        );
        w.install_censor(Asn(42), pol);
        let (o, t) = w.tcp_connect(&p, ip, &mut rng);
        assert!(!o.is_established());
        assert_eq!(t, SimDuration::from_secs(21));
    }

    #[test]
    fn unknown_name_is_honest_nxdomain() {
        let (w, p) = test_world(profiles::clean(), Asn(1));
        let mut rng = DetRng::new(10);
        let (obs, _) = w.dns_lookup(&p, "no-such-host.example", DnsServer::IspLocal, &mut rng);
        assert_eq!(dns_failure(&obs), Some(FailureKind::DnsNxdomain));
    }

    #[test]
    fn ip_as_hostname_requires_origin_support() {
        let access = AccessNetwork::single(Provider::new(Asn(9), "isp"));
        let w = World::builder(access)
            .site(SiteSpec::new("byip.example", Site::in_region(Region::UsEast)).serves_by_ip(true))
            .site(SiteSpec::new(
                "noip.example",
                Site::in_region(Region::UsEast),
            ))
            .build();
        let p = w.access.providers()[0].clone();
        let mut rng = DetRng::new(11);
        let ip_yes = w.resolve_true("byip.example").unwrap();
        let ip_no = w.resolve_true("noip.example").unwrap();
        let u_yes = Url::parse(&format!("http://{ip_yes}/")).unwrap();
        let u_no = Url::parse(&format!("http://{ip_no}/")).unwrap();
        let (s, _) = w.http_exchange(&p, ip_yes, &u_yes, false, None, None, &mut rng);
        assert!(
            matches!(s, HttpStep::Response { truth_block_page: false, bytes, .. } if bytes > 1000)
        );
        let (s, _) = w.http_exchange(&p, ip_no, &u_no, false, None, None, &mut rng);
        assert!(
            matches!(s, HttpStep::Response { bytes, .. } if bytes == 512),
            "origin without IP-hosting answers 400"
        );
    }
}
