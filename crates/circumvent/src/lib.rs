//! # csaw-circumvent — the simulated internet and every circumvention path
//!
//! This crate hosts the [`World`] — origin servers, DNS truth, per-AS
//! censor policies and the client's access network — and the transports
//! the paper evaluates against it:
//!
//! - direct-style: [`transports::Direct`], [`transports::PublicDns`],
//!   [`transports::HttpsUpgrade`], [`transports::DomainFronting`],
//!   [`transports::IpAsHostname`];
//! - relay-based: [`transports::StaticProxy`], [`transports::Vpn`],
//!   [`tor::TorClient`] (3-hop bandwidth-weighted circuits with 10-minute
//!   rotation), [`lantern::LanternClient`] (trust-graph proxy selection).
//!
//! The [`fetch`] module implements the browser page-load model (base
//! document + embedded resources over parallel lanes, cross-host CDN
//! resources paying their own censored connects), and [`outcome`] defines
//! the observation vocabulary C-Saw's detector consumes.

//!
//! ```
//! use csaw_circumvent::{Direct, FetchCtx, HttpsUpgrade, Transport};
//! use csaw_circumvent::world::{SiteSpec, World};
//! use csaw_simnet::prelude::*;
//!
//! let provider = Provider::new(Asn(45595), "ISP-A");
//! let world = World::builder(AccessNetwork::single(provider.clone()))
//!     .site(SiteSpec::new("www.youtube.com", Site::in_region(Region::UsEast)))
//!     .censor(Asn(45595), csaw_censor::isp_a())
//!     .build();
//! let ctx = FetchCtx { now: SimTime::ZERO, provider };
//! let url = "http://www.youtube.com/".parse().unwrap();
//! let mut rng = DetRng::new(1);
//!
//! // Direct path: the censor serves its block page.
//! let direct = Direct.fetch(&world, &ctx, &url, &mut rng);
//! assert!(direct.outcome.page().unwrap().truth_block_page);
//! // The HTTPS local fix sails through ISP-A's HTTP-only filter.
//! let fixed = HttpsUpgrade::default().fetch(&world, &ctx, &url, &mut rng);
//! assert!(fixed.outcome.is_genuine_page());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fetch;
pub mod lantern;
pub mod outcome;
pub mod tor;
pub mod transports;
pub mod world;

pub use fetch::{
    direct_like_fetch, lanes_time, relay_fetch, DirectOpts, FetchReport, SniMode, Step,
    BROWSER_LANES,
};
pub use lantern::{default_trust_network, LanternClient, LanternProxy};
pub use outcome::{FailureKind, Fetch, FetchOutcome, PageResult};
pub use tor::{default_directory, Circuit, Relay, TorClient, TorConfig};
pub use transports::{
    Direct, DomainFronting, FetchCtx, HoldOnDns, HttpsUpgrade, IpAsHostname, PublicDns,
    StaticProxy, Transport, TransportKind, Vpn,
};
pub use world::{
    DnsServer, DnsTiming, HttpStep, SiteEntry, SiteSpec, TlsStep, UdpStep, World, WorldBuilder,
};
