//! Property tests for the semilattice laws of [`StoreState::merge`],
//! over DetRng-generated store states: commutativity, associativity,
//! idempotence, and replay-vs-merge equivalence (applying a leader's
//! WAL to a replica yields exactly the state merging the leader's
//! capture would).

use csaw_censor::blocking::BlockingType;
use csaw_replica::StoreState;
use csaw_simnet::rng::DetRng;
use csaw_simnet::time::{SimDuration, SimTime};
use csaw_store::{Batch, Report, ShardedStore, StorageBackend, Uuid};
use std::sync::Arc;

const STAGES: [BlockingType; 4] = [
    BlockingType::DnsNoResponse,
    BlockingType::HttpDrop,
    BlockingType::IpRst,
    BlockingType::HttpBlockPageRedirect,
];

/// Build a store with a DetRng-driven history of ingests and the
/// occasional revocation, then capture its state. `label` forks the rng
/// so each generated state is independent but reproducible.
fn random_state(seed: u64, label: &str) -> StoreState {
    let mut rng = DetRng::new(seed).fork(label);
    let store = ShardedStore::new(1 + rng.index(8)).unwrap();
    let batches = 4 + rng.index(12);
    for b in 0..batches {
        let client = Uuid::from_raw(1 + rng.range_u64(1, 9));
        let n_reports = 1 + rng.index(4);
        let reports = (0..n_reports)
            .map(|_| Report {
                url: format!("http://u{}.example/", rng.index(10)),
                asn: 9 + rng.index(3) as u32,
                measured_at_us: rng.range_u64(1, 1_000_000),
                stages: vec![STAGES[rng.index(STAGES.len())]],
            })
            .collect();
        let posted = SimTime::from_micros(1_000_000 + 1_000 * b as u64);
        store
            .ingest(&Batch::new(client, reports, posted))
            .unwrap();
        if rng.chance(0.15) {
            store.revoke(Uuid::from_raw(1 + rng.range_u64(1, 9)));
        }
    }
    StoreState::capture(&store)
}

fn merged(a: &StoreState, b: &StoreState) -> StoreState {
    let mut m = a.clone();
    m.merge(b);
    m
}

#[test]
fn merge_is_commutative() {
    for seed in 1..=20u64 {
        let a = random_state(seed, "a");
        let b = random_state(seed, "b");
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        assert_eq!(ab, ba, "a∨b != b∨a at seed {seed}");
        assert_eq!(ab.fingerprint(), ba.fingerprint());
    }
}

#[test]
fn merge_is_associative() {
    for seed in 1..=20u64 {
        let a = random_state(seed, "a");
        let b = random_state(seed, "b");
        let c = random_state(seed, "c");
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        assert_eq!(left, right, "(a∨b)∨c != a∨(b∨c) at seed {seed}");
    }
}

#[test]
fn merge_is_idempotent() {
    for seed in 1..=20u64 {
        let a = random_state(seed, "a");
        assert_eq!(merged(&a, &a), a, "a∨a != a at seed {seed}");
        let b = random_state(seed, "b");
        let ab = merged(&a, &b);
        assert_eq!(merged(&ab, &b), ab, "(a∨b)∨b != a∨b at seed {seed}");
        assert_eq!(merged(&ab, &a), ab, "(a∨b)∨a != a∨b at seed {seed}");
    }
}

#[test]
fn empty_state_is_the_identity() {
    for seed in 1..=10u64 {
        let a = random_state(seed, "a");
        let empty = StoreState::default();
        assert_eq!(merged(&a, &empty), a);
        assert_eq!(merged(&empty, &a), a);
    }
}

/// WAL replay on a replica equals merging the leader's state: run a
/// DetRng-driven mutation history (ingests, revokes, expiries) through
/// a [`csaw_replica::ReplicatedStore`], replay its journal into a
/// replica with a different shard count, and compare captures — and
/// check that merging the leader's capture into an empty state gives
/// the same value.
#[test]
fn replay_equals_merge() {
    for seed in 1..=10u64 {
        let mut rng = DetRng::new(seed).fork("replay");
        let leader =
            csaw_replica::ReplicatedStore::new(Arc::new(ShardedStore::new(4).unwrap()));
        for b in 0..20u64 {
            let client = Uuid::from_raw(1 + rng.range_u64(1, 7));
            let reports = (0..1 + rng.index(3))
                .map(|_| Report {
                    url: format!("http://u{}.example/", rng.index(8)),
                    asn: 5,
                    measured_at_us: rng.range_u64(1, 500_000),
                    stages: vec![STAGES[rng.index(STAGES.len())]],
                })
                .collect();
            leader
                .ingest(&Batch::new(
                    client,
                    reports,
                    SimTime::from_micros(1_000_000 + 10_000 * b),
                ))
                .unwrap();
            if rng.chance(0.1) {
                leader.revoke(Uuid::from_raw(1 + rng.range_u64(1, 7)));
            }
            if rng.chance(0.05) {
                leader.expire_records(
                    SimTime::from_micros(2_000_000),
                    SimDuration::from_micros(1_900_000),
                );
            }
        }

        let replica = ShardedStore::new(11).unwrap();
        for line in leader.lines_from(0, usize::MAX) {
            csaw_store::wal::replay_line(&replica, &line).unwrap();
        }
        let leader_state = StoreState::capture(leader.inner());
        let replica_state = StoreState::capture(&replica);
        assert_eq!(
            leader_state, replica_state,
            "replayed replica diverged at seed {seed}"
        );

        let mut from_empty = StoreState::default();
        from_empty.merge(&leader_state);
        assert_eq!(from_empty, leader_state);
        assert_eq!(
            from_empty.fingerprint(),
            replica_state.fingerprint(),
            "fingerprints diverged at seed {seed}"
        );
    }
}
