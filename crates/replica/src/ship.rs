//! WAL shipping: stream a leader's mutation log to per-region read
//! replicas over the length-framed wire protocol.
//!
//! [`ReplicatedStore`] wraps any backend and records every mutation as
//! a [`csaw_store::wal`] line *before* applying it — the same
//! append-before-apply discipline `JsonlStore` uses on disk, except the
//! log lives in memory and feeds the shipper instead of a file.
//!
//! [`WalShipper`] holds one [`SHIP`](csaw_store::net::op::SHIP) link
//! per replica region. A shipping round walks each reachable link and
//! pushes chunks of `(from_seq, lines)` until the replica's
//! `SHIP_ACK` catches up to the leader's log head. The protocol is
//! idempotent and self-healing:
//!
//! - a replica that already applied a prefix of the shipment skips the
//!   overlap (re-shipping after a lost ack is harmless);
//! - an ack *below* `from_seq` signals a gap — the leader rewinds its
//!   notion of the replica's position and re-ships from there;
//! - any transport error drops the connection; the next round
//!   reconnects and resumes from the last acked position.
//!
//! Per-link **lag** (log lines shipped-but-unacked, `leader_seq −
//! acked_seq`) and **staleness** (virtual time since the link last
//! fully caught up) are exported as labelled timeline gauges
//! (`replica.lag{region=…}`, `replica.staleness_us{region=…}`) so the
//! SLO engine can gate on replication health.

use csaw_simnet::time::{SimDuration, SimTime};
use csaw_simnet::topology::Asn;
use csaw_store::ledger::{ConfidenceFilter, Tally, VoteLedger};
use csaw_store::net::{DbRequest, DbResponse};
use csaw_store::record::{GlobalRecord, Uuid};
use csaw_store::wal;
use csaw_store::{Batch, IngestReceipt, StorageBackend, StoreError};
use csaw_webproto::bytes::BytesMut;
use csaw_webproto::codec::{read_frame, write_frame};
use std::fmt;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How many WAL lines one `SHIP` frame carries at most.
const SHIP_CHUNK_LINES: usize = 256;

/// A leader-side backend wrapper that journals every mutation into an
/// in-memory WAL (append *before* apply) for [`WalShipper`] to stream.
pub struct ReplicatedStore {
    inner: Arc<dyn StorageBackend>,
    wal: Mutex<Vec<String>>,
}

impl fmt::Debug for ReplicatedStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicatedStore")
            .field("leader_seq", &self.leader_seq())
            .field("inner", &self.inner)
            .finish()
    }
}

impl ReplicatedStore {
    /// Wrap a backend; the log starts empty at sequence 0.
    pub fn new(inner: Arc<dyn StorageBackend>) -> ReplicatedStore {
        ReplicatedStore {
            inner,
            wal: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &dyn StorageBackend {
        &*self.inner
    }

    /// Total WAL lines written so far (the next line gets this seq).
    pub fn leader_seq(&self) -> u64 {
        self.wal.lock().expect("wal lock poisoned").len() as u64
    }

    /// Up to `max` log lines starting at `from_seq`, in log order.
    pub fn lines_from(&self, from_seq: u64, max: usize) -> Vec<String> {
        let wal = self.wal.lock().expect("wal lock poisoned");
        wal.iter()
            .skip(from_seq as usize)
            .take(max)
            .cloned()
            .collect()
    }

    fn journal(&self, line: String) {
        self.wal.lock().expect("wal lock poisoned").push(line);
        csaw_obs::inc("replica.wal.appends");
    }
}

impl StorageBackend for ReplicatedStore {
    fn ingest(&self, batch: &Batch) -> Result<IngestReceipt, StoreError> {
        self.journal(wal::ingest_line(batch));
        self.inner.ingest(batch)
    }

    fn blocked_for_as(
        &self,
        asn: Asn,
        filter: &ConfidenceFilter,
    ) -> Result<Vec<GlobalRecord>, StoreError> {
        self.inner.blocked_for_as(asn, filter)
    }

    fn tally(&self, url: &str, asn: Asn) -> Tally {
        self.inner.tally(url, asn)
    }

    fn revoke(&self, client: Uuid) {
        self.journal(wal::revoke_line(client));
        self.inner.revoke(client);
    }

    fn remove_reporter_records(&self, client: Uuid) -> usize {
        self.journal(wal::remove_reporter_line(client));
        self.inner.remove_reporter_records(client)
    }

    fn expire_records(&self, now: SimTime, max_age: SimDuration) -> usize {
        self.journal(wal::expire_line(now, max_age));
        self.inner.expire_records(now, max_age)
    }

    fn record_count(&self) -> usize {
        self.inner.record_count()
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&GlobalRecord)) {
        self.inner.for_each_record(f)
    }

    fn ledger(&self) -> &VoteLedger {
        self.inner.ledger()
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }
}

struct ReplicaLink {
    region: String,
    addr: SocketAddr,
    conn: Option<(TcpStream, BytesMut)>,
    acked_seq: u64,
    last_synced_at: SimTime,
}

/// One link's health after a shipping round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStatus {
    /// Region label of the link.
    pub region: String,
    /// Log lines the replica still lacks (`leader_seq − acked_seq`).
    pub lag: u64,
    /// Virtual µs since the replica last fully caught up (0 if it is
    /// caught up right now).
    pub staleness_us: u64,
    /// Whether this round ended with the replica fully caught up.
    pub synced: bool,
}

/// Streams a [`ReplicatedStore`]'s WAL to N per-region replicas.
pub struct WalShipper {
    source: Arc<ReplicatedStore>,
    links: Vec<ReplicaLink>,
    chunk: usize,
}

impl fmt::Debug for WalShipper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalShipper")
            .field("regions", &self.links.len())
            .field("leader_seq", &self.source.leader_seq())
            .finish()
    }
}

impl WalShipper {
    /// Ship from `source` to (initially) no replicas.
    pub fn new(source: Arc<ReplicatedStore>) -> WalShipper {
        WalShipper {
            source,
            links: Vec::new(),
            chunk: SHIP_CHUNK_LINES,
        }
    }

    /// Add a replica region served by a dbserver at `addr`. Link
    /// indices (for the `reachable` gate of [`WalShipper::ship_round`])
    /// follow insertion order.
    pub fn add_region(&mut self, region: &str, addr: SocketAddr, start: SimTime) {
        self.links.push(ReplicaLink {
            region: region.to_string(),
            addr,
            conn: None,
            acked_seq: 0,
            last_synced_at: start,
        });
    }

    /// Number of replica links.
    pub fn region_count(&self) -> usize {
        self.links.len()
    }

    /// Ship pending WAL lines to every replica whose link index passes
    /// `reachable` (a partition gate: unreachable links are skipped but
    /// their lag and staleness gauges still tick). Returns per-link
    /// statuses in insertion order.
    pub fn ship_round(
        &mut self,
        now: SimTime,
        mut reachable: impl FnMut(usize) -> bool,
    ) -> Vec<LinkStatus> {
        let target = self.source.leader_seq();
        let mut out = Vec::with_capacity(self.links.len());
        for i in 0..self.links.len() {
            if reachable(i) {
                self.pump_link(i, target);
            } else {
                // Partitioned: the connection is useless, drop it so the
                // heal starts from a clean connect.
                self.links[i].conn = None;
            }
            let link = &mut self.links[i];
            let synced = link.acked_seq >= target;
            if synced {
                link.last_synced_at = now;
            }
            let lag = target.saturating_sub(link.acked_seq);
            let staleness_us = now
                .as_micros()
                .saturating_sub(link.last_synced_at.as_micros());
            let tl = &csaw_obs::current().timeline;
            if tl.enabled() {
                let labels = [("region", link.region.as_str())];
                tl.gauge("replica.lag", &labels).set(lag as i64);
                tl.gauge("replica.staleness_us", &labels)
                    .set(staleness_us as i64);
            }
            out.push(LinkStatus {
                region: link.region.clone(),
                lag,
                staleness_us,
                synced,
            });
        }
        out
    }

    /// Push chunks to one link until it acks `target` or errors out.
    fn pump_link(&mut self, i: usize, target: u64) {
        while self.links[i].acked_seq < target {
            let from_seq = self.links[i].acked_seq;
            let lines = self.source.lines_from(from_seq, self.chunk);
            if lines.is_empty() {
                break;
            }
            let shipped = lines.len() as u64;
            match self.exchange(i, DbRequest::Ship { from_seq, lines }) {
                Some(DbResponse::ShipAck { applied_seq }) => {
                    csaw_obs::add("replica.ship.lines", shipped);
                    let link = &mut self.links[i];
                    if applied_seq == from_seq {
                        // The replica refused to advance (it reported
                        // exactly our own position back): nothing more
                        // to do this round.
                        break;
                    }
                    // Either normal progress or a rewind below from_seq
                    // (gap): trust the replica's own position.
                    link.acked_seq = applied_seq;
                }
                Some(_) | None => {
                    self.links[i].conn = None;
                    break;
                }
            }
        }
    }

    /// One blocking request/response on link `i`, connecting if needed.
    fn exchange(&mut self, i: usize, req: DbRequest) -> Option<DbResponse> {
        let link = &mut self.links[i];
        if link.conn.is_none() {
            let stream = TcpStream::connect(link.addr).ok()?;
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .ok()?;
            link.conn = Some((stream, BytesMut::new()));
        }
        let (stream, buf) = link.conn.as_mut().expect("connection just established");
        write_frame(stream, &req.to_frame()).ok()?;
        let frame = read_frame(stream, buf).ok()??;
        DbResponse::from_frame(&frame).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StoreState;
    use csaw_censor::blocking::BlockingType;
    use csaw_store::record::Report;
    use csaw_store::ShardedStore;

    fn batch(client: u64, url: &str, t: u64) -> Batch {
        Batch::new(
            Uuid::from_raw(client),
            vec![Report {
                url: url.into(),
                asn: 9,
                measured_at_us: t,
                stages: vec![BlockingType::HttpDrop],
            }],
            SimTime::from_micros(t),
        )
    }

    #[test]
    fn journal_precedes_apply_and_replays_identically() {
        let leader = ReplicatedStore::new(Arc::new(ShardedStore::new(4).unwrap()));
        leader.ingest(&batch(1, "http://a.com/", 10)).unwrap();
        leader.ingest(&batch(2, "http://b.com/", 20)).unwrap();
        leader.revoke(Uuid::from_raw(2));
        leader.expire_records(SimTime::from_secs(100), SimDuration::from_secs(99));
        assert_eq!(leader.leader_seq(), 4);

        let replica = ShardedStore::new(7).unwrap();
        for line in leader.lines_from(0, usize::MAX) {
            wal::replay_line(&replica, &line).unwrap();
        }
        assert_eq!(
            StoreState::capture(leader.inner()),
            StoreState::capture(&replica)
        );
    }

    #[test]
    fn lines_from_windows_the_log() {
        let leader = ReplicatedStore::new(Arc::new(ShardedStore::new(2).unwrap()));
        for c in 0..5u64 {
            leader
                .ingest(&batch(c, &format!("http://u{c}.com/"), c + 1))
                .unwrap();
        }
        assert_eq!(leader.lines_from(0, 2).len(), 2);
        assert_eq!(leader.lines_from(3, 10).len(), 2);
        assert_eq!(leader.lines_from(5, 10).len(), 0);
        assert_eq!(leader.lines_from(99, 10).len(), 0);
    }
}
