//! # csaw-replica — cross-region replication for the global DB
//!
//! The paper's deployment story needs the global DB to serve
//! `blocked_for_as` downloads at the edge while ingest continues through
//! regional outages. This crate supplies the two halves of that story:
//!
//! - **Semilattice state** ([`state`]): [`StoreState`] captures a
//!   store's logical content — the record map and the vote ledger's
//!   client→report-set map — as a value with a deterministic
//!   [`StoreState::merge`] that is commutative, associative, and
//!   idempotent (a join-semilattice). The 1/d vote ledger makes this
//!   safe: a tally is a pure function of the client→report-set maps
//!   (voters sort before the float sum), so unioning those maps merges
//!   votes without any coordination.
//! - **WAL shipping** ([`ship`]): [`ReplicatedStore`] wraps any
//!   [`StorageBackend`](csaw_store::StorageBackend) and records every
//!   mutation as a [`csaw_store::wal`] line *before* applying it;
//!   [`WalShipper`] streams those lines to per-region read replicas
//!   over the length-framed `SHIP`/`SHIP_ACK` ops, tracking per-link
//!   lag and staleness. Replicas apply shipped lines through the exact
//!   replay path `JsonlStore::open` uses, so a caught-up replica is
//!   state-identical to the leader — byte-identical under
//!   [`StoreState::fingerprint`].
//!
//! Non-monotone operations (revoke, expire) are *not* merged — they
//! ship only through the ordered WAL, where every replica applies them
//! at the same log position. `merge` is for joining concurrent
//! *ingest-only* divergence and for proving convergence after heals.
//!
//! ## Example
//!
//! Merging two divergent captures is commutative and idempotent:
//!
//! ```
//! use csaw_replica::StoreState;
//! use csaw_store::{Batch, Report, ShardedStore, StorageBackend, Uuid};
//! use csaw_censor::blocking::BlockingType;
//! use csaw_simnet::time::SimTime;
//!
//! let report = |url: &str| Report {
//!     url: url.into(),
//!     asn: 9,
//!     measured_at_us: 1,
//!     stages: vec![BlockingType::HttpDrop],
//! };
//! let a = ShardedStore::new(2)?;
//! a.ingest(&Batch::new(Uuid::from_raw(1), vec![report("http://a.com/")], SimTime::ZERO))?;
//! let b = ShardedStore::new(4)?;
//! b.ingest(&Batch::new(Uuid::from_raw(2), vec![report("http://b.com/")], SimTime::ZERO))?;
//!
//! let (sa, sb) = (StoreState::capture(&a), StoreState::capture(&b));
//! let mut ab = sa.clone();
//! ab.merge(&sb);
//! let mut ba = sb.clone();
//! ba.merge(&sa);
//! ba.merge(&sa); // idempotent
//! assert_eq!(ab, ba);
//! assert_eq!(ab.fingerprint(), ba.fingerprint());
//! # Ok::<(), csaw_store::StoreError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ship;
pub mod state;

pub use ship::{LinkStatus, ReplicatedStore, WalShipper};
pub use state::{fingerprint_of, RecordVersion, StoreState};
