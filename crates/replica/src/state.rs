//! Join-semilattice capture of a store's logical state.
//!
//! [`StoreState`] reduces a [`StorageBackend`] to the two maps that
//! fully determine its observable behaviour:
//!
//! - **records**: `(url, asn) → RecordVersion` — the live measurement
//!   per key. Merging takes the pointwise maximum under a *total*
//!   order on versions (`posted_at`, then `measured_at`, then
//!   reporter, then stages), so merge never has to break a tie
//!   arbitrarily: last-writer-wins with a deterministic tiebreak.
//! - **votes**: `client → {(url, asn)}` — the ledger's client
//!   report-sets. A client's vote weight is `1/d` where `d` is its
//!   set size, and a tally sorts voters before the float sum, so the
//!   whole ledger is a pure function of this map. Merging unions the
//!   sets pointwise.
//!
//! Both operations are joins on lattices (max over a total order, set
//! union), so `merge` is commutative, associative, and idempotent by
//! construction — property-tested over DetRng-generated states in
//! `tests/merge_laws.rs`. Non-monotone mutations (revoke, expire,
//! reporter removal) are deliberately *outside* the lattice: they ship
//! through the ordered WAL (see [`crate::ship`]) and every replica
//! applies them at the same log position.

use csaw_store::StorageBackend;
use std::collections::{BTreeMap, BTreeSet};

/// The version of one `(url, asn)` record that competes in merges.
///
/// Ordered lexicographically field-by-field; [`StoreState::merge`]
/// keeps the maximum, so the freshest post wins and exact ties (same
/// post time) resolve deterministically by measurement time, then
/// reporter id, then stages.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecordVersion {
    /// When the batch carrying this record was posted (`T_p`), µs.
    pub posted_at_us: u64,
    /// When the client measured the blocking event, µs.
    pub measured_at_us: u64,
    /// Raw UUID of the reporting client.
    pub reporter: u64,
    /// Blocking-stage names, in report order.
    pub stages: Vec<String>,
}

/// A store's logical state as a mergeable value.
///
/// Two backends with equal `StoreState` captures answer every tally
/// and every `blocked_for_as` query identically, whatever their shard
/// counts or ingest interleavings were.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreState {
    /// Live records keyed by `(url, asn)`.
    pub records: BTreeMap<(String, u32), RecordVersion>,
    /// The vote ledger: each client's reported `(url, asn)` set.
    pub votes: BTreeMap<u64, BTreeSet<(String, u32)>>,
}

impl StoreState {
    /// Capture a backend's current logical state.
    pub fn capture(backend: &dyn StorageBackend) -> StoreState {
        let mut records = BTreeMap::new();
        backend.for_each_record(&mut |r| {
            records.insert(
                (r.url.clone(), r.asn.0),
                RecordVersion {
                    posted_at_us: r.posted_at.as_micros(),
                    measured_at_us: r.measured_at.as_micros(),
                    reporter: r.reporter.raw(),
                    stages: r.stages.iter().map(|s| s.name().to_string()).collect(),
                },
            );
        });
        let ledger = backend.ledger();
        let mut votes = BTreeMap::new();
        for (client, _) in ledger.client_report_sizes() {
            let set: BTreeSet<(String, u32)> = ledger
                .client_urls(client)
                .into_iter()
                .map(|(u, a)| (u, a.0))
                .collect();
            if !set.is_empty() {
                votes.insert(client.raw(), set);
            }
        }
        StoreState { records, votes }
    }

    /// Join `other` into `self`: records take the pointwise maximum
    /// version, vote sets union pointwise. Commutative, associative,
    /// idempotent.
    pub fn merge(&mut self, other: &StoreState) {
        for (key, version) in &other.records {
            match self.records.get_mut(key) {
                Some(mine) if *mine >= *version => {}
                Some(mine) => *mine = version.clone(),
                None => {
                    self.records.insert(key.clone(), version.clone());
                }
            }
        }
        for (client, set) in &other.votes {
            self.votes
                .entry(*client)
                .or_default()
                .extend(set.iter().cloned());
        }
    }

    /// Canonical one-line-per-entry rendering: every record, then every
    /// vote edge, in `BTreeMap` (byte-sorted) order. Equal states render
    /// identically whatever their history.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        for ((url, asn), v) in &self.records {
            out.push_str(&format!(
                "record {url}|{asn}|{}|{}|{:016x}|{}\n",
                v.posted_at_us,
                v.measured_at_us,
                v.reporter,
                v.stages.join("+"),
            ));
        }
        for (client, set) in &self.votes {
            for (url, asn) in set {
                out.push_str(&format!("vote {client:016x}|{url}|{asn}\n"));
            }
        }
        out
    }

    /// 16-hex-digit FNV-1a digest of [`StoreState::canonical`]. Two
    /// replicas converged iff their fingerprints are byte-identical.
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Total vote edges (for reporting; not part of the lattice).
    pub fn vote_edges(&self) -> usize {
        self.votes.values().map(BTreeSet::len).sum()
    }

    /// Clients currently voting.
    pub fn voter_count(&self) -> usize {
        self.votes.len()
    }
}

/// Convenience: capture and fingerprint in one call.
pub fn fingerprint_of(backend: &dyn StorageBackend) -> String {
    StoreState::capture(backend).fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csaw_censor::blocking::BlockingType;
    use csaw_simnet::time::SimTime;
    use csaw_store::{Batch, Report, ShardedStore, Uuid};

    fn batch(client: u64, url: &str, t: u64) -> Batch {
        Batch::new(
            Uuid::from_raw(client),
            vec![Report {
                url: url.into(),
                asn: 9,
                measured_at_us: t,
                stages: vec![BlockingType::HttpDrop],
            }],
            SimTime::from_micros(t),
        )
    }

    #[test]
    fn capture_is_shard_count_independent() {
        let a = ShardedStore::new(2).unwrap();
        let b = ShardedStore::new(16).unwrap();
        for s in [&a, &b] {
            for c in 0..8u64 {
                s.ingest(&batch(c, &format!("http://u{}.com/", c % 3), 10 + c))
                    .unwrap();
            }
        }
        assert_eq!(StoreState::capture(&a), StoreState::capture(&b));
        assert_eq!(
            StoreState::capture(&a).fingerprint(),
            StoreState::capture(&b).fingerprint()
        );
    }

    #[test]
    fn merge_prefers_the_newer_post() {
        let old = ShardedStore::new(2).unwrap();
        old.ingest(&batch(1, "http://x.com/", 100)).unwrap();
        let new = ShardedStore::new(2).unwrap();
        new.ingest(&batch(2, "http://x.com/", 200)).unwrap();
        let mut merged = StoreState::capture(&old);
        merged.merge(&StoreState::capture(&new));
        let v = merged.records.get(&("http://x.com/".into(), 9)).unwrap();
        assert_eq!(v.reporter, 2);
        assert_eq!(v.posted_at_us, 200);
        // Both voters survive the merge.
        assert_eq!(merged.voter_count(), 2);
        assert_eq!(merged.vote_edges(), 2);
    }

    #[test]
    fn fingerprint_distinguishes_vote_sets() {
        let a = ShardedStore::new(2).unwrap();
        a.ingest(&batch(1, "http://x.com/", 100)).unwrap();
        let b = ShardedStore::new(2).unwrap();
        b.ingest(&batch(1, "http://x.com/", 100)).unwrap();
        b.ingest(&batch(2, "http://x.com/", 100)).unwrap();
        assert_ne!(
            fingerprint_of(&a),
            fingerprint_of(&b),
            "extra voter must change the fingerprint"
        );
    }

    #[test]
    fn revoked_clients_leave_the_capture() {
        let s = ShardedStore::new(2).unwrap();
        s.ingest(&batch(1, "http://x.com/", 100)).unwrap();
        s.ingest(&batch(2, "http://y.com/", 100)).unwrap();
        s.revoke(Uuid::from_raw(2));
        let cap = StoreState::capture(&s);
        assert_eq!(cap.voter_count(), 1);
        assert!(cap.votes.contains_key(&1));
    }
}
